//! The ECCheck engine: real-byte save and load over a simulated cluster.
//!
//! `save` executes the paper's checkpoint protocol (§III, Fig. 5/6) on
//! actual memory: decompose each worker's `state_dict`
//! (serialization-free, §III-C), pack tensor data into fixed-size
//! packets, build the `k` data chunks, encode `m` parity chunks with the
//! Cauchy Reed–Solomon code, and place every chunk on its node. `load`
//! executes the two recovery workflows (§III-B, Fig. 7) and reconstructs
//! every worker's `state_dict` bit-exactly.
//!
//! Timing is *not* modelled here — see [`crate::timing`]; this module is
//! the correctness plane.

use std::collections::BTreeMap;

use ecc_checkpoint::{
    checksum_frame, decompose, verify_checksum, Decomposition, Packer, Packet, StateDict,
};
use ecc_cluster::{ClusterError, ClusterSpec, DataPlane, HealthConfig, HealthRegistry};
use ecc_erasure::{CodeParams, CodingPool, ErasureCode};
use ecc_obs::{ObsHub, ObsHubConfig, ObsServer, SloSpec};
use ecc_sim::{Bandwidth, BusyWindows, SlotGate};
use ecc_telemetry::Recorder;
use ecc_trace::{Tracer, TrackId, DRIVER_PID};

use crate::config::SaveMode;
use crate::keys::{
    chunk_crc_key, chunk_key, committed_epoch, encode_epoch, epoch_key, header_crc_key, header_key,
    manifest_key, remote_chunk_crc_key, remote_chunk_key, remote_header_crc_key, remote_header_key,
    remote_manifest_key,
};
use crate::pipeline::{self, DeltaColumn, DeltaJob, PipelineJob, PipelineOutcome, PipelineStats};
use crate::store::{DrainHandle, RetentionPolicy, VersionIndex, WorkerDirtySet};
use crate::{
    select_data_parity_nodes, DeltaReport, EcCheckConfig, EcCheckError, LoadReport, Placement,
    RecoveryWorkflow, ReductionPlan, SaveReport,
};

/// Outcome of one checksum-verified chunk fetch during recovery.
enum ChunkFetch {
    /// The blob is present and matches its stored checksum.
    Intact(Vec<u8>),
    /// Node dead, or the blob (or its checksum frame) is absent even
    /// after the bounded retry budget.
    Missing,
    /// The blob is present but fails its checksum: silent corruption,
    /// reclassified as an erasure.
    Corrupt,
}

/// Which public entry point a delta patch serves — selects its
/// telemetry and trace namespace (`ecc.update.*` vs `ecc.delta.*`).
#[derive(Clone, Copy)]
enum DeltaOp {
    /// [`EcCheck::update_worker`]: the single-worker patch.
    Update,
    /// [`EcCheck::save_delta`]: an arbitrary dirty set.
    Save,
}

/// The ECCheck checkpointing system (paper §III).
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug)]
pub struct EcCheck {
    config: EcCheckConfig,
    spec: ClusterSpec,
    code: ErasureCode,
    placement: Placement,
    reduction: ReductionPlan,
    pool: CodingPool,
    packer: Packer,
    version: u64,
    saves: u64,
    /// The placement epoch this engine operates under. 0 until a
    /// membership controller commits a rebalance; strictly monotone
    /// thereafter (see [`EcCheck::apply_placement`]). Save and load
    /// refuse to move chunks when the plane's committed epoch is newer
    /// — a stale engine writing through an outdated assignment would
    /// silently break the m-fault guarantee.
    placement_epoch: u64,
    packets_per_worker: usize,
    recorder: Recorder,
    trace: Option<TraceHandles>,
    /// Profiled network-busy windows + wire bandwidth for idle-slot
    /// gating of pipelined transfers (paper §IV-B-3).
    idle_profile: Option<(BusyWindows, Bandwidth)>,
    /// The health registry handed out by [`EcCheck::obs_hub`], if any.
    /// Checkpoint traffic doubles as liveness evidence: a successful
    /// save heartbeats every node, a load heartbeats each node whose
    /// chunk arrived intact.
    health: Option<HealthRegistry>,
    /// Tier-0 retention index: every checkpoint version currently
    /// restorable from cluster memory, ascending. Saves append to it;
    /// the retention GC pass prunes it (never the newest entry).
    index: VersionIndex,
    /// Handle to an asynchronous tier-0 → tier-1 drain worker, if one
    /// is attached (see [`EcCheck::set_drainer`]). Every sealed save is
    /// enqueued here, and versions still pending a drain are pinned
    /// against GC so the copy source cannot vanish mid-drain.
    drain: Option<DrainHandle>,
}

/// Tracing handles for the engine: the driver's `engine` track hosts the
/// `ecc.{save,load,update,flush}` root spans and their phase children;
/// per-node `storage` tracks receive the chunk store/fetch flows.
#[derive(Debug, Clone)]
pub(crate) struct TraceHandles {
    pub(crate) tracer: Tracer,
    pub(crate) engine: TrackId,
}

impl TraceHandles {
    fn attach(tracer: &Tracer) -> Self {
        Self { tracer: tracer.clone(), engine: tracer.track(DRIVER_PID, "driver", "engine") }
    }

    /// The `storage` track of simulated node `node` (pid = node index).
    pub(crate) fn node_track(&self, node: usize) -> TrackId {
        self.tracer.track(node as u64, &format!("node{node}"), "storage")
    }
}

impl EcCheck {
    /// `eccheck.initialize`: validates the configuration, builds the
    /// encoding matrix, and runs data/parity node selection and
    /// reduction-target planning (paper §V-A).
    ///
    /// # Errors
    ///
    /// Returns [`EcCheckError::Config`] for invalid combinations and
    /// propagates erasure-code construction failures.
    pub fn initialize(spec: &ClusterSpec, config: EcCheckConfig) -> Result<Self, EcCheckError> {
        config.validate(spec.nodes(), spec.world_size())?;
        let params = CodeParams::new(config.k(), config.m(), config.w())?;
        let recorder = Recorder::new();
        let mut code = ErasureCode::cauchy_good(params)?;
        code.set_recorder(&recorder);
        let placement = select_data_parity_nodes(&spec.origin_group(), config.k())?;
        let reduction = ReductionPlan::build(spec, &placement, config.m())?;
        let packer = Packer::new(config.packet_size())?;
        let mut pool = CodingPool::new(config.coding_threads());
        pool.set_recorder(&recorder);
        Ok(Self {
            config,
            spec: *spec,
            code,
            placement,
            reduction,
            pool,
            packer,
            version: 0,
            saves: 0,
            placement_epoch: 0,
            packets_per_worker: 0,
            recorder,
            trace: None,
            idle_profile: None,
            health: None,
            index: VersionIndex::new(),
            drain: None,
        })
    }

    /// Attaches a profiled training iteration — its network-busy windows
    /// and the checkpoint wire bandwidth — so pipelined saves gate their
    /// transfers into the idle slots (paper §IV-B-3). Gating is virtual
    /// time: stores still complete immediately on the in-memory data
    /// plane, but each save deterministically accounts when its transfers
    /// would start, finish and wait on the profiled wire (see
    /// [`crate::PipelineStats`] and the `ecc.pipeline.slot_*` counters).
    ///
    /// Takes effect when the configuration has idle slots enabled (the
    /// default) and the save mode is pipelined.
    pub fn set_idle_profile(&mut self, windows: BusyWindows, wire: Bandwidth) {
        self.idle_profile = Some((windows, wire));
    }

    /// Removes the idle-slot profile; subsequent saves transfer ungated.
    pub fn clear_idle_profile(&mut self) {
        self.idle_profile = None;
    }

    /// The attached idle-slot profile, if any.
    pub fn idle_profile(&self) -> Option<(&BusyWindows, Bandwidth)> {
        self.idle_profile.as_ref().map(|(w, b)| (w, *b))
    }

    /// The telemetry recorder this engine reports into. Snapshot it to
    /// inspect per-phase save latencies, coding throughput and recovery
    /// workflow counts.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Replaces the telemetry recorder (e.g. with one driven by a
    /// simulated clock) and re-attaches the erasure code and coding pool
    /// to it. Metrics already recorded stay with the old recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.code.set_recorder(&recorder);
        self.pool.set_recorder(&recorder);
        self.recorder = recorder;
        // Keep the span timeline on the same epoch as the new recorder's
        // event log (the two are meant to be cross-referenced).
        if self.trace.is_some() {
            self.attach_tracer();
        }
    }

    /// Builds a span tracer on the recorder's clock (one shared epoch, so
    /// trace timestamps and `Recorder::snapshot` event timestamps are
    /// directly comparable), wires it through the erasure code and the
    /// coding pool, and returns a handle for exporting.
    pub fn attach_tracer(&mut self) -> Tracer {
        let tracer = Tracer::for_recorder(&self.recorder);
        self.set_tracer(&tracer);
        tracer
    }

    /// Attaches an existing span tracer (e.g. one shared with other
    /// engines) to the save/load/update/flush paths, the erasure code and
    /// the coding pool. Prefer [`EcCheck::attach_tracer`], which also
    /// aligns the tracer's clock epoch with the recorder's.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.code.set_tracer(tracer);
        self.pool.set_tracer(tracer);
        self.trace = Some(TraceHandles::attach(tracer));
    }

    /// The active configuration.
    pub fn config(&self) -> &EcCheckConfig {
        &self.config
    }

    /// The default service-level objectives for this deployment,
    /// covering the paper's three headline claims (§IV, Table I):
    ///
    /// * `save_stall` — 99% of saves stall training for ≤ 250 ms;
    /// * `recovery` — 99% of restores complete within 1 s;
    /// * `traffic` — per-save network traffic stays within the m·s·W
    ///   bound, expressed as `ecc.save.traffic_bytes` ≤ k ×
    ///   `ecc.save.bytes_encoded` (encoded parity bytes are m·s·W/k).
    pub fn default_slos(&self) -> Vec<SloSpec> {
        vec![
            SloSpec::latency(
                "save_stall",
                "99% of saves stall training for at most 250ms",
                "ecc.save.ns",
                250_000_000,
                0.99,
            ),
            SloSpec::latency(
                "recovery",
                "99% of restores complete within 1s",
                "ecc.load.ns",
                1_000_000_000,
                0.99,
            ),
            SloSpec::ratio(
                "traffic",
                "per-save network traffic stays within the m*s*W bound",
                "ecc.save.traffic_bytes",
                "ecc.save.bytes_encoded",
                self.config.k() as f64,
            ),
        ]
    }

    /// Builds the observability hub for this engine: a read-only view
    /// over the recorder with the default windowed histograms, the
    /// [`EcCheck::default_slos`] objectives, and a heartbeat-driven
    /// [`HealthRegistry`] spanning every cluster node (seeded alive at
    /// the current clock; drive it via [`ObsHub::health`]). The engine
    /// keeps a handle to the registry: each successful save heartbeats
    /// every node, and each load heartbeats the nodes whose chunks
    /// arrived intact — checkpoint traffic doubles as liveness
    /// evidence, so a quiet engine goes `Suspect` and a failed node
    /// stops heartbeating on its own.
    ///
    /// The hub never writes to the recorder, so attaching it leaves
    /// telemetry snapshots and traces byte-identical.
    pub fn obs_hub(&mut self) -> ObsHub {
        let config = ObsHubConfig { slos: self.default_slos(), ..ObsHubConfig::default() };
        let health = HealthRegistry::new(self.spec.nodes(), HealthConfig::default());
        let now = self.recorder.now_ns();
        for node in 0..self.spec.nodes() {
            health.record_heartbeat(node, now);
        }
        self.health = Some(health.clone());
        ObsHub::new(self.recorder.clone(), config).with_health(health)
    }

    /// Records a liveness heartbeat for `node` on the registry handed
    /// out by [`EcCheck::obs_hub`]; a no-op when none is attached.
    fn heartbeat(&self, node: usize) {
        if let Some(health) = &self.health {
            health.record_heartbeat(node, self.recorder.now_ns());
        }
    }

    /// Starts the live observability exporter on `addr` (use port 0 for
    /// an ephemeral port), serving `/metrics`, `/health`, `/ready` and
    /// `/events` over this engine's recorder. The returned server owns
    /// its threads; drop it (or call [`ObsServer::shutdown`]) to stop.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn serve_obs(&mut self, addr: &str) -> std::io::Result<ObsServer> {
        ObsServer::serve(std::sync::Arc::new(self.obs_hub()), addr)
    }

    /// Arms (or disarms, with `None`) the pipelined executor's
    /// encode-worker fail point at runtime — chaos tests save a healthy
    /// checkpoint first, then kill a worker mid-steal on the next save.
    /// See [`EcCheckConfig::with_fail_encode_task`].
    #[doc(hidden)]
    pub fn set_fail_encode_task(&mut self, n: Option<u64>) {
        self.config = match n {
            Some(n) => self.config.with_fail_encode_task(n),
            None => self.config.without_fail_encode_task(),
        };
    }

    /// The node placement chosen at initialization.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The placement epoch this engine operates under (0 = no
    /// membership controller has ever rebalanced this cluster).
    pub fn placement_epoch(&self) -> u64 {
        self.placement_epoch
    }

    /// Adopts a new placement committed by a membership controller.
    /// Rebuilds the reduction plan for the new assignment and
    /// fast-forwards the engine to `epoch`. Epochs are strictly
    /// monotone: the controller bumps the epoch only after verifying
    /// the m-fault guarantee on the new layout, so accepting an old
    /// epoch would rewind the engine onto a layout the chunks no
    /// longer match.
    ///
    /// # Errors
    ///
    /// Returns [`EcCheckError::StaleEpoch`] when `epoch` is not
    /// strictly newer than the engine's, and [`EcCheckError::Config`]
    /// when the placement's (k, m) split or node ids do not fit this
    /// engine's configuration and cluster.
    pub fn apply_placement(
        &mut self,
        epoch: u64,
        placement: Placement,
    ) -> Result<(), EcCheckError> {
        if epoch <= self.placement_epoch {
            return Err(EcCheckError::StaleEpoch {
                engine: self.placement_epoch,
                committed: epoch,
            });
        }
        let (k, m, n) = (self.config.k(), self.config.m(), self.spec.nodes());
        if placement.k() != k || placement.m() != m {
            return Err(EcCheckError::Config {
                detail: format!(
                    "placement is ({}, {}) but the engine encodes ({k}, {m})",
                    placement.k(),
                    placement.m()
                ),
            });
        }
        if let Some(&bad) =
            placement.data_nodes().iter().chain(placement.parity_nodes()).find(|&&id| id >= n)
        {
            return Err(EcCheckError::Config {
                detail: format!("placement names node {bad}, cluster has {n}"),
            });
        }
        let reduction = ReductionPlan::build(&self.spec, &placement, m)?;
        let old = self.placement_epoch;
        self.placement = placement;
        self.reduction = reduction;
        self.placement_epoch = epoch;
        self.recorder.counter("ecc.placement.applied").incr();
        self.recorder.counter("ecc.placement.epoch").add(epoch - old);
        self.recorder.event("ecc.placement", format!("applied placement epoch {old} -> {epoch}"));
        Ok(())
    }

    /// Refuses to proceed when the plane's committed placement epoch is
    /// newer than this engine's — the stale-epoch fence guarding every
    /// operation that moves chunks by placement.
    fn ensure_fresh_epoch(&self, cluster: &impl DataPlane) -> Result<(), EcCheckError> {
        self.recorder.counter("ecc.epoch.checks").incr();
        match committed_epoch(cluster) {
            Some(committed) if committed > self.placement_epoch => {
                self.recorder.counter("ecc.epoch.stale_refusals").incr();
                self.recorder.event(
                    "ecc.epoch.stale",
                    format!(
                        "engine at epoch {}, plane committed {committed}",
                        self.placement_epoch
                    ),
                );
                Err(EcCheckError::StaleEpoch { engine: self.placement_epoch, committed })
            }
            _ => Ok(()),
        }
    }

    /// The reduction plan chosen at initialization.
    pub fn reduction(&self) -> &ReductionPlan {
        &self.reduction
    }

    /// The erasure code in use.
    pub fn code(&self) -> &ErasureCode {
        &self.code
    }

    /// Version of the latest completed checkpoint (0 = none yet).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Every checkpoint version currently restorable from tier 0
    /// (cluster memory), ascending — the retention index. The newest
    /// entry is never garbage-collected; older entries survive
    /// according to the configured retention policy (see
    /// [`EcCheckConfig::with_retain_last`] and
    /// [`EcCheckConfig::with_retain_every`]). Restore any of them with
    /// [`EcCheck::load_version`].
    pub fn retained_versions(&self) -> Vec<u64> {
        self.index.versions().to_vec()
    }

    /// Attaches a drain worker: from now on every sealed save version
    /// is enqueued for an asynchronous tier-0 → tier-1 copy (see
    /// [`crate::store::Drainer`]), and versions still pending a drain
    /// are pinned against garbage collection. The handle's plane must
    /// view the same storage this engine saves through (e.g. a
    /// [`ecc_cluster::SharedPlane`] clone).
    pub fn set_drainer(&mut self, drain: DrainHandle) {
        self.drain = Some(drain);
    }

    /// Detaches the drain worker handle, returning it; subsequent saves
    /// stay tier-0 only (plus the periodic synchronous remote flush).
    pub fn clear_drainer(&mut self) -> Option<DrainHandle> {
        self.drain.take()
    }

    /// Adopts a checkpoint this engine did not write, so a fresh
    /// process can [`EcCheck::load`] state saved by another one (e.g.
    /// over a socket-backed plane). Reads `version`'s packet-layout
    /// manifest from any alive node — falling back to the remote copy —
    /// and fast-forwards the engine to that version. Use
    /// [`crate::keys::latest_manifest_version`] to discover the newest
    /// version on a plane.
    ///
    /// # Errors
    ///
    /// Returns [`EcCheckError::NoCheckpoint`] when no alive node (and
    /// not remote storage either) holds a manifest for `version`, and
    /// [`EcCheckError::Config`] when the manifest bytes are malformed.
    pub fn adopt_version(
        &mut self,
        cluster: &impl DataPlane,
        version: u64,
    ) -> Result<(), EcCheckError> {
        let key = manifest_key(version);
        let blob = (0..cluster.nodes())
            .filter(|&node| cluster.alive(node))
            .find_map(|node| cluster.get_local(node, &key))
            .or_else(|| cluster.get_remote(&remote_manifest_key(version)))
            .ok_or(EcCheckError::NoCheckpoint)?;
        let bytes: [u8; 8] = blob.as_slice().try_into().map_err(|_| EcCheckError::Config {
            detail: format!("manifest for v{version} is {} bytes, expected 8", blob.len()),
        })?;
        self.packets_per_worker = u64::from_le_bytes(bytes) as usize;
        self.version = version;
        self.saves = version;
        // Rebuild the retention index from what the plane actually
        // holds — the adopting engine did not watch the saves happen.
        self.index = VersionIndex::rebuild(cluster);
        self.index.record(version);
        // Adopt the plane's committed placement epoch alongside the
        // checkpoint. The committed layout is always the sweep-line
        // assignment over the (unchanged) origin group — rebalances
        // swap node *incarnations*, not chunk positions — so a freshly
        // initialized engine's placement already matches it and only
        // the epoch number needs fast-forwarding.
        if let Some(committed) = committed_epoch(cluster) {
            if committed > self.placement_epoch {
                self.recorder.counter("ecc.placement.epoch").add(committed - self.placement_epoch);
                self.placement_epoch = committed;
            }
        }
        self.recorder.counter("ecc.adopt.calls").incr();
        self.recorder.event(
            "ecc.adopt",
            format!("adopted checkpoint v{version} @ epoch {}", self.placement_epoch),
        );
        Ok(())
    }

    /// `eccheck.save`: checkpoints all workers' `state_dict`s into
    /// erasure-coded host memory across the cluster.
    ///
    /// `state_dicts[w]` is worker `w`'s shard. Returns a report with the
    /// packet layout and traffic accounting.
    ///
    /// # Errors
    ///
    /// Returns [`EcCheckError::Config`] when the shard count differs
    /// from the world size, and propagates packing/coding/cluster
    /// failures (e.g. a node dying mid-save).
    pub fn save(
        &mut self,
        cluster: &mut impl DataPlane,
        state_dicts: &[StateDict],
    ) -> Result<SaveReport, EcCheckError> {
        let world = self.spec.world_size();
        if state_dicts.len() != world {
            return Err(EcCheckError::Config {
                detail: format!("expected {world} state_dicts, got {}", state_dicts.len()),
            });
        }
        self.ensure_fresh_epoch(cluster)?;
        let version = self.version + 1;
        let ps = self.config.packet_size();
        let save_timer = self.recorder.timer("ecc.save.ns");
        let trace = self.trace.clone();
        let root_span = trace
            .as_ref()
            .map(|t| t.tracer.span(t.engine, "ecc.save", format!("version={version}")));

        // Step 1 + 2: decompose every shard (tensor data leaves "GPU"
        // memory) and broadcast the tiny headers to every node.
        let phase = self.recorder.timer("ecc.save.decompose_ns");
        let span = trace.as_ref().map(|t| t.tracer.span(t.engine, "save.decompose", ""));
        let decomposed: Vec<Decomposition> = state_dicts.iter().map(decompose).collect();
        let headers: Vec<Vec<u8>> = decomposed.iter().map(|d| d.header_to_bytes()).collect();
        drop(span);
        drop(phase);

        // Step 3a: pack tensor data into fixed-size packets per worker.
        let phase = self.recorder.timer("ecc.save.pack_ns");
        let span = trace
            .as_ref()
            .map(|t| t.tracer.span(t.engine, "checkpoint.pack", format!("{world} workers")));
        let mut worker_packets: Vec<Vec<Packet>> =
            decomposed.iter().map(|d| self.packer.pack(d.tensor_data()).0).collect();
        let max_packets = worker_packets.iter().map(Vec::len).max().expect("world size > 0");
        for packets in &mut worker_packets {
            while packets.len() < max_packets {
                packets.push(Packet::new(packets.len(), vec![0u8; ps]));
            }
        }
        self.packets_per_worker = max_packets;
        drop(span);
        drop(phase);

        // Step 3b: build the k data chunks. Chunk j concatenates the
        // packets of data group j ordered (relative worker index, packet
        // index) — the layout reduction groups operate on.
        let phase = self.recorder.timer("ecc.save.build_chunks_ns");
        let span = trace.as_ref().map(|t| t.tracer.span(t.engine, "save.build_chunks", ""));
        let group_size = self.placement.group_size();
        let chunk_len = group_size * max_packets * ps;
        let mut data_chunks: Vec<Vec<u8>> = Vec::with_capacity(self.config.k());
        for j in 0..self.config.k() {
            let mut chunk = Vec::with_capacity(chunk_len);
            for r in 0..group_size {
                let w = j * group_size + r;
                for packet in &worker_packets[w] {
                    chunk.extend_from_slice(packet.data());
                }
            }
            data_chunks.push(chunk);
        }
        drop(span);
        drop(phase);

        // Step 4 happens only every `remote_flush_every` saves; decided
        // up front so the pipelined executor knows whether to keep owned
        // chunk copies around for the flush.
        let will_flush = self.config.remote_flush_every() > 0
            && (self.saves + 1).is_multiple_of(self.config.remote_flush_every());

        // Steps 3c + 3d: encode parity and place every chunk. Two
        // executors, one contract — byte-identical cluster state (the
        // differential suite in `tests/pipeline_differential.rs` holds
        // them to it).
        let (encoded_bytes, pipeline_stats, flush_chunks) = match self.config.save_mode() {
            SaveMode::Sequential => {
                self.save_sequential(cluster, version, data_chunks, will_flush, &trace)?
            }
            SaveMode::Pipelined => {
                self.save_pipelined(cluster, version, data_chunks, will_flush, &trace)?
            }
        };

        // Headers and the packet-count manifest go everywhere (tiny,
        // ungated), closing out the placement identically in both modes.
        let header_frames: Vec<Vec<u8>> =
            headers.iter().map(|h| checksum_frame(h.as_slice())).collect();
        let span = trace.as_ref().map(|t| t.tracer.span(t.engine, "save.headers", ""));
        for node in 0..self.spec.nodes() {
            for (w, header) in headers.iter().enumerate() {
                cluster.put_local(node, &header_key(version, w), header.clone())?;
                cluster.put_local(node, &header_crc_key(version, w), header_frames[w].clone())?;
            }
            cluster.put_local(node, &manifest_key(version), manifest(max_packets))?;
            cluster.put_local(node, &epoch_key(version), encode_epoch(self.placement_epoch))?;
        }
        drop(span);

        // Step 4: low-frequency remote flush for catastrophic failures.
        self.saves += 1;
        let remote_flushed = will_flush;
        if remote_flushed {
            let (flush_data, flush_parity) =
                flush_chunks.expect("flush chunks kept when a flush is due");
            self.flush_remote_chunks(cluster, version, &flush_data, &flush_parity, &headers);
        }

        // Seal the new version in the retention index, hand it to the
        // drain worker (tier-0 → tier-1 copy, off the critical path),
        // then collect whatever the retention policy allows — never
        // the version just sealed, never one still pending a drain.
        self.version = version;
        self.index.record(version);
        if let Some(drain) = &self.drain {
            drain.enqueue(version, world);
        }
        self.collect_garbage(cluster, world);

        let payload = (max_packets * ps) as u64;
        let traffic = self.reduction.traffic(payload);
        save_timer.stop();
        drop(root_span);
        self.recorder.counter("ecc.save.calls").incr();
        self.recorder.counter("ecc.save.bytes_encoded").add(encoded_bytes);
        self.recorder.counter("ecc.save.traffic_bytes").add(traffic.total());
        if remote_flushed {
            self.recorder.counter("ecc.save.remote_flushes").incr();
        }
        self.recorder.event(
            "ecc.save",
            format!("version={version} packets_per_worker={max_packets} flushed={remote_flushed}"),
        );
        // A completed save placed chunks on every node — that's a
        // liveness proof for each of them.
        for node in 0..self.spec.nodes() {
            self.heartbeat(node);
        }
        Ok(SaveReport {
            version,
            packet_size: ps,
            packets_per_worker: max_packets,
            encoded_bytes,
            traffic,
            remote_flushed,
            pipeline: pipeline_stats,
        })
    }

    /// One retention GC pass over tier 0: deletes every version the
    /// policy lets go (see [`VersionIndex::collectible`]) and prunes
    /// the index. Safety invariant: the newest restorable version is
    /// never collected (the policy clamps `keep_last >= 1`), and a
    /// version still queued for a tier-1 drain is pinned until its
    /// copy completes. Tier-1 copies are never deleted here — the
    /// remote store is append-only by design, so a catastrophic
    /// restore always has every drained version to fall back on.
    fn collect_garbage(&mut self, cluster: &mut impl DataPlane, world: usize) {
        let policy = RetentionPolicy::from_config(&self.config);
        let pinned = self.drain.as_ref().map(DrainHandle::pending).unwrap_or_default();
        for old in self.index.collectible(&policy, &pinned) {
            for node in 0..self.spec.nodes() {
                cluster.delete_local(node, &chunk_key(old));
                cluster.delete_local(node, &chunk_crc_key(old));
                cluster.delete_local(node, &manifest_key(old));
                cluster.delete_local(node, &epoch_key(old));
                for w in 0..world {
                    cluster.delete_local(node, &header_key(old, w));
                    cluster.delete_local(node, &header_crc_key(old, w));
                }
            }
            self.index.remove(old);
            self.recorder.counter("ecc.gc.collected").incr();
            self.recorder.event("ecc.gc", format!("collected tier-0 v{old}"));
        }
    }

    /// Steps 3c + 3d, sequential executor: one monolithic encode, then
    /// every chunk stored in index order. The oracle the pipelined path
    /// is differentially tested against.
    #[allow(clippy::type_complexity)]
    fn save_sequential(
        &mut self,
        cluster: &mut impl DataPlane,
        version: u64,
        data_chunks: Vec<Vec<u8>>,
        will_flush: bool,
        trace: &Option<TraceHandles>,
    ) -> Result<(u64, Option<PipelineStats>, Option<(Vec<Vec<u8>>, Vec<Vec<u8>>)>), EcCheckError>
    {
        // Step 3c: encode parity chunks (thread-pooled XOR schedules).
        let phase = self.recorder.timer("ecc.save.encode_ns");
        let span = trace.as_ref().map(|t| {
            t.tracer.span(
                t.engine,
                "save.encode",
                format!("k={} m={}", self.config.k(), self.config.m()),
            )
        });
        let chunk_refs: Vec<&[u8]> = data_chunks.iter().map(Vec::as_slice).collect();
        let parity_chunks = if self.config.coding_threads() > 1 {
            self.pool.encode(&self.code, &chunk_refs)?
        } else {
            self.code.encode_with(&chunk_refs, self.config.schedule())?
        };
        let encoded_bytes: u64 = parity_chunks.iter().map(|c| c.len() as u64).sum();
        drop(span);
        drop(phase);

        // Step 3d: place chunks (XOR reduction + P2P in the real system;
        // here the byte movement outcome).
        let phase = self.recorder.timer("ecc.save.place_ns");
        let span = trace.as_ref().map(|t| t.tracer.span(t.engine, "save.place", ""));
        for (j, chunk) in data_chunks.iter().enumerate() {
            let node = self.placement.data_nodes()[j];
            cluster.put_local(node, &chunk_key(version), chunk.clone())?;
            cluster.put_local(node, &chunk_crc_key(version), checksum_frame(chunk))?;
            trace_store(trace, node, &format!("data chunk {j}"));
        }
        for (i, chunk) in parity_chunks.iter().enumerate() {
            let node = self.placement.parity_nodes()[i];
            cluster.put_local(node, &chunk_key(version), chunk.clone())?;
            cluster.put_local(node, &chunk_crc_key(version), checksum_frame(chunk))?;
            trace_store(trace, node, &format!("parity chunk {i}"));
        }
        drop(span);
        drop(phase);
        let flush_chunks = will_flush.then_some((data_chunks, parity_chunks));
        Ok((encoded_bytes, None, flush_chunks))
    }

    /// Steps 3c + 3d, pipelined executor (paper §IV-C): stripes stream
    /// through encode → XOR-reduce → transfer on the coding threads, with
    /// transfers gated into profiled network idle slots when a profile is
    /// attached. See [`crate::pipeline`]'s module docs for the dataflow.
    #[allow(clippy::type_complexity)]
    fn save_pipelined(
        &mut self,
        cluster: &mut impl DataPlane,
        version: u64,
        data_chunks: Vec<Vec<u8>>,
        will_flush: bool,
        trace: &Option<TraceHandles>,
    ) -> Result<(u64, Option<PipelineStats>, Option<(Vec<Vec<u8>>, Vec<Vec<u8>>)>), EcCheckError>
    {
        let gate = if self.config.use_idle_slots() {
            // A fresh gate per save: the profile describes one training
            // iteration, and determinism wants every save to schedule
            // against the same virtual timeline.
            self.idle_profile.as_ref().map(|(windows, wire)| SlotGate::new(windows.clone(), *wire))
        } else {
            None
        };
        if let Some(t) = trace {
            // The worker count is deliberately absent: traces are
            // byte-identical across stealing thread counts (see
            // `tests/pipeline_determinism.rs`); threads live in
            // `PipelineStats::encode_workers` instead.
            t.tracer.instant(
                t.engine,
                "save.pipeline",
                format!(
                    "buffer={} depth={} gated={}",
                    self.config.pipeline_buffer(),
                    self.config.pipeline_depth(),
                    gate.is_some()
                ),
            );
        }
        let result = pipeline::run(
            PipelineJob {
                version,
                data_chunks,
                keep_chunks: will_flush,
                code: &self.code,
                placement: &self.placement,
                reduction: &self.reduction,
                threads: self.config.coding_threads(),
                buffer: self.config.pipeline_buffer(),
                depth: self.config.pipeline_depth(),
                recorder: &self.recorder,
                trace: trace.as_ref(),
                gate,
                fail_encode_task: self.config.fail_encode_task(),
            },
            cluster,
        );
        // Summary spans for the two overlapped stages, re-emitted on the
        // engine track as direct children of `ecc.save` (timestamps come
        // from the executor; the executor itself writes nothing to the
        // engine track, so these deferred spans never get clamped).
        if let (Some(t), Ok(outcome)) = (trace.as_ref(), &result) {
            t.tracer.begin_at(
                t.engine,
                "save.encode",
                format!("k={} m={} pipelined", self.config.k(), self.config.m()),
                outcome.encode_begin_ns,
            );
            t.tracer.end_at(t.engine, outcome.encode_end_ns);
            t.tracer.begin_at(t.engine, "save.place", "pipelined", outcome.place_begin_ns);
            t.tracer.end_at(t.engine, outcome.place_end_ns);
        }
        let PipelineOutcome { encoded_bytes, stats, kept, .. } = result?;
        Ok((encoded_bytes, Some(stats), kept))
    }

    /// `eccheck.load`: reconstructs every worker's `state_dict` from the
    /// chunks surviving in cluster memory, restoring full fault
    /// tolerance (every node ends up holding its chunk again).
    ///
    /// # Errors
    ///
    /// Returns [`EcCheckError::NoCheckpoint`] before the first save, and
    /// [`EcCheckError::Unrecoverable`] when fewer than `k` chunks survive
    /// and no remote copy exists.
    pub fn load(
        &self,
        cluster: &mut impl DataPlane,
    ) -> Result<(Vec<StateDict>, LoadReport), EcCheckError> {
        if self.version == 0 {
            return Err(EcCheckError::NoCheckpoint);
        }
        self.load_version_inner(cluster, self.version, self.packets_per_worker)
    }

    /// Restores a specific retained checkpoint version — any entry of
    /// [`EcCheck::retained_versions`], not just the newest — through
    /// the same two recovery workflows as [`EcCheck::load`] (falling
    /// back to the tier-1 remote copy when fewer than `k` chunks
    /// survive in memory). The packet layout of an older version is
    /// read back from its stored manifest, so restores work even after
    /// later saves changed the layout.
    ///
    /// # Errors
    ///
    /// Returns [`EcCheckError::NoCheckpoint`] before the first save,
    /// [`EcCheckError::VersionGone`] when `version` is not in the
    /// retention index (collected, or never saved), and otherwise the
    /// same errors as [`EcCheck::load`].
    pub fn load_version(
        &self,
        cluster: &mut impl DataPlane,
        version: u64,
    ) -> Result<(Vec<StateDict>, LoadReport), EcCheckError> {
        if self.version == 0 {
            return Err(EcCheckError::NoCheckpoint);
        }
        if !self.index.contains(version) {
            return Err(EcCheckError::VersionGone { version });
        }
        let ppw = if version == self.version {
            self.packets_per_worker
        } else {
            self.manifest_ppw(cluster, version)?
        };
        self.load_version_inner(cluster, version, ppw)
    }

    /// Reads back the packet-layout manifest of a retained (but not
    /// current) `version` from any alive node, falling back to the
    /// tier-1 remote copy.
    fn manifest_ppw(&self, cluster: &impl DataPlane, version: u64) -> Result<usize, EcCheckError> {
        let key = manifest_key(version);
        let blob = (0..cluster.nodes())
            .filter(|&node| cluster.alive(node))
            .find_map(|node| cluster.get_local(node, &key))
            .or_else(|| cluster.get_remote(&remote_manifest_key(version)))
            .ok_or(EcCheckError::VersionGone { version })?;
        let bytes: [u8; 8] = blob.as_slice().try_into().map_err(|_| EcCheckError::Config {
            detail: format!("manifest for v{version} is {} bytes, expected 8", blob.len()),
        })?;
        Ok(u64::from_le_bytes(bytes) as usize)
    }

    /// Shared body of [`EcCheck::load`] and [`EcCheck::load_version`]:
    /// gather → (decode | resend | remote fallback) → restore fault
    /// tolerance → reassemble, all against an explicit `version` whose
    /// packet layout is `ppw` packets per worker.
    fn load_version_inner(
        &self,
        cluster: &mut impl DataPlane,
        version: u64,
        ppw: usize,
    ) -> Result<(Vec<StateDict>, LoadReport), EcCheckError> {
        self.ensure_fresh_epoch(cluster)?;
        let (k, n) = (self.config.k(), self.spec.nodes());
        self.recorder.counter("ecc.load.calls").incr();
        let load_timer = self.recorder.timer("ecc.load.ns");
        let trace = self.trace.clone();
        let root_span = trace
            .as_ref()
            .map(|t| t.tracer.span(t.engine, "ecc.load", format!("version={version}")));

        // Which chunks survive? Chunk id: data j -> j, parity i -> k + i.
        // Every fetched blob is verified against its stored checksum: a
        // bit-flipped chunk must become an *erasure* the code corrects,
        // never an input `reconstruct_all` decodes into garbage.
        let gather_span = trace.as_ref().map(|t| t.tracer.span(t.engine, "load.gather", ""));
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
        let mut failed_nodes = Vec::new();
        let mut corrupt_nodes = Vec::new();
        for node in 0..n {
            match self.fetch_chunk(cluster, node, version, &trace) {
                ChunkFetch::Intact(blob) => {
                    let chunk_id = self.chunk_id_of_node(node);
                    trace_fetch(&trace, node, &format!("chunk {chunk_id}"));
                    shards[chunk_id] = Some(blob);
                    self.heartbeat(node);
                }
                ChunkFetch::Missing => failed_nodes.push(node),
                ChunkFetch::Corrupt => {
                    self.recorder.counter("ecc.load.corrupt_chunks").incr();
                    self.recorder
                        .event("ecc.load.corrupt", format!("node {node} chunk failed checksum"));
                    if let Some(t) = &trace {
                        t.tracer.instant(t.engine, "load.corrupt", format!("node {node}"));
                    }
                    corrupt_nodes.push(node);
                    failed_nodes.push(node);
                }
            }
        }
        drop(gather_span);
        let survivors = shards.iter().filter(|s| s.is_some()).count();
        self.recorder.counter("ecc.load.survivors").add(survivors as u64);
        if survivors < k {
            // Catastrophic: fall back to the remote copy if one exists.
            // (load_timer drops after the call, timing the remote path too.)
            return self.load_from_remote(
                cluster,
                version,
                ppw,
                failed_nodes,
                corrupt_nodes,
                &shards,
            );
        }

        let data_lost = (0..k).any(|j| shards[j].is_none());
        let workflow = if data_lost { RecoveryWorkflow::Decode } else { RecoveryWorkflow::Resend };
        self.recorder
            .counter(if data_lost {
                "ecc.load.workflow.decode"
            } else {
                "ecc.load.workflow.resend"
            })
            .incr();
        self.recorder.event(
            "ecc.load.workflow",
            format!("{workflow:?} survivors={survivors} failed={failed_nodes:?}"),
        );

        // Rebuild all chunks (decode if data lost, re-encode lost parity).
        let shard_refs: Vec<Option<&[u8]>> = shards.iter().map(|s| s.as_deref()).collect();
        let rebuilt_count = shard_refs.iter().filter(|s| s.is_none()).count();
        let span = trace.as_ref().map(|t| {
            t.tracer.span(
                t.engine,
                "load.reconstruct",
                format!("{workflow:?}, {rebuilt_count} lost"),
            )
        });
        let all_chunks = self.code.reconstruct_all(&shard_refs)?;
        drop(span);

        // Gather the headers: each worker's header independently falls
        // back across *all* survivors (and finally the remote copy) —
        // one node having lost one header must not doom the recovery
        // while another survivor still holds it.
        let headers = self.gather_headers(cluster, version, survivors, &trace)?;

        // Restore fault tolerance: every node stores its chunk again,
        // and every node regains the headers. A node that dies *during*
        // this phase is skipped, not fatal: the decoded state is already
        // in hand, and the skipped node is re-seeded by the next
        // save/load.
        let span = trace.as_ref().map(|t| t.tracer.span(t.engine, "load.restore", ""));
        let header_frames: Vec<Vec<u8>> =
            headers.iter().map(|h| checksum_frame(h.as_slice())).collect();
        let mut restore_skipped = Vec::new();
        'restore: for node in 0..n {
            let chunk_id = self.chunk_id_of_node(node);
            let mut puts: Vec<(String, Vec<u8>)> = Vec::with_capacity(2 * headers.len() + 3);
            puts.push((chunk_key(version), all_chunks[chunk_id].clone()));
            puts.push((chunk_crc_key(version), checksum_frame(&all_chunks[chunk_id])));
            for (w, header) in headers.iter().enumerate() {
                puts.push((header_key(version, w), header.clone()));
                puts.push((header_crc_key(version, w), header_frames[w].clone()));
            }
            puts.push((manifest_key(version), manifest(ppw)));
            puts.push((epoch_key(version), encode_epoch(self.placement_epoch)));
            for (key, bytes) in puts {
                match cluster.put_local(node, &key, bytes) {
                    Ok(()) => {}
                    Err(ClusterError::NodeDown { .. }) => {
                        self.recorder.counter("ecc.load.restore_skipped").incr();
                        self.recorder.event(
                            "ecc.load.restore_skip",
                            format!("node {node} died mid-restore"),
                        );
                        if let Some(t) = &trace {
                            t.tracer.instant(t.engine, "load.restore_skip", format!("node {node}"));
                        }
                        restore_skipped.push(node);
                        continue 'restore;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            trace_store(&trace, node, &format!("chunk {chunk_id}"));
        }
        drop(span);

        // Reassemble every worker's state_dict from the data chunks.
        let span = trace.as_ref().map(|t| t.tracer.span(t.engine, "load.reassemble", ""));
        let dicts = self.reassemble_all(&all_chunks[..k], &headers, ppw)?;
        let restored_bytes: u64 = dicts.iter().map(|d| d.tensor_bytes() as u64).sum();
        drop(span);
        load_timer.stop();
        drop(root_span);
        self.recorder.counter("ecc.load.rebuilt_chunks").add(rebuilt_count as u64);
        self.recorder.counter("ecc.load.restored_bytes").add(restored_bytes);
        Ok((
            dicts,
            LoadReport {
                version,
                workflow,
                failed_nodes,
                corrupt_nodes,
                rebuilt_chunks: rebuilt_count,
                restore_skipped,
                restored_bytes,
            },
        ))
    }

    /// Sleeps the bounded exponential backoff before retry `attempt + 1`
    /// (`attempt` is 0-based): `min(base << attempt, cap)` nanoseconds.
    /// Instant retries are correct against the in-memory plane but
    /// hot-spin a real server. The nominal delay is pure config — the
    /// counters below advance identically on every run with the same
    /// fault pattern, so ManualClock tests stay byte-identical; only
    /// the sleep itself touches wall time.
    fn backoff_wait(&self, attempt: usize) {
        let base = self.config.fetch_backoff_base_ns();
        if base == 0 {
            return;
        }
        let shift = attempt.min(20) as u32;
        let delay = base.saturating_mul(1 << shift).min(self.config.fetch_backoff_cap_ns());
        self.recorder.counter("ecc.load.backoff.waits").incr();
        self.recorder.counter("ecc.load.backoff.budget_ns").add(delay);
        std::thread::sleep(std::time::Duration::from_nanos(delay));
    }

    /// Fetches and checksum-verifies one node's chunk, retrying a
    /// transiently missing blob up to `fetch_retries` times before
    /// declaring the node's chunk lost.
    fn fetch_chunk(
        &self,
        cluster: &impl DataPlane,
        node: usize,
        version: u64,
        trace: &Option<TraceHandles>,
    ) -> ChunkFetch {
        let retries = self.config.fetch_retries();
        for attempt in 0..=retries {
            if !cluster.alive(node) {
                return ChunkFetch::Missing;
            }
            let blob = cluster.get_local(node, &chunk_key(version));
            let crc = cluster.get_local(node, &chunk_crc_key(version));
            if let (Some(blob), Some(crc)) = (blob, crc) {
                if verify_checksum(&blob, &crc) {
                    return ChunkFetch::Intact(blob);
                }
                return ChunkFetch::Corrupt;
            }
            if attempt < retries {
                self.recorder.counter("ecc.load.fetch_retries").incr();
                if let Some(t) = trace {
                    t.tracer.instant(
                        t.engine,
                        "load.retry",
                        format!("node {node} chunk, attempt {}", attempt + 1),
                    );
                }
                self.backoff_wait(attempt);
            }
        }
        ChunkFetch::Missing
    }

    /// Gathers every worker's header, verifying checksums and falling
    /// back per header across all survivors, then the remote copy.
    ///
    /// # Errors
    ///
    /// Returns [`EcCheckError::Unrecoverable`] naming the workers whose
    /// header is gone from every survivor and from remote storage.
    fn gather_headers(
        &self,
        cluster: &impl DataPlane,
        version: u64,
        survivors: usize,
        trace: &Option<TraceHandles>,
    ) -> Result<Vec<Vec<u8>>, EcCheckError> {
        let n = self.spec.nodes();
        let world = self.spec.world_size();
        let retries = self.config.fetch_retries();
        let primary = (0..n).find(|&node| cluster.alive(node));
        let mut headers: Vec<Vec<u8>> = Vec::with_capacity(world);
        let mut lost_workers = Vec::new();
        for w in 0..world {
            let mut found = None;
            'attempts: for attempt in 0..=retries {
                for node in 0..n {
                    if !cluster.alive(node) {
                        continue;
                    }
                    let blob = cluster.get_local(node, &header_key(version, w));
                    let crc = cluster.get_local(node, &header_crc_key(version, w));
                    let (Some(blob), Some(crc)) = (blob, crc) else { continue };
                    if !verify_checksum(&blob, &crc) {
                        if attempt == 0 {
                            self.recorder.counter("ecc.load.corrupt_headers").incr();
                            self.recorder.event(
                                "ecc.load.corrupt",
                                format!("node {node} header {w} failed checksum"),
                            );
                        }
                        continue;
                    }
                    if primary != Some(node) {
                        self.recorder.counter("ecc.load.header_fallbacks").incr();
                        if let Some(t) = trace {
                            t.tracer.instant(
                                t.engine,
                                "load.header_fallback",
                                format!("header {w} served by node {node}"),
                            );
                        }
                    }
                    found = Some(blob);
                    break 'attempts;
                }
                if attempt < retries {
                    self.recorder.counter("ecc.load.fetch_retries").incr();
                    self.backoff_wait(attempt);
                }
            }
            if found.is_none() {
                // Last resort: the low-frequency remote copy.
                let blob = cluster.get_remote(&remote_header_key(version, w));
                let crc = cluster.get_remote(&remote_header_crc_key(version, w));
                if let (Some(blob), Some(crc)) = (blob, crc) {
                    if verify_checksum(&blob, &crc) {
                        self.recorder.counter("ecc.load.header_remote").incr();
                        found = Some(blob);
                    }
                }
            }
            match found {
                Some(h) => headers.push(h),
                None => lost_workers.push(w),
            }
        }
        if !lost_workers.is_empty() {
            self.recorder.event(
                "ecc.load.lost_workers",
                format!("headers unrecoverable for workers {lost_workers:?}"),
            );
            return Err(EcCheckError::Unrecoverable {
                survivors,
                needed: self.config.k(),
                lost_workers,
            });
        }
        Ok(headers)
    }

    /// Reads a chunk that is about to be patched in place, verifying
    /// its checksum first: patching corrupt bytes and re-framing them
    /// would launder the corruption into a "valid" blob.
    fn get_verified_for_patch(
        &self,
        cluster: &impl DataPlane,
        node: usize,
        version: u64,
    ) -> Result<Vec<u8>, EcCheckError> {
        let blob =
            cluster.get_local(node, &chunk_key(version)).ok_or(EcCheckError::NoCheckpoint)?;
        let crc =
            cluster.get_local(node, &chunk_crc_key(version)).ok_or(EcCheckError::NoCheckpoint)?;
        if !verify_checksum(&blob, &crc) {
            self.recorder.counter("ecc.update.corrupt_chunks").incr();
            self.recorder.event("ecc.update.corrupt", format!("node {node} chunk failed checksum"));
            return Err(EcCheckError::CorruptChunk { node });
        }
        Ok(blob)
    }

    /// Incrementally updates one worker's shard in the *current*
    /// checkpoint version: only the worker's packet region and the
    /// corresponding parity deltas move, exploiting the code's linearity
    /// (an extension beyond the paper, in the spirit of Check-N-Run's
    /// incremental checkpoints discussed in its related work).
    ///
    /// Tensor shapes must be unchanged from the last full save (true
    /// during training — only values evolve); otherwise run a full
    /// [`EcCheck::save`].
    ///
    /// # Errors
    ///
    /// Returns [`EcCheckError::NoCheckpoint`] before the first save,
    /// [`EcCheckError::Config`] when the worker id is out of range or
    /// the shard's packet count changed,
    /// [`EcCheckError::Cluster`] (`NodeDown`) when any node is dead
    /// (all nodes must be alive to patch chunks in place — run
    /// [`EcCheck::load`] first to restore fault tolerance), and
    /// [`EcCheckError::CorruptChunk`] when a stored chunk fails its
    /// checksum (patching it would launder the corruption under a
    /// fresh, valid checksum — run [`EcCheck::load`] to repair).
    ///
    /// Since the tiered store landed this is sugar for a single-worker
    /// [`EcCheck::save_delta`]: both share one parity-patch
    /// implementation (and its all-or-nothing torn-update guard).
    pub fn update_worker(
        &mut self,
        cluster: &mut impl DataPlane,
        worker: usize,
        state_dict: &StateDict,
    ) -> Result<u64, EcCheckError> {
        let dirty = [WorkerDirtySet { worker, state: state_dict }];
        let report = self.delta_inner(cluster, &dirty, DeltaOp::Update)?;
        self.recorder.counter("ecc.update.calls").incr();
        self.recorder.counter("ecc.update.changed_bytes").add(report.changed_bytes);
        Ok(report.changed_bytes)
    }

    /// Incrementally checkpoints an arbitrary *dirty set* of workers
    /// into the current version: only the dirty regions and the
    /// corresponding parity deltas move. For each touched data chunk,
    /// the delta `old ⊕ new` (zero outside the dirty slices) is
    /// encoded and the result XORed onto the stored parity — by the
    /// code's GF(2)-linearity, the patched parity equals what a full
    /// re-encode would produce, at a fraction of the traffic
    /// (`region × (1 + m)` instead of the full save's `m·s·W`; see
    /// [`DeltaReport::traffic_bytes`]). Like a full save, the patch
    /// streams through the configured executor:
    /// [`SaveMode::Pipelined`] runs the dirty columns through the same
    /// encode → reduce → transfer rings, with all stores deferred to
    /// the end so a mid-flight failure cannot tear the in-place update.
    ///
    /// Delta saves do not bump the version — they evolve the newest
    /// retained checkpoint in place. Tensor shapes must be unchanged
    /// since the last full [`EcCheck::save`].
    ///
    /// An empty dirty set is a no-op returning a zeroed report.
    ///
    /// # Errors
    ///
    /// Exactly [`EcCheck::update_worker`]'s, plus
    /// [`EcCheckError::Config`] when a worker appears twice in `dirty`.
    pub fn save_delta(
        &mut self,
        cluster: &mut impl DataPlane,
        dirty: &[WorkerDirtySet<'_>],
    ) -> Result<DeltaReport, EcCheckError> {
        if self.version == 0 {
            return Err(EcCheckError::NoCheckpoint);
        }
        if dirty.is_empty() {
            return Ok(DeltaReport {
                version: self.version,
                workers: Vec::new(),
                chunks_patched: 0,
                changed_bytes: 0,
                region_bytes: 0,
                traffic_bytes: 0,
                encoded_bytes: 0,
                pipeline: None,
            });
        }
        let report = self.delta_inner(cluster, dirty, DeltaOp::Save)?;
        self.recorder.counter("ecc.delta.calls").incr();
        self.recorder.counter("ecc.delta.changed_bytes").add(report.changed_bytes);
        self.recorder.counter("ecc.delta.traffic_bytes").add(report.traffic_bytes);
        self.recorder.counter("ecc.delta.encoded_bytes").add(report.encoded_bytes);
        self.recorder.event(
            "ecc.delta",
            format!(
                "version={} workers={:?} changed={} traffic={}",
                report.version, report.workers, report.changed_bytes, report.traffic_bytes
            ),
        );
        Ok(report)
    }

    /// Shared core of [`EcCheck::update_worker`] and
    /// [`EcCheck::save_delta`]: verify every chunk the patch touches,
    /// build whole-chunk deltas (zero outside the dirty regions), then
    /// patch the data chunks and XOR the encoded parity deltas onto
    /// the stored parity. Both executors produce the same plane-op
    /// sequence — all reads up front, then data columns ascending,
    /// then parity, then headers — because in-place patches lack the
    /// full save's version-rotation safety net, so no store may happen
    /// until everything that could fail has succeeded.
    fn delta_inner(
        &mut self,
        cluster: &mut impl DataPlane,
        dirty: &[WorkerDirtySet<'_>],
        op: DeltaOp,
    ) -> Result<DeltaReport, EcCheckError> {
        if self.version == 0 {
            return Err(EcCheckError::NoCheckpoint);
        }
        let world = self.spec.world_size();
        for d in dirty {
            if d.worker >= world {
                return Err(EcCheckError::Config {
                    detail: format!("worker {} out of range (world size {world})", d.worker),
                });
            }
        }
        let mut sorted: Vec<&WorkerDirtySet<'_>> = dirty.iter().collect();
        sorted.sort_by_key(|d| d.worker);
        if let Some(pair) = sorted.windows(2).find(|pair| pair[0].worker == pair[1].worker) {
            return Err(EcCheckError::Config {
                detail: format!("worker {} appears twice in the dirty set", pair[0].worker),
            });
        }
        if let Some(dead) = (0..self.spec.nodes()).find(|&node| !cluster.alive(node)) {
            return Err(ClusterError::NodeDown { node: dead }.into());
        }
        self.ensure_fresh_epoch(cluster)?;

        let version = self.version;
        let workers: Vec<usize> = sorted.iter().map(|d| d.worker).collect();
        let ps = self.config.packet_size();
        let max_packets = self.packets_per_worker;
        let (timer_name, span_name) = match op {
            DeltaOp::Update => ("ecc.update.ns", "ecc.update"),
            DeltaOp::Save => ("ecc.delta.ns", "ecc.delta"),
        };
        let timer = self.recorder.timer(timer_name);
        let trace = self.trace.clone();
        let detail = match op {
            DeltaOp::Update => format!("worker {}", workers[0]),
            DeltaOp::Save => format!("version={version} workers={workers:?}"),
        };
        let root_span = trace.as_ref().map(|t| t.tracer.span(t.engine, span_name, detail));

        // Re-pack each dirty worker into its (fixed) packet count and
        // bucket the regions by data column.
        struct DirtyRegion {
            worker: usize,
            base: usize,
            region: Vec<u8>,
            header: Vec<u8>,
        }
        let group_size = self.placement.group_size();
        let mut by_col: BTreeMap<usize, Vec<DirtyRegion>> = BTreeMap::new();
        for d in &sorted {
            let dec = decompose(d.state);
            let header = dec.header_to_bytes();
            let (mut packets, _) = self.packer.pack(dec.tensor_data());
            if packets.len() > max_packets {
                return Err(EcCheckError::Config {
                    detail: format!(
                        "worker {} now needs {} packets (> {max_packets}); run a full save",
                        d.worker,
                        packets.len()
                    ),
                });
            }
            while packets.len() < max_packets {
                packets.push(Packet::new(packets.len(), vec![0u8; ps]));
            }
            let mut region = Vec::with_capacity(max_packets * ps);
            for p in &packets {
                region.extend_from_slice(p.data());
            }
            let base = (d.worker % group_size) * max_packets * ps;
            by_col.entry(d.worker / group_size).or_default().push(DirtyRegion {
                worker: d.worker,
                base,
                region,
                header,
            });
        }

        // Verify *every* chunk the patch will touch before mutating any
        // of them: failing halfway through would leave a data chunk
        // updated but its parity stale (a torn update no checksum can
        // catch later).
        let mut cols: Vec<(usize, Vec<u8>)> = Vec::with_capacity(by_col.len());
        for &j in by_col.keys() {
            let node = self.placement.data_nodes()[j];
            cols.push((j, self.get_verified_for_patch(cluster, node, version)?));
        }
        let mut parities: Vec<Vec<u8>> = self
            .placement
            .parity_nodes()
            .iter()
            .map(|&node| self.get_verified_for_patch(cluster, node, version))
            .collect::<Result<_, _>>()?;

        // Whole-chunk deltas, zero outside the dirty slices (the
        // bit-plane layout spans the full chunk, so the delta must
        // too); patch the chunk copies alongside.
        let mut changed = 0u64;
        let mut region_bytes = 0u64;
        let mut deltas: Vec<Vec<u8>> = Vec::with_capacity(cols.len());
        for (j, chunk) in cols.iter_mut() {
            let mut delta = vec![0u8; chunk.len()];
            for dr in &by_col[j] {
                let slice = &mut delta[dr.base..dr.base + dr.region.len()];
                slice.copy_from_slice(&chunk[dr.base..dr.base + dr.region.len()]);
                ecc_erasure::region::xor_into(slice, &dr.region);
                chunk[dr.base..dr.base + dr.region.len()].copy_from_slice(&dr.region);
                region_bytes += dr.region.len() as u64;
            }
            changed += delta.iter().filter(|&&b| b != 0).count() as u64;
            deltas.push(delta);
        }

        let (encoded_bytes, pipeline_stats) = match self.config.save_mode() {
            SaveMode::Sequential => {
                let mut encoded = 0u64;
                for ((j, _), delta) in cols.iter().zip(&deltas) {
                    let parity_deltas = self.code.parity_delta(*j, delta)?;
                    for (i, pd) in parity_deltas.iter().enumerate() {
                        encoded += pd.len() as u64;
                        ecc_erasure::region::xor_into(&mut parities[i], pd);
                    }
                }
                // Canonical store order, shared with the pipelined
                // executor's finish step: data columns ascending, then
                // parity — each chunk before its checksum frame.
                for (j, chunk) in &cols {
                    let node = self.placement.data_nodes()[*j];
                    let frame = checksum_frame(chunk);
                    cluster.put_local(node, &chunk_key(version), chunk.clone())?;
                    cluster.put_local(node, &chunk_crc_key(version), frame)?;
                    trace_store(&trace, node, &format!("data chunk {j}"));
                }
                for (i, parity) in parities.iter().enumerate() {
                    let node = self.placement.parity_nodes()[i];
                    let frame = checksum_frame(parity);
                    cluster.put_local(node, &chunk_key(version), parity.clone())?;
                    cluster.put_local(node, &chunk_crc_key(version), frame)?;
                    trace_store(&trace, node, &format!("parity chunk {i}"));
                }
                (encoded, None)
            }
            SaveMode::Pipelined => {
                let gate = if self.config.use_idle_slots() {
                    self.idle_profile
                        .as_ref()
                        .map(|(windows, wire)| SlotGate::new(windows.clone(), *wire))
                } else {
                    None
                };
                let delta_cols: Vec<DeltaColumn> = cols
                    .into_iter()
                    .zip(deltas)
                    .map(|((col, chunk), delta)| DeltaColumn { col, chunk, delta })
                    .collect();
                let outcome = pipeline::run_delta(
                    DeltaJob {
                        version,
                        cols: delta_cols,
                        parity: parities,
                        code: &self.code,
                        placement: &self.placement,
                        threads: self.config.coding_threads(),
                        buffer: self.config.pipeline_buffer(),
                        depth: self.config.pipeline_depth(),
                        recorder: &self.recorder,
                        trace: trace.as_ref(),
                        gate,
                        fail_encode_task: self.config.fail_encode_task(),
                    },
                    cluster,
                )?;
                (outcome.encoded_bytes, Some(outcome.stats))
            }
        };

        // Re-broadcast each dirty worker's (possibly changed) header,
        // ascending worker order.
        for regions in by_col.values() {
            for dr in regions {
                let frame = checksum_frame(&dr.header);
                for node in 0..self.spec.nodes() {
                    cluster.put_local(node, &header_key(version, dr.worker), dr.header.clone())?;
                    cluster.put_local(node, &header_crc_key(version, dr.worker), frame.clone())?;
                }
            }
        }
        timer.stop();
        drop(root_span);
        Ok(DeltaReport {
            version,
            workers,
            chunks_patched: by_col.len(),
            changed_bytes: changed,
            region_bytes,
            traffic_bytes: region_bytes * (1 + self.config.m() as u64),
            encoded_bytes,
            pipeline: pipeline_stats,
        })
    }

    /// Flushes the current checkpoint to remote storage immediately
    /// (normally driven by `remote_flush_every`).
    ///
    /// # Errors
    ///
    /// Returns [`EcCheckError::NoCheckpoint`] before the first save.
    pub fn flush_remote(&self, cluster: &mut impl DataPlane) -> Result<(), EcCheckError> {
        if self.version == 0 {
            return Err(EcCheckError::NoCheckpoint);
        }
        let version = self.version;
        let n = self.spec.nodes();
        let flush_timer = self.recorder.timer("ecc.flush.ns");
        let root_span = self
            .trace
            .as_ref()
            .map(|t| t.tracer.span(t.engine, "ecc.flush", format!("version={version}")));
        self.recorder.counter("ecc.flush.calls").incr();
        for node in 0..n {
            let blob = cluster.get_local(node, &chunk_key(version));
            let crc = cluster.get_local(node, &chunk_crc_key(version));
            let (Some(blob), Some(crc)) = (blob, crc) else { continue };
            if !verify_checksum(&blob, &crc) {
                // Never propagate a corrupt chunk into the remote copy
                // of last resort.
                self.recorder.counter("ecc.flush.skipped_corrupt").incr();
                self.recorder
                    .event("ecc.flush.corrupt", format!("node {node} chunk failed checksum"));
                continue;
            }
            cluster.put_remote(&remote_chunk_key(version, node), blob);
            cluster.put_remote(&remote_chunk_crc_key(version, node), crc);
        }
        // Each header falls back across all survivors, like recovery.
        for w in 0..self.spec.world_size() {
            for node in 0..n {
                if !cluster.alive(node) {
                    continue;
                }
                let h = cluster.get_local(node, &header_key(version, w));
                let crc = cluster.get_local(node, &header_crc_key(version, w));
                let (Some(h), Some(crc)) = (h, crc) else { continue };
                if !verify_checksum(&h, &crc) {
                    continue;
                }
                cluster.put_remote(&remote_header_key(version, w), h);
                cluster.put_remote(&remote_header_crc_key(version, w), crc);
                break;
            }
        }
        cluster.put_remote(&remote_manifest_key(version), manifest(self.packets_per_worker));
        flush_timer.stop();
        drop(root_span);
        Ok(())
    }

    fn flush_remote_chunks(
        &self,
        cluster: &mut impl DataPlane,
        version: u64,
        data_chunks: &[Vec<u8>],
        parity_chunks: &[Vec<u8>],
        headers: &[Vec<u8>],
    ) {
        for (j, chunk) in data_chunks.iter().enumerate() {
            let node = self.placement.data_nodes()[j];
            cluster.put_remote(&remote_chunk_key(version, node), chunk.clone());
            cluster.put_remote(&remote_chunk_crc_key(version, node), checksum_frame(chunk));
        }
        for (i, chunk) in parity_chunks.iter().enumerate() {
            let node = self.placement.parity_nodes()[i];
            cluster.put_remote(&remote_chunk_key(version, node), chunk.clone());
            cluster.put_remote(&remote_chunk_crc_key(version, node), checksum_frame(chunk));
        }
        for (w, h) in headers.iter().enumerate() {
            cluster.put_remote(&remote_header_key(version, w), h.clone());
            cluster.put_remote(&remote_header_crc_key(version, w), checksum_frame(h));
        }
        cluster.put_remote(&remote_manifest_key(version), manifest(self.packets_per_worker));
    }

    /// Catastrophic-failure path: restore everything from the remote
    /// copy written by step 4, verifying remote blobs the same way the
    /// in-memory path does.
    ///
    /// `local_shards` is the (insufficient) set of intact chunks the
    /// in-memory gather produced, used to attribute exactly which
    /// workers' states are lost when remote storage cannot fill the
    /// gap.
    fn load_from_remote(
        &self,
        cluster: &mut impl DataPlane,
        version: u64,
        ppw: usize,
        failed_nodes: Vec<usize>,
        corrupt_nodes: Vec<usize>,
        local_shards: &[Option<Vec<u8>>],
    ) -> Result<(Vec<StateDict>, LoadReport), EcCheckError> {
        let (k, n) = (self.config.k(), self.spec.nodes());
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
        for node in 0..n {
            let blob = cluster.get_remote(&remote_chunk_key(version, node));
            let crc = cluster.get_remote(&remote_chunk_crc_key(version, node));
            let (Some(blob), Some(crc)) = (blob, crc) else { continue };
            if !verify_checksum(&blob, &crc) {
                self.recorder.counter("ecc.load.corrupt_chunks").incr();
                self.recorder.event(
                    "ecc.load.corrupt",
                    format!("remote chunk of node {node} failed checksum"),
                );
                continue;
            }
            shards[self.chunk_id_of_node(node)] = Some(blob);
        }
        let survivors = shards.iter().filter(|s| s.is_some()).count();
        if survivors < k {
            // Name the lost workers: a data group's state is gone when
            // neither memory nor remote holds its chunk intact (with
            // fewer than k chunks nothing can be decoded around it).
            // `survivors` in the report counts intact chunks available
            // *anywhere* — memory or remote.
            let available =
                (0..n).filter(|&id| local_shards[id].is_some() || shards[id].is_some()).count();
            let group_size = self.placement.group_size();
            let lost_workers: Vec<usize> = (0..k)
                .filter(|&j| local_shards[j].is_none() && shards[j].is_none())
                .flat_map(|j| j * group_size..(j + 1) * group_size)
                .collect();
            self.recorder.event(
                "ecc.load.lost_workers",
                format!("chunks unrecoverable; lost workers {lost_workers:?}"),
            );
            return Err(EcCheckError::Unrecoverable {
                survivors: available,
                needed: k,
                lost_workers,
            });
        }
        let world = self.spec.world_size();
        let mut headers: Vec<Vec<u8>> = Vec::with_capacity(world);
        let mut lost_workers = Vec::new();
        for w in 0..world {
            let blob = cluster.get_remote(&remote_header_key(version, w));
            let crc = cluster.get_remote(&remote_header_crc_key(version, w));
            match (blob, crc) {
                (Some(blob), Some(crc)) if verify_checksum(&blob, &crc) => {
                    headers.push(blob);
                }
                _ => lost_workers.push(w),
            }
        }
        if !lost_workers.is_empty() {
            return Err(EcCheckError::Unrecoverable { survivors, needed: k, lost_workers });
        }
        let shard_refs: Vec<Option<&[u8]>> = shards.iter().map(|s| s.as_deref()).collect();
        let all_chunks = self.code.reconstruct_all(&shard_refs)?;
        let mut restore_skipped = Vec::new();
        for node in 0..n {
            if !cluster.alive(node) {
                restore_skipped.push(node);
                continue;
            }
            let chunk_id = self.chunk_id_of_node(node);
            cluster.put_local(node, &chunk_key(version), all_chunks[chunk_id].clone())?;
            cluster.put_local(
                node,
                &chunk_crc_key(version),
                checksum_frame(&all_chunks[chunk_id]),
            )?;
            for (w, header) in headers.iter().enumerate() {
                cluster.put_local(node, &header_key(version, w), header.clone())?;
                cluster.put_local(node, &header_crc_key(version, w), checksum_frame(header))?;
            }
        }
        let dicts = self.reassemble_all(&all_chunks[..k], &headers, ppw)?;
        let restored_bytes: u64 = dicts.iter().map(|d| d.tensor_bytes() as u64).sum();
        self.recorder.counter("ecc.load.workflow.remote").incr();
        self.recorder.counter("ecc.load.rebuilt_chunks").add((n - survivors) as u64);
        self.recorder.counter("ecc.load.restored_bytes").add(restored_bytes);
        self.recorder.event(
            "ecc.load.workflow",
            format!("Remote survivors={survivors} failed={failed_nodes:?}"),
        );
        Ok((
            dicts,
            LoadReport {
                version,
                workflow: RecoveryWorkflow::Remote,
                failed_nodes,
                corrupt_nodes,
                rebuilt_chunks: n - survivors,
                restore_skipped,
                restored_bytes,
            },
        ))
    }

    /// Splits the data chunks back into per-worker packets and
    /// reassembles each worker's `state_dict` through its header —
    /// deriving the whole layout from the broadcast header alone,
    /// exactly as a recovering replacement node must.
    fn reassemble_all(
        &self,
        data_chunks: &[Vec<u8>],
        headers: &[Vec<u8>],
        ppw: usize,
    ) -> Result<Vec<StateDict>, EcCheckError> {
        let ps = self.config.packet_size();
        let group_size = self.placement.group_size();
        let max_packets = ppw;
        let mut dicts = Vec::with_capacity(self.spec.world_size());
        for (w, header) in headers.iter().enumerate() {
            let j = w / group_size;
            let r = w % group_size;
            let base = r * max_packets * ps;
            let mut d = Decomposition::from_header(header)?;
            let lens: Vec<usize> =
                d.tensor_keys().iter().map(ecc_checkpoint::TensorKey::byte_len).collect();
            let total: usize = lens.iter().sum();
            // Real (pre-padding) packet count for this worker.
            let pw = self.packer.packet_count(total);
            let extents = self.packer.extents_for(&lens);
            let region = &data_chunks[j][base..base + pw * ps];
            let packets: Vec<Packet> =
                (0..pw).map(|b| Packet::new(b, region[b * ps..(b + 1) * ps].to_vec())).collect();
            let tensors = self.packer.unpack(&packets, &extents, &lens)?;
            d.set_tensor_data(tensors)?;
            dicts.push(d.reassemble()?);
        }
        Ok(dicts)
    }

    fn chunk_id_of_node(&self, node: usize) -> usize {
        match self.placement.role_of(node).expect("every node has a role") {
            (true, j) => j,
            (false, i) => self.config.k() + i,
        }
    }
}

/// Emits a driver → node chunk-placement flow: an arrow out of the
/// currently open driver span into a `store.chunk` slice on the node's
/// `storage` track.
pub(crate) fn trace_store(trace: &Option<TraceHandles>, node: usize, what: &str) {
    if let Some(t) = trace {
        let flow = t.tracer.flow_start(t.engine, "p2p.store");
        let nt = t.node_track(node);
        let recv = t.tracer.span(nt, "store.chunk", what);
        t.tracer.flow_end(nt, flow, "p2p.store");
        drop(recv);
    }
}

/// Emits a node → driver chunk-fetch flow: a `fetch.chunk` slice on the
/// node's `storage` track with an arrow into the currently open driver
/// span.
fn trace_fetch(trace: &Option<TraceHandles>, node: usize, what: &str) {
    if let Some(t) = trace {
        let nt = t.node_track(node);
        let send = t.tracer.span(nt, "fetch.chunk", what);
        let flow = send.flow_start("p2p.fetch");
        drop(send);
        t.tracer.flow_end(t.engine, flow, "p2p.fetch");
    }
}

fn manifest(packets_per_worker: usize) -> Vec<u8> {
    (packets_per_worker as u64).to_le_bytes().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_checkpoint::Value;
    use ecc_cluster::{Cluster, ClusterSpec};
    use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};

    fn tiny_config() -> EcCheckConfig {
        EcCheckConfig::paper_defaults().with_packet_size(256).with_coding_threads(2)
    }

    /// 4 nodes × 2 GPUs with realistic (tiny) Megatron-style shards.
    fn setup() -> (ClusterSpec, Cluster, EcCheck, Vec<StateDict>) {
        let spec = ClusterSpec::tiny_test(4, 2);
        let cluster = Cluster::new(spec);
        let ecc = EcCheck::initialize(&spec, tiny_config()).unwrap();
        let model = ModelConfig::gpt2(64, 4, 4).with_vocab(512).with_seq_len(32);
        let par = ParallelismSpec::new(2, 2, 2).unwrap();
        let sd_spec = StateDictSpec::new(model, par);
        let dicts: Vec<StateDict> =
            (0..8).map(|w| build_worker_state_dict(&sd_spec, w).unwrap()).collect();
        (spec, cluster, ecc, dicts)
    }

    #[test]
    fn tracer_records_save_and_load_timelines() {
        let (_, mut cluster, mut ecc, dicts) = setup();
        let tracer = ecc.attach_tracer();
        ecc.save(&mut cluster, &dicts).unwrap();
        cluster.fail_node(0);
        cluster.fail_node(2);
        cluster.replace_node(0);
        cluster.replace_node(2);
        ecc.load(&mut cluster).unwrap();

        let json = tracer.chrome_trace_json();
        let stats = ecc_trace::validate_chrome_trace(&json).expect("well-formed trace");
        assert!(stats.spans > 0);
        assert!(stats.flows > 0, "store/fetch flows should be present");
        // Driver + coding + 4 node processes.
        assert!(stats.processes >= 6, "got {} processes", stats.processes);
        for needle in ["ecc.save", "checkpoint.pack", "save.encode", "ecc.load", "load.reconstruct"]
        {
            assert!(json.contains(needle), "trace should mention {needle}");
        }
        let summary = tracer.critical_path_summary("ecc.save");
        assert!(summary.contains("save.encode"), "{summary}");
        assert!(summary.contains("(self)"), "{summary}");
    }

    #[test]
    fn placement_epochs_are_strictly_monotone() {
        let (_, _, mut ecc, _) = setup();
        assert_eq!(ecc.placement_epoch(), 0);
        let next = ecc.placement().clone();
        ecc.apply_placement(1, next.clone()).unwrap();
        assert_eq!(ecc.placement_epoch(), 1);
        // Equal and older epochs are refused.
        assert!(matches!(
            ecc.apply_placement(1, next.clone()),
            Err(EcCheckError::StaleEpoch { engine: 1, committed: 1 })
        ));
        assert!(matches!(
            ecc.apply_placement(0, next.clone()),
            Err(EcCheckError::StaleEpoch { .. })
        ));
        // Gaps are fine — only monotonicity matters.
        ecc.apply_placement(7, next).unwrap();
        assert_eq!(ecc.placement_epoch(), 7);
    }

    #[test]
    fn apply_placement_rejects_misfit_layouts() {
        let (_, _, mut ecc, _) = setup();
        let g = ecc.placement().group_size();
        // Wrong (k, m) split for a (2, 2) engine.
        let wrong_km = Placement::new(vec![0, 1, 2], vec![3], g).unwrap();
        assert!(matches!(ecc.apply_placement(1, wrong_km), Err(EcCheckError::Config { .. })));
        // Node id outside the 4-node cluster.
        let out_of_range = Placement::new(vec![0, 5], vec![1, 2], g).unwrap();
        assert!(matches!(ecc.apply_placement(1, out_of_range), Err(EcCheckError::Config { .. })));
        assert_eq!(ecc.placement_epoch(), 0, "failed applies must not advance the epoch");
    }

    #[test]
    fn stale_engine_refuses_to_save_load_or_patch() {
        let (spec, mut cluster, mut ecc, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        // A membership controller commits epoch 3 behind this engine's
        // back: every chunk-moving operation must refuse.
        let marker = crate::keys::encode_epoch(3);
        for node in 0..spec.nodes() {
            cluster.put_local(node, &crate::keys::placement_epoch_key(), marker.clone()).unwrap();
        }
        assert!(matches!(
            ecc.save(&mut cluster, &dicts),
            Err(EcCheckError::StaleEpoch { engine: 0, committed: 3 })
        ));
        assert!(matches!(ecc.load(&mut cluster), Err(EcCheckError::StaleEpoch { .. })));
        assert!(matches!(
            ecc.update_worker(&mut cluster, 0, &dicts[0]),
            Err(EcCheckError::StaleEpoch { .. })
        ));
        // Refreshing the placement to the committed epoch unblocks it.
        let placement = ecc.placement().clone();
        ecc.apply_placement(3, placement).unwrap();
        ecc.save(&mut cluster, &dicts).unwrap();
        let (restored, _) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, dicts);
    }

    #[test]
    fn adopt_version_fast_forwards_the_committed_epoch() {
        let (spec, mut cluster, mut ecc, dicts) = setup();
        let placement = ecc.placement().clone();
        ecc.apply_placement(2, placement).unwrap();
        ecc.save(&mut cluster, &dicts).unwrap();
        let marker = crate::keys::encode_epoch(2);
        for node in 0..spec.nodes() {
            cluster.put_local(node, &crate::keys::placement_epoch_key(), marker.clone()).unwrap();
        }
        let mut fresh = EcCheck::initialize(&spec, tiny_config()).unwrap();
        fresh.adopt_version(&cluster, 1).unwrap();
        assert_eq!(fresh.placement_epoch(), 2);
        let (restored, _) = fresh.load(&mut cluster).unwrap();
        assert_eq!(restored, dicts);
    }

    #[test]
    fn save_stamps_epoch_provenance_per_version() {
        let (spec, mut cluster, mut ecc, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        for node in 0..spec.nodes() {
            let blob = cluster.get_local(node, &crate::keys::epoch_key(1)).unwrap();
            assert_eq!(crate::keys::decode_epoch(&blob), Some(0));
        }
        ecc.save(&mut cluster, &dicts).unwrap();
        for node in 0..spec.nodes() {
            assert!(
                cluster.get_local(node, &crate::keys::epoch_key(1)).is_none(),
                "old version swept"
            );
            assert!(cluster.get_local(node, &crate::keys::epoch_key(2)).is_some());
        }
    }

    #[test]
    fn save_then_load_without_failures() {
        let (_, mut cluster, mut ecc, dicts) = setup();
        let report = ecc.save(&mut cluster, &dicts).unwrap();
        assert_eq!(report.version, 1);
        assert!(report.packets_per_worker > 0);
        let (restored, load) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, dicts);
        assert_eq!(load.workflow, RecoveryWorkflow::Resend);
        assert!(load.failed_nodes.is_empty());
        assert_eq!(load.rebuilt_chunks, 0);
    }

    #[test]
    fn every_two_node_failure_recovers_bit_exactly() {
        // The headline fault-tolerance property: any m = 2 concurrent
        // node failures are survivable, including both data nodes.
        for a in 0..4usize {
            for b in (a + 1)..4usize {
                let (_, mut cluster, mut ecc, dicts) = setup();
                ecc.save(&mut cluster, &dicts).unwrap();
                cluster.fail_node(a);
                cluster.fail_node(b);
                cluster.replace_node(a);
                cluster.replace_node(b);
                let (restored, load) = ecc.load(&mut cluster).unwrap();
                assert_eq!(restored, dicts, "failures {a},{b}");
                assert_eq!(load.failed_nodes, vec![a, b]);
                assert_eq!(load.rebuilt_chunks, 2);
            }
        }
    }

    #[test]
    fn workflow_classification_matches_paper() {
        // Placement on 4 nodes: data = {0, 2}, parity = {1, 3}.
        // Fig. 13a (nodes 1 and 3 fail): all data nodes survive -> Resend.
        let (_, mut cluster, mut ecc, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        cluster.fail_node(1);
        cluster.fail_node(3);
        cluster.replace_node(1);
        cluster.replace_node(3);
        let (_, load) = ecc.load(&mut cluster).unwrap();
        assert_eq!(load.workflow, RecoveryWorkflow::Resend);

        // Fig. 13b (nodes 2 and 3 fail): data node 2 lost -> Decode.
        let (_, mut cluster, mut ecc, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        cluster.fail_node(2);
        cluster.fail_node(3);
        cluster.replace_node(2);
        cluster.replace_node(3);
        let (restored, load) = ecc.load(&mut cluster).unwrap();
        assert_eq!(load.workflow, RecoveryWorkflow::Decode);
        assert_eq!(restored, dicts);
    }

    #[test]
    fn load_restores_fault_tolerance() {
        // After one recovery, a *different* pair of failures must still
        // be survivable (recovery task 2 of §III-B).
        let (_, mut cluster, mut ecc, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        cluster.fail_node(0);
        cluster.fail_node(1);
        cluster.replace_node(0);
        cluster.replace_node(1);
        ecc.load(&mut cluster).unwrap();
        cluster.fail_node(2);
        cluster.fail_node(3);
        cluster.replace_node(2);
        cluster.replace_node(3);
        let (restored, _) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, dicts);
    }

    #[test]
    fn three_failures_without_remote_are_unrecoverable() {
        let (_, mut cluster, _, dicts) = setup();
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut ecc = EcCheck::initialize(&spec, tiny_config().with_remote_flush_every(0)).unwrap();
        ecc.save(&mut cluster, &dicts).unwrap();
        for n in [0, 1, 2] {
            cluster.fail_node(n);
            cluster.replace_node(n);
        }
        // Only one chunk survives in memory and nothing was flushed to
        // remote storage, so recovery must fail (needed = k = 2).
        assert!(matches!(
            ecc.load(&mut cluster),
            Err(EcCheckError::Unrecoverable { needed: 2, .. })
        ));
    }

    #[test]
    fn catastrophic_failure_falls_back_to_remote() {
        let (_, mut cluster, mut ecc, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        ecc.flush_remote(&mut cluster).unwrap();
        for n in 0..4 {
            cluster.fail_node(n);
            cluster.replace_node(n);
        }
        let (restored, load) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, dicts);
        assert_eq!(load.workflow, RecoveryWorkflow::Remote);
    }

    #[test]
    fn periodic_remote_flush_fires() {
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(&spec, tiny_config().with_remote_flush_every(2)).unwrap();
        let (_, _, _, dicts) = setup();
        let r1 = ecc.save(&mut cluster, &dicts).unwrap();
        assert!(!r1.remote_flushed);
        let r2 = ecc.save(&mut cluster, &dicts).unwrap();
        assert!(r2.remote_flushed);
        assert!(cluster.remote_used() > 0);
    }

    #[test]
    fn versions_rotate_and_old_data_is_dropped() {
        let (_, mut cluster, mut ecc, mut dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        let used_v1 = cluster.mem_used(0);
        // Change the model state and save again.
        dicts[0].insert("iteration", Value::Int(99));
        let r2 = ecc.save(&mut cluster, &dicts).unwrap();
        assert_eq!(r2.version, 2);
        // Memory stays bounded: old version was deleted.
        assert!(cluster.mem_used(0) <= used_v1 + 64);
        let (restored, load) = ecc.load(&mut cluster).unwrap();
        assert_eq!(load.version, 2);
        assert_eq!(restored[0].get("iteration"), Some(&Value::Int(99)));
    }

    #[test]
    fn traffic_report_matches_msw_invariant() {
        let (_, mut cluster, mut ecc, dicts) = setup();
        let report = ecc.save(&mut cluster, &dicts).unwrap();
        let s = (report.packets_per_worker * report.packet_size) as u64;
        let w = 8u64;
        let m = 2u64;
        assert_eq!(report.traffic.total(), m * s * w);
    }

    #[test]
    fn wrong_shard_count_is_rejected() {
        let (_, mut cluster, mut ecc, dicts) = setup();
        assert!(matches!(ecc.save(&mut cluster, &dicts[..3]), Err(EcCheckError::Config { .. })));
    }

    #[test]
    fn load_before_save_errors() {
        let (_, mut cluster, _, _) = setup();
        let spec = ClusterSpec::tiny_test(4, 2);
        let ecc = EcCheck::initialize(&spec, tiny_config()).unwrap();
        assert!(matches!(ecc.load(&mut cluster), Err(EcCheckError::NoCheckpoint)));
    }

    #[test]
    fn initialize_rejects_mismatched_cluster() {
        let spec = ClusterSpec::tiny_test(5, 2);
        assert!(matches!(
            EcCheck::initialize(&spec, tiny_config()),
            Err(EcCheckError::Config { .. })
        ));
    }

    /// Flips one byte of a node's stored chunk in place, leaving the
    /// stored checksum frame untouched (simulating at-rest bit rot).
    fn corrupt_chunk(cluster: &mut Cluster, node: usize, version: u64) {
        let key = crate::keys::chunk_key(version);
        let mut blob = cluster.get_local(node, &key).unwrap().to_vec();
        let mid = blob.len() / 2;
        blob[mid] ^= 0x40;
        cluster.put_local(node, &key, blob).unwrap();
    }

    /// The silent-corruption regression: a bit-flipped chunk must be
    /// detected via its checksum and treated as an erasure, decoding
    /// the true bytes from the survivors — the pre-fix engine fed the
    /// garbage straight into `reconstruct_all` and returned corrupted
    /// weights with a successful report.
    #[test]
    fn corrupted_chunk_is_detected_and_decoded_around() {
        let (_, mut cluster, mut ecc, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        // Node 0 is a data node on the 4-node testbed placement.
        corrupt_chunk(&mut cluster, 0, 1);
        let (restored, report) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, dicts, "corruption must never surface as state");
        assert_eq!(report.workflow, RecoveryWorkflow::Decode);
        assert_eq!(report.corrupt_nodes, vec![0]);
        assert_eq!(report.failed_nodes, vec![0]);
        assert_eq!(report.rebuilt_chunks, 1);
        assert_eq!(ecc.recorder().snapshot().counter("ecc.load.corrupt_chunks"), 1);
        // The corrupt chunk was repaired in place: a fresh load sees a
        // fully intact cluster.
        let (_, second) = ecc.load(&mut cluster).unwrap();
        assert!(second.failed_nodes.is_empty());
    }

    #[test]
    fn corruption_combines_with_crashes_up_to_m() {
        // One crashed node + one corrupted chunk = exactly m = 2 faults.
        let (_, mut cluster, mut ecc, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        cluster.fail_node(1);
        cluster.replace_node(1);
        corrupt_chunk(&mut cluster, 2, 1);
        let (restored, report) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, dicts);
        assert_eq!(report.failed_nodes, vec![1, 2]);
        assert_eq!(report.corrupt_nodes, vec![2]);
    }

    #[test]
    fn corruption_beyond_m_is_unrecoverable_not_garbage() {
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(&spec, tiny_config().with_remote_flush_every(0)).unwrap();
        let (_, _, _, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        for node in [0, 1, 3] {
            corrupt_chunk(&mut cluster, node, 1);
        }
        // 3 corrupt chunks > m = 2: only one intact chunk remains, so
        // the engine must refuse with a structured report, never decode.
        match ecc.load(&mut cluster) {
            Err(EcCheckError::Unrecoverable { survivors, needed, lost_workers }) => {
                assert_eq!(survivors, 1);
                assert_eq!(needed, 2);
                // Data chunk 0 (node 0) is gone; data chunk 1 (node 2)
                // survived. Workers 0..4 of group 0 are the lost ones.
                assert_eq!(lost_workers, vec![0, 1, 2, 3]);
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }

    /// The brittle-header regression: the pre-fix engine picked the
    /// single survivor holding header 0 and failed `Unrecoverable` if
    /// that node was missing any *later* header, even with every header
    /// intact on another survivor.
    #[test]
    fn header_restore_falls_back_across_survivors() {
        let (_, mut cluster, mut ecc, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        // Node 0 still holds header 0 (so it is chosen as the primary
        // source) but lost headers 3..8; node 1 holds everything.
        for w in 3..8 {
            cluster.delete_local(0, &crate::keys::header_key(1, w));
        }
        let (restored, _) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, dicts);
        assert!(ecc.recorder().snapshot().counter("ecc.load.header_fallbacks") > 0);
    }

    #[test]
    fn corrupt_header_copy_falls_back_to_intact_survivor() {
        let (_, mut cluster, mut ecc, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        let key = crate::keys::header_key(1, 5);
        let mut blob = cluster.get_local(0, &key).unwrap().to_vec();
        blob[0] ^= 0xFF;
        cluster.put_local(0, &key, blob).unwrap();
        let (restored, _) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, dicts);
        let snap = ecc.recorder().snapshot();
        assert_eq!(snap.counter("ecc.load.corrupt_headers"), 1);
        assert!(snap.counter("ecc.load.header_fallbacks") > 0);
    }

    #[test]
    fn header_lost_everywhere_names_the_worker() {
        let (_, mut cluster, _, dicts) = setup();
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut ecc = EcCheck::initialize(&spec, tiny_config().with_remote_flush_every(0)).unwrap();
        ecc.save(&mut cluster, &dicts).unwrap();
        for node in 0..4 {
            cluster.delete_local(node, &crate::keys::header_key(1, 6));
        }
        match ecc.load(&mut cluster) {
            Err(EcCheckError::Unrecoverable { lost_workers, .. }) => {
                assert_eq!(lost_workers, vec![6]);
            }
            other => panic!("expected Unrecoverable naming worker 6, got {other:?}"),
        }
    }

    #[test]
    fn heterogeneous_shard_sizes_are_padded() {
        // Stage-0 workers carry embeddings and are bigger; padding must
        // keep everything recoverable.
        let (_, mut cluster, mut ecc, dicts) = setup();
        let sizes: Vec<usize> = dicts.iter().map(StateDict::tensor_bytes).collect();
        assert!(sizes.iter().any(|&s| s != sizes[7]), "shards should differ in size");
        ecc.save(&mut cluster, &dicts).unwrap();
        cluster.fail_node(0);
        cluster.fail_node(2);
        cluster.replace_node(0);
        cluster.replace_node(2);
        let (restored, _) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, dicts);
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;
    use ecc_checkpoint::Value;
    use ecc_cluster::{Cluster, ClusterSpec};
    use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};

    fn setup() -> (ClusterSpec, Cluster, EcCheck, Vec<StateDict>) {
        let spec = ClusterSpec::tiny_test(4, 2);
        let cluster = Cluster::new(spec);
        let ecc = EcCheck::initialize(
            &spec,
            EcCheckConfig::paper_defaults().with_packet_size(256).with_coding_threads(1),
        )
        .unwrap();
        let model = ModelConfig::gpt2(64, 4, 4).with_vocab(512).with_seq_len(32);
        let par = ParallelismSpec::new(2, 2, 2).unwrap();
        let sd_spec = StateDictSpec::new(model, par);
        let dicts: Vec<StateDict> =
            (0..8).map(|w| build_worker_state_dict(&sd_spec, w).unwrap()).collect();
        (spec, cluster, ecc, dicts)
    }

    fn mutate(sd: &StateDict, worker: usize) -> StateDict {
        let model = ModelConfig::gpt2(64, 4, 4).with_vocab(512).with_seq_len(32);
        let par = ParallelismSpec::new(2, 2, 2).unwrap();
        // Same shapes, different seed -> different values, same layout.
        let spec = StateDictSpec { seed: 0xDEAD_BEEF, ..StateDictSpec::new(model, par) };
        let mut new = build_worker_state_dict(&spec, worker).unwrap();
        for (k, v) in sd.iter() {
            if !matches!(v, Value::Dict(_)) {
                new.insert(k.to_string(), v.clone());
            }
        }
        new
    }

    #[test]
    fn incremental_update_then_recovery_returns_new_state() {
        let (_, mut cluster, mut ecc, mut dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        // Update two workers in different data groups.
        for w in [1usize, 6] {
            let updated = mutate(&dicts[w], w);
            let changed = ecc.update_worker(&mut cluster, w, &updated).unwrap();
            assert!(changed > 0);
            dicts[w] = updated;
        }
        // Any 2-node failure still recovers the *updated* state.
        cluster.fail_node(0);
        cluster.fail_node(2);
        cluster.replace_node(0);
        cluster.replace_node(2);
        let (restored, _) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, dicts);
    }

    #[test]
    fn incremental_update_equals_full_save() {
        let (spec, mut cluster_a, mut ecc_a, mut dicts) = setup();
        ecc_a.save(&mut cluster_a, &dicts).unwrap();
        let updated = mutate(&dicts[3], 3);
        ecc_a.update_worker(&mut cluster_a, 3, &updated).unwrap();
        dicts[3] = updated;
        // A fresh engine doing a full save of the same state must store
        // identical chunk bytes.
        let mut cluster_b = Cluster::new(spec);
        let mut ecc_b = EcCheck::initialize(
            &spec,
            EcCheckConfig::paper_defaults().with_packet_size(256).with_coding_threads(1),
        )
        .unwrap();
        ecc_b.save(&mut cluster_b, &dicts).unwrap();
        for node in 0..4 {
            assert_eq!(
                cluster_a.get_local(node, "ecc/v1/chunk"),
                cluster_b.get_local(node, "ecc/v1/chunk"),
                "node {node} chunk"
            );
        }
    }

    #[test]
    fn identical_state_update_changes_nothing() {
        let (_, mut cluster, mut ecc, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        let changed = ecc.update_worker(&mut cluster, 0, &dicts[0]).unwrap();
        assert_eq!(changed, 0);
    }

    #[test]
    fn update_before_save_errors() {
        let (_, mut cluster, mut ecc, dicts) = setup();
        assert!(matches!(
            ecc.update_worker(&mut cluster, 0, &dicts[0]),
            Err(EcCheckError::NoCheckpoint)
        ));
    }

    #[test]
    fn out_of_range_worker_errors() {
        let (_, mut cluster, mut ecc, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        assert!(matches!(
            ecc.update_worker(&mut cluster, 8, &dicts[0]),
            Err(EcCheckError::Config { .. })
        ));
    }

    #[test]
    fn update_with_dead_node_reports_node_down() {
        // In-place patching needs every node; a dead node must surface
        // as a structured NodeDown, not a misleading NoCheckpoint.
        let (_, mut cluster, mut ecc, dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        cluster.fail_node(3);
        assert!(matches!(
            ecc.update_worker(&mut cluster, 0, &dicts[0]),
            Err(EcCheckError::Cluster(ecc_cluster::ClusterError::NodeDown { node: 3 }))
        ));
        // After replacement + load, updates work again.
        cluster.replace_node(3);
        ecc.load(&mut cluster).unwrap();
        ecc.update_worker(&mut cluster, 0, &dicts[0]).unwrap();
    }

    #[test]
    fn update_refuses_to_patch_corrupt_chunk() {
        let (_, mut cluster, mut ecc, mut dicts) = setup();
        ecc.save(&mut cluster, &dicts).unwrap();
        // Corrupt the parity chunk on node 1 (placement: parity {1, 3}).
        let key = crate::keys::chunk_key(1);
        let mut blob = cluster.get_local(1, &key).unwrap().to_vec();
        blob[7] ^= 0x01;
        cluster.put_local(1, &key, blob).unwrap();
        let updated = mutate(&dicts[2], 2);
        // Patching would fold the corrupt bytes under a fresh checksum.
        assert!(matches!(
            ecc.update_worker(&mut cluster, 2, &updated),
            Err(EcCheckError::CorruptChunk { node: 1 })
        ));
        // load() repairs the chunk; the update then applies cleanly and
        // the new state survives failures.
        ecc.load(&mut cluster).unwrap();
        ecc.update_worker(&mut cluster, 2, &updated).unwrap();
        dicts[2] = updated;
        cluster.fail_node(0);
        cluster.fail_node(2);
        cluster.replace_node(0);
        cluster.replace_node(2);
        let (restored, _) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, dicts);
    }
}

#[cfg(test)]
mod shape_tests {
    use super::*;
    use ecc_checkpoint::Value;
    use ecc_cluster::{Cluster, ClusterSpec};

    fn dicts(world: usize) -> Vec<StateDict> {
        (0..world)
            .map(|w| {
                let mut sd = StateDict::new();
                sd.insert("rank", Value::Int(w as i64));
                sd.insert("payload", Value::Bytes(vec![(w * 13) as u8; 300 + w * 17]));
                sd
            })
            .collect()
    }

    /// Exhaustive recovery over asymmetric (k, m) shapes: every erasure
    /// pattern of up to m nodes must restore bit-exactly.
    #[test]
    fn asymmetric_codes_recover_all_patterns() {
        for (nodes, g, k, m) in [
            (4usize, 3usize, 3usize, 1usize),
            (4, 2, 1, 3),
            (6, 1, 3, 3),
            (6, 1, 2, 4),
            (5, 2, 2, 3),
        ] {
            let spec = ClusterSpec::tiny_test(nodes, g);
            if !spec.world_size().is_multiple_of(k) {
                panic!("test shape invalid: {nodes}x{g} k={k}");
            }
            let mut cluster = Cluster::new(spec);
            let mut ecc = EcCheck::initialize(
                &spec,
                EcCheckConfig::paper_defaults().with_km(k, m).with_packet_size(256),
            )
            .unwrap();
            let d = dicts(spec.world_size());
            ecc.save(&mut cluster, &d).unwrap();
            // Every single- and double-failure pattern (and for m >= 3,
            // one maximal pattern).
            let mut patterns: Vec<Vec<usize>> = (0..nodes).map(|a| vec![a]).collect();
            if m >= 2 {
                for a in 0..nodes {
                    for b in (a + 1)..nodes {
                        patterns.push(vec![a, b]);
                    }
                }
            }
            if m >= 3 {
                patterns.push((0..m).collect());
            }
            for pattern in patterns {
                for &n in &pattern {
                    cluster.fail_node(n);
                    cluster.replace_node(n);
                }
                let (restored, report) = ecc.load(&mut cluster).unwrap();
                assert_eq!(restored, d, "{nodes}x{g} k={k} m={m} pattern {pattern:?}");
                assert_eq!(report.failed_nodes, pattern);
            }
        }
    }

    /// m = 1 tolerates exactly one failure: two concurrent failures are
    /// correctly refused without a remote copy.
    #[test]
    fn single_parity_refuses_double_failure() {
        // g = 3 so the 12 workers divide into k = 3 data groups.
        let spec = ClusterSpec::tiny_test(4, 3);
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(
            &spec,
            EcCheckConfig::paper_defaults()
                .with_km(3, 1)
                .with_packet_size(256)
                .with_remote_flush_every(0),
        )
        .unwrap();
        ecc.save(&mut cluster, &dicts(12)).unwrap();
        cluster.fail_node(0);
        cluster.fail_node(1);
        cluster.replace_node(0);
        cluster.replace_node(1);
        assert!(matches!(ecc.load(&mut cluster), Err(EcCheckError::Unrecoverable { .. })));
    }

    /// GF(2^4) and GF(2^16) drive the engine end-to-end too.
    #[test]
    fn alternate_field_widths_work_end_to_end() {
        for w in [4u8, 16] {
            let spec = ClusterSpec::tiny_test(4, 1);
            let mut cluster = Cluster::new(spec);
            let mut ecc = EcCheck::initialize(
                &spec,
                EcCheckConfig::paper_defaults().with_width(w).with_packet_size(256),
            )
            .unwrap();
            let d = dicts(4);
            ecc.save(&mut cluster, &d).unwrap();
            cluster.fail_node(0);
            cluster.fail_node(2);
            cluster.replace_node(0);
            cluster.replace_node(2);
            let (restored, _) = ecc.load(&mut cluster).unwrap();
            assert_eq!(restored, d, "w={w}");
        }
    }
}

#[cfg(test)]
mod store_tests {
    use std::collections::BTreeMap;

    use super::*;
    use crate::store::Drainer;
    use ecc_checkpoint::{DType, Tensor, Value};
    use ecc_cluster::{Cluster, ClusterSpec, SharedPlane};

    fn cfg() -> EcCheckConfig {
        EcCheckConfig::paper_defaults()
            .with_packet_size(256)
            .with_coding_threads(2)
            .with_remote_flush_every(0)
    }

    /// Per-round worker states with tensor shapes that do NOT depend on
    /// the round (only values do) — delta saves require stable layouts.
    /// The payload is a real tensor: `Value::Bytes` would ride in the
    /// replicated header, never touching the erasure-coded chunks.
    fn dicts(world: usize, round: i64) -> Vec<StateDict> {
        (0..world)
            .map(|w| {
                let mut sd = StateDict::new();
                sd.insert("rank", Value::Int(w as i64));
                sd.insert("round", Value::Int(round));
                let len = 200 + w * 11;
                let fill = (w as u8).wrapping_mul(31).wrapping_add(round as u8);
                let t = Tensor::from_bytes(DType::U8, &[len], vec![fill; len]).unwrap();
                sd.insert("weights", Value::Tensor(t));
                sd
            })
            .collect()
    }

    /// Every blob the engine stores for `version`, across all nodes —
    /// the byte-level fingerprint the equivalence tests compare.
    fn version_blobs(
        cluster: &Cluster,
        version: u64,
        world: usize,
    ) -> BTreeMap<(usize, String), Option<Vec<u8>>> {
        let mut keys = vec![
            chunk_key(version),
            chunk_crc_key(version),
            manifest_key(version),
            crate::keys::epoch_key(version),
        ];
        for w in 0..world {
            keys.push(header_key(version, w));
            keys.push(header_crc_key(version, w));
        }
        let mut out = BTreeMap::new();
        for node in 0..cluster.nodes() {
            for key in &keys {
                out.insert((node, key.clone()), cluster.get_local(node, key));
            }
        }
        out
    }

    #[test]
    fn retention_window_and_ladder_govern_gc() {
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut cluster = Cluster::new(spec);
        let mut ecc =
            EcCheck::initialize(&spec, cfg().with_retain_last(2).with_retain_every(3)).unwrap();
        let mut saved: BTreeMap<u64, Vec<StateDict>> = BTreeMap::new();
        for round in 1..=7i64 {
            let d = dicts(8, round);
            let report = ecc.save(&mut cluster, &d).unwrap();
            saved.insert(report.version, d);
        }
        // Keep-last window {6, 7} plus the every-3rd ladder {3, 6}.
        assert_eq!(ecc.retained_versions(), vec![3, 6, 7]);
        for &v in &[3u64, 6, 7] {
            let (restored, report) = ecc.load_version(&mut cluster, v).unwrap();
            assert_eq!(restored, saved[&v], "version {v}");
            assert_eq!(report.version, v);
        }
        // Collected versions are refused by name and leave no blobs.
        assert!(matches!(
            ecc.load_version(&mut cluster, 5),
            Err(EcCheckError::VersionGone { version: 5 })
        ));
        for node in 0..4 {
            assert!(cluster.get_local(node, &chunk_key(5)).is_none(), "v5 chunk not swept");
            assert!(cluster.get_local(node, &manifest_key(5)).is_none(), "v5 manifest not swept");
        }
        // The default entry point still restores the newest version.
        let (restored, report) = ecc.load(&mut cluster).unwrap();
        assert_eq!(report.version, 7);
        assert_eq!(restored, saved[&7]);
    }

    #[test]
    fn default_retention_keeps_only_the_newest_version() {
        // Pins the pre-tiered-store behavior: retain_last defaults to 1,
        // so each save sweeps the previous version.
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(&spec, cfg()).unwrap();
        for round in 1..=3i64 {
            ecc.save(&mut cluster, &dicts(8, round)).unwrap();
        }
        assert_eq!(ecc.retained_versions(), vec![3]);
        assert!(matches!(
            ecc.load_version(&mut cluster, 2),
            Err(EcCheckError::VersionGone { version: 2 })
        ));
    }

    #[test]
    fn load_version_handles_divergent_packet_layouts() {
        // Each retained version has a different packets-per-worker
        // count; restoring an old one must read its manifest instead of
        // trusting the engine's current layout.
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(&spec, cfg().with_retain_last(3)).unwrap();
        let mut saved: BTreeMap<u64, Vec<StateDict>> = BTreeMap::new();
        for round in 1..=3i64 {
            let d: Vec<StateDict> = (0..8)
                .map(|w| {
                    let mut sd = StateDict::new();
                    sd.insert("rank", Value::Int(w as i64));
                    let len = 100 + 700 * (round as usize) + w * 13;
                    let t = Tensor::from_bytes(DType::U8, &[len], vec![round as u8; len]).unwrap();
                    sd.insert("weights", Value::Tensor(t));
                    sd
                })
                .collect();
            let report = ecc.save(&mut cluster, &d).unwrap();
            saved.insert(report.version, d);
        }
        for &v in &[1u64, 2, 3] {
            let (restored, report) = ecc.load_version(&mut cluster, v).unwrap();
            assert_eq!(restored, saved[&v], "version {v}");
            assert_eq!(report.version, v);
        }
    }

    #[test]
    fn save_delta_matches_update_worker_blob_for_blob() {
        // `update_worker` is now sugar for a single-worker `save_delta`;
        // this pins the two entry points to byte-identical plane state.
        let spec = ClusterSpec::tiny_test(4, 2);
        let base = dicts(8, 0);
        let updated = dicts(8, 1);

        let mut cluster_a = Cluster::new(spec);
        let mut ecc_a = EcCheck::initialize(&spec, cfg()).unwrap();
        ecc_a.save(&mut cluster_a, &base).unwrap();
        let changed_a = ecc_a.update_worker(&mut cluster_a, 3, &updated[3]).unwrap();

        let mut cluster_b = Cluster::new(spec);
        let mut ecc_b = EcCheck::initialize(&spec, cfg()).unwrap();
        ecc_b.save(&mut cluster_b, &base).unwrap();
        let dirty = [WorkerDirtySet { worker: 3, state: &updated[3] }];
        let report = ecc_b.save_delta(&mut cluster_b, &dirty).unwrap();

        assert!(changed_a > 0);
        assert_eq!(report.changed_bytes, changed_a);
        assert_eq!(report.workers, vec![3]);
        assert_eq!(report.chunks_patched, 1);
        assert_eq!(version_blobs(&cluster_a, 1, 8), version_blobs(&cluster_b, 1, 8));
    }

    #[test]
    fn multi_worker_delta_spans_chunks_and_survives_failures() {
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(&spec, cfg()).unwrap();
        let mut d = dicts(8, 0);
        ecc.save(&mut cluster, &d).unwrap();

        // Workers 1 and 6 live in different data groups (group size 4).
        let updated = dicts(8, 9);
        let dirty = [
            WorkerDirtySet { worker: 1, state: &updated[1] },
            WorkerDirtySet { worker: 6, state: &updated[6] },
        ];
        let report = ecc.save_delta(&mut cluster, &dirty).unwrap();
        d[1] = updated[1].clone();
        d[6] = updated[6].clone();
        assert_eq!(report.workers, vec![1, 6]);
        assert_eq!(report.chunks_patched, 2);
        assert!(report.changed_bytes > 0);
        // Each dirty region moves once to its data node and once per
        // parity node.
        assert_eq!(report.traffic_bytes, report.region_bytes * (1 + 2));

        cluster.fail_node(0);
        cluster.fail_node(2);
        cluster.replace_node(0);
        cluster.replace_node(2);
        let (restored, _) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, d);
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(&spec, cfg()).unwrap();
        ecc.save(&mut cluster, &dicts(8, 0)).unwrap();
        let before = version_blobs(&cluster, 1, 8);
        let report = ecc.save_delta(&mut cluster, &[]).unwrap();
        assert_eq!(report.changed_bytes, 0);
        assert_eq!(report.chunks_patched, 0);
        assert_eq!(report.traffic_bytes, 0);
        assert_eq!(version_blobs(&cluster, 1, 8), before);
    }

    #[test]
    fn duplicate_dirty_worker_is_refused() {
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(&spec, cfg()).unwrap();
        let d = dicts(8, 0);
        ecc.save(&mut cluster, &d).unwrap();
        let dirty = [
            WorkerDirtySet { worker: 2, state: &d[2] },
            WorkerDirtySet { worker: 2, state: &d[2] },
        ];
        assert!(matches!(ecc.save_delta(&mut cluster, &dirty), Err(EcCheckError::Config { .. })));
    }

    #[test]
    fn delta_refusal_on_corrupt_chunk_is_atomic() {
        // All reads precede all stores, so a torn-update refusal must
        // leave every stored blob untouched.
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(&spec, cfg()).unwrap();
        let mut d = dicts(8, 0);
        ecc.save(&mut cluster, &d).unwrap();

        // Corrupt the parity chunk on node 1 (placement parity {1, 3}).
        let key = chunk_key(1);
        let mut blob = cluster.get_local(1, &key).unwrap();
        blob[11] ^= 0x40;
        cluster.put_local(1, &key, blob).unwrap();

        let snapshot = version_blobs(&cluster, 1, 8);
        let updated = dicts(8, 5);
        let dirty = [WorkerDirtySet { worker: 4, state: &updated[4] }];
        assert!(matches!(
            ecc.save_delta(&mut cluster, &dirty),
            Err(EcCheckError::CorruptChunk { node: 1 })
        ));
        assert_eq!(version_blobs(&cluster, 1, 8), snapshot, "refusal must not write");

        // load() repairs the corruption; the delta then applies and the
        // new state survives failures.
        ecc.load(&mut cluster).unwrap();
        ecc.save_delta(&mut cluster, &dirty).unwrap();
        d[4] = updated[4].clone();
        cluster.fail_node(1);
        cluster.fail_node(3);
        cluster.replace_node(1);
        cluster.replace_node(3);
        let (restored, _) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, d);
    }

    #[test]
    fn drainer_copies_sealed_versions_to_tier_one() {
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut shared = SharedPlane::new(Cluster::new(spec));
        let mut ecc = EcCheck::initialize(&spec, cfg()).unwrap();
        let drainer = Drainer::spawn(shared.clone(), 4, ecc.recorder().clone());
        ecc.set_drainer(drainer.handle());

        let d1 = dicts(8, 1);
        ecc.save(&mut shared, &d1).unwrap();
        drainer.handle().flush();
        assert!(shared.get_remote(&remote_manifest_key(1)).is_some(), "v1 drained");

        let d2 = dicts(8, 2);
        ecc.save(&mut shared, &d2).unwrap();
        drainer.handle().flush();
        assert!(shared.get_remote(&remote_manifest_key(2)).is_some(), "v2 drained");
        // Default retention swept v1 from tier 0 after v2 sealed...
        assert_eq!(ecc.retained_versions(), vec![2]);
        // ...but tier 1 still holds both drained copies.
        assert!(shared.get_remote(&remote_chunk_key(1, 0)).is_some());

        // Catastrophic tier-0 loss (3 of 4 nodes > m = 2): recovery
        // must restore the newest version from the drained copy.
        for node in [0usize, 1, 2] {
            shared.lock().fail_node(node);
            shared.lock().replace_node(node);
        }
        let (restored, report) = ecc.load(&mut shared).unwrap();
        assert_eq!(restored, d2);
        assert_eq!(report.workflow, RecoveryWorkflow::Remote);
        drainer.shutdown();
    }
}
