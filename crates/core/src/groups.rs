//! Group-based checkpointing and optimal group sizing (paper §VI).
//!
//! In large clusters, growing `m` to keep fault tolerance raises
//! communication cost (per-device traffic is `m·s`). The paper's
//! conclusion proposes dividing nodes into groups and running ECCheck
//! independently within each, with the group size balancing
//! communication efficiency against fault tolerance — and names
//! *computing the optimal group size* as future work. This module
//! implements both pieces:
//!
//! * [`GroupedEcCheck`] — the group-based deployment over the real data
//!   plane, built from per-group [`crate::EcCheck`] engines running over
//!   windowed [`ecc_cluster::ClusterView`]s.
//! * [`optimal_group_size`] — the future-work computation: minimise the
//!   expected per-checkpoint cost, combining each candidate's
//!   communication time with its probability-weighted recovery penalty.

use ecc_checkpoint::StateDict;
use ecc_cluster::{Cluster, ClusterSpec, NodeId};
use ecc_sim::SimDuration;

use crate::{EcCheck, EcCheckConfig, EcCheckError, LoadReport, SaveReport};

/// ECCheck applied independently within fixed-size node groups.
///
/// Each group of `group_nodes` machines runs its own `(k, m)` code with
/// `k = m = group_nodes / 2` (the paper's equal-redundancy comparison
/// point); failures in different groups recover independently, so the
/// cluster survives up to `m` failures *per group*.
///
/// # Examples
///
/// ```
/// use ecc_checkpoint::{StateDict, Value};
/// use ecc_cluster::{Cluster, ClusterSpec};
/// use eccheck::{EcCheckConfig, GroupedEcCheck};
///
/// let spec = ClusterSpec::tiny_test(8, 1);
/// let mut cluster = Cluster::new(spec);
/// let config = EcCheckConfig::paper_defaults().with_packet_size(1024);
/// let mut grouped = GroupedEcCheck::initialize(&spec, 4, config)?;
/// let dicts: Vec<StateDict> = (0..8)
///     .map(|w| {
///         let mut sd = StateDict::new();
///         sd.insert("rank", Value::Int(w));
///         sd
///     })
///     .collect();
/// grouped.save(&mut cluster, &dicts)?;
/// // One failure in each group: both recover independently.
/// cluster.fail_node(0);
/// cluster.fail_node(7);
/// cluster.replace_node(0);
/// cluster.replace_node(7);
/// let (restored, _) = grouped.load(&mut cluster)?;
/// assert_eq!(restored, dicts);
/// # Ok::<(), eccheck::EcCheckError>(())
/// ```
#[derive(Debug)]
pub struct GroupedEcCheck {
    spec: ClusterSpec,
    group_nodes: usize,
    engines: Vec<EcCheck>,
}

impl GroupedEcCheck {
    /// Partitions the cluster into groups of `group_nodes` machines and
    /// initializes one ECCheck engine per group with `k = m =
    /// group_nodes / 2` (other fields of `config` are preserved).
    ///
    /// # Errors
    ///
    /// Returns [`EcCheckError::Config`] when `group_nodes` is odd, does
    /// not divide the cluster, or the per-group configuration is invalid.
    pub fn initialize(
        spec: &ClusterSpec,
        group_nodes: usize,
        config: EcCheckConfig,
    ) -> Result<Self, EcCheckError> {
        if group_nodes == 0 || !spec.nodes().is_multiple_of(group_nodes) {
            return Err(EcCheckError::Config {
                detail: format!("group size {group_nodes} does not divide {} nodes", spec.nodes()),
            });
        }
        if !group_nodes.is_multiple_of(2) {
            return Err(EcCheckError::Config {
                detail: format!("group size {group_nodes} must be even for k = m"),
            });
        }
        let half = group_nodes / 2;
        let group_spec = ClusterSpec::new(
            group_nodes,
            spec.gpus_per_node(),
            spec.nic(),
            spec.nvlink(),
            spec.dtoh(),
            spec.remote(),
            spec.host_mem_bytes(),
        );
        let group_config = config.with_km(half, half);
        let engines = (0..spec.nodes() / group_nodes)
            .map(|_| EcCheck::initialize(&group_spec, group_config))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { spec: *spec, group_nodes, engines })
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.engines.len()
    }

    /// Machines per group.
    pub fn group_nodes(&self) -> usize {
        self.group_nodes
    }

    /// The group containing a node.
    pub fn group_of_node(&self, node: NodeId) -> usize {
        node / self.group_nodes
    }

    /// Per-group engines (read-only introspection).
    pub fn engines(&self) -> &[EcCheck] {
        &self.engines
    }

    /// Checkpoints all workers, each group independently.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EcCheck::save`] per group.
    pub fn save(
        &mut self,
        cluster: &mut Cluster,
        state_dicts: &[StateDict],
    ) -> Result<Vec<SaveReport>, EcCheckError> {
        let world = self.spec.world_size();
        if state_dicts.len() != world {
            return Err(EcCheckError::Config {
                detail: format!("expected {world} state_dicts, got {}", state_dicts.len()),
            });
        }
        let workers_per_group = self.group_nodes * self.spec.gpus_per_node();
        let mut reports = Vec::with_capacity(self.engines.len());
        for (t, engine) in self.engines.iter_mut().enumerate() {
            let mut view = cluster.view(t * self.group_nodes, self.group_nodes, &format!("grp{t}"));
            let dicts = &state_dicts[t * workers_per_group..(t + 1) * workers_per_group];
            reports.push(engine.save(&mut view, dicts)?);
        }
        Ok(reports)
    }

    /// Restores all workers, each group independently. Any single group
    /// that cannot recover fails the whole load (the cluster must resume
    /// from a consistent global checkpoint).
    ///
    /// # Errors
    ///
    /// Propagates the failing group's [`EcCheckError`].
    pub fn load(
        &self,
        cluster: &mut Cluster,
    ) -> Result<(Vec<StateDict>, Vec<LoadReport>), EcCheckError> {
        let mut dicts = Vec::with_capacity(self.spec.world_size());
        let mut reports = Vec::with_capacity(self.engines.len());
        for (t, engine) in self.engines.iter().enumerate() {
            let mut view = cluster.view(t * self.group_nodes, self.group_nodes, &format!("grp{t}"));
            let (group_dicts, report) = engine.load(&mut view)?;
            dicts.extend(group_dicts);
            reports.push(report);
        }
        Ok((dicts, reports))
    }

    /// Probability that the whole cluster's checkpoint survives when
    /// every node independently fails with probability `p`: each group
    /// tolerates up to `group_nodes/2` failures, and all groups must
    /// survive (paper Fig. 3's compounding).
    pub fn recovery_rate(&self, p: f64) -> f64 {
        let per_group = ecc_reliability::ec_recovery(self.group_nodes, self.group_nodes / 2, p);
        ecc_reliability::cluster_recovery(per_group, self.group_count())
    }
}

/// Expected cost of one checkpoint cycle for a candidate group size —
/// the objective [`optimal_group_size`] minimises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSizeCost {
    /// Candidate group size (nodes per group).
    pub group_nodes: usize,
    /// Per-device checkpoint communication time (`m·s` over the shared
    /// NIC; grows with the group size).
    pub comm_time: SimDuration,
    /// Cluster-wide probability that a failure burst is unrecoverable
    /// from memory (shrinks with the group size).
    pub loss_probability: f64,
    /// Expected cost in seconds: communication + loss-probability-
    /// weighted remote-reload penalty.
    pub expected_cost: f64,
}

/// Computes the optimal ECCheck group size — the paper's stated future
/// work (§VI).
///
/// Model: with groups of `G` nodes (`k = m = G/2`), each checkpoint
/// moves `m·s = (G/2)·s` bytes per device over its node's NIC share,
/// while the probability that some group exceeds its tolerance during a
/// failure burst (per-node probability `p`) shrinks as `G` grows. An
/// unrecoverable burst costs a remote reload of the whole model over the
/// slow storage uplink. The optimum minimises
/// `comm_time + P(loss) · remote_reload_time` over the even divisors of
/// the node count.
///
/// Returns the per-candidate costs (sorted by group size) and the index
/// of the optimum.
///
/// # Panics
///
/// Panics when `p` is not a probability or no even divisor of the node
/// count exists (every even node count has divisor 2).
pub fn optimal_group_size(
    spec: &ClusterSpec,
    shard_bytes: u64,
    p: f64,
) -> (Vec<GroupSizeCost>, usize) {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let nodes = spec.nodes();
    let candidates: Vec<usize> =
        (2..=nodes).filter(|g| g % 2 == 0 && nodes.is_multiple_of(*g)).collect();
    assert!(!candidates.is_empty(), "no even group size divides {nodes} nodes");
    let per_worker_nic = spec.nic().shared(spec.gpus_per_node());
    let world = spec.world_size() as u64;
    let remote_reload = spec.remote().transfer_time(shard_bytes * world).as_secs_f64();
    let costs: Vec<GroupSizeCost> = candidates
        .iter()
        .map(|&g| {
            let m = g / 2;
            let comm_time = per_worker_nic.transfer_time(m as u64 * shard_bytes);
            let per_group = ecc_reliability::ec_recovery(g, m, p);
            let survive = ecc_reliability::cluster_recovery(per_group, nodes / g);
            let loss_probability = 1.0 - survive;
            let expected_cost = comm_time.as_secs_f64() + loss_probability * remote_reload;
            GroupSizeCost { group_nodes: g, comm_time, loss_probability, expected_cost }
        })
        .collect();
    let best = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.expected_cost.total_cmp(&b.1.expected_cost))
        .map(|(i, _)| i)
        .expect("non-empty candidates");
    (costs, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_checkpoint::Value;

    fn dicts(world: usize) -> Vec<StateDict> {
        (0..world)
            .map(|w| {
                let mut sd = StateDict::new();
                sd.insert("rank", Value::Int(w as i64));
                sd.insert("payload", Value::Bytes(vec![w as u8; 200]));
                sd
            })
            .collect()
    }

    fn grouped(
        nodes: usize,
        g: usize,
        group_nodes: usize,
    ) -> (ClusterSpec, Cluster, GroupedEcCheck) {
        let spec = ClusterSpec::tiny_test(nodes, g);
        let cluster = Cluster::new(spec);
        let config = EcCheckConfig::paper_defaults().with_packet_size(512);
        let grouped = GroupedEcCheck::initialize(&spec, group_nodes, config).unwrap();
        (spec, cluster, grouped)
    }

    #[test]
    fn groups_save_and_load_independently() {
        let (spec, mut cluster, mut g) = grouped(8, 2, 4);
        let d = dicts(spec.world_size());
        let reports = g.save(&mut cluster, &d).unwrap();
        assert_eq!(reports.len(), 2);
        // m = 2 failures in group 0 AND m = 2 failures in group 1:
        // 4 concurrent failures total, unrecoverable for a single
        // 8-node k=m=4... no wait — recoverable there too, but the point
        // is each group handles its own.
        for n in [0usize, 1, 6, 7] {
            cluster.fail_node(n);
            cluster.replace_node(n);
        }
        let (restored, reports) = g.load(&mut cluster).unwrap();
        assert_eq!(restored, d);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].failed_nodes, vec![0, 1]);
        assert_eq!(reports[1].failed_nodes, vec![2, 3]); // group-local ids
    }

    #[test]
    fn group_exceeding_tolerance_fails_even_if_others_survive() {
        let (spec, mut cluster, mut g) = grouped(8, 1, 4);
        let d = dicts(spec.world_size());
        g.save(&mut cluster, &d).unwrap();
        // Three failures in group 0 (> m = 2).
        for n in [0usize, 1, 2] {
            cluster.fail_node(n);
            cluster.replace_node(n);
        }
        assert!(matches!(g.load(&mut cluster), Err(EcCheckError::Unrecoverable { .. })));
    }

    #[test]
    fn grouping_reduces_per_checkpoint_traffic() {
        // Smaller groups -> smaller m -> less traffic per device.
        let (spec, mut c_small, mut small) = grouped(8, 1, 2);
        let (_, mut c_big, mut big) = grouped(8, 1, 8);
        let d = dicts(spec.world_size());
        let r_small = small.save(&mut c_small, &d).unwrap();
        let r_big = big.save(&mut c_big, &d).unwrap();
        let total_small: u64 = r_small.iter().map(|r| r.traffic.total()).sum();
        let total_big: u64 = r_big.iter().map(|r| r.traffic.total()).sum();
        assert!(
            total_small < total_big,
            "2-node groups ({total_small}) should move less than one 8-node group ({total_big})"
        );
    }

    #[test]
    fn grouping_costs_fault_tolerance() {
        let (_, _, small) = grouped(8, 1, 2);
        let (_, _, big) = grouped(8, 1, 8);
        for p in [0.05, 0.1, 0.2] {
            assert!(
                small.recovery_rate(p) < big.recovery_rate(p),
                "bigger groups tolerate more at p={p}"
            );
        }
    }

    #[test]
    fn invalid_group_sizes_are_rejected() {
        let spec = ClusterSpec::tiny_test(8, 1);
        let cfg = EcCheckConfig::paper_defaults().with_packet_size(512);
        assert!(GroupedEcCheck::initialize(&spec, 0, cfg).is_err());
        assert!(GroupedEcCheck::initialize(&spec, 3, cfg).is_err()); // does not divide
        assert!(GroupedEcCheck::initialize(&spec, 6, cfg).is_err()); // does not divide 8
        assert!(GroupedEcCheck::initialize(&spec, 4, cfg).is_ok());
    }

    #[test]
    fn optimal_group_size_balances_comm_and_reliability() {
        let spec = ClusterSpec::v100_scalability(16, 4);
        let shard = 1u64 << 30;
        // Reliable nodes: communication dominates, small groups win.
        let (costs_safe, best_safe) = optimal_group_size(&spec, shard, 1e-6);
        assert_eq!(costs_safe[best_safe].group_nodes, 2);
        // Very flaky nodes: reliability dominates, bigger groups win.
        let (costs_flaky, best_flaky) = optimal_group_size(&spec, shard, 0.2);
        assert!(
            costs_flaky[best_flaky].group_nodes > costs_safe[best_safe].group_nodes,
            "higher p should push toward larger groups: {:?}",
            costs_flaky
        );
    }

    #[test]
    fn optimal_group_size_monotone_structure() {
        let spec = ClusterSpec::v100_scalability(16, 4);
        let (costs, _) = optimal_group_size(&spec, 1 << 30, 0.05);
        // Comm time grows with group size; loss probability shrinks.
        for pair in costs.windows(2) {
            assert!(pair[1].comm_time > pair[0].comm_time);
            assert!(pair[1].loss_probability <= pair[0].loss_probability + 1e-12);
        }
    }

    #[test]
    fn grouped_recovery_rate_matches_reliability_crate() {
        let (_, _, g) = grouped(8, 1, 4);
        let p = 0.1;
        let expected = ecc_reliability::cluster_recovery(ecc_reliability::ec_recovery(4, 2, p), 2);
        assert!((g.recovery_rate(p) - expected).abs() < 1e-12);
    }
}
