//! The tiered, versioned checkpoint store (ROADMAP item 4).
//!
//! ECCheck's original engine kept exactly one checkpoint version in one
//! tier: the peer EC group (tier 0). Production systems (TierCheck,
//! GhostServe — see PAPERS.md) drain checkpoints through a hierarchy
//! and retain many versions with garbage collection. This module adds
//! the pieces the engine composes into that store:
//!
//! * [`RetentionPolicy`] + [`VersionIndex`] — which sealed versions
//!   stay restorable in tier 0. The policy keeps the newest
//!   `keep_last` versions plus every `keep_every`-th one; the index
//!   tracks what is sealed and computes the collectible set. The GC
//!   safety invariant — *the newest restorable version is never
//!   collected* — holds by construction: the newest version is always
//!   in the keep-last window (`keep_last` is clamped to ≥ 1).
//! * [`Drainer`] / [`DrainHandle`] — an asynchronous worker that
//!   copies sealed versions from tier 0 (peer memory) to tier 1 (the
//!   remote store) off the training critical path, over a bounded
//!   queue with explicit backpressure accounting. A version queued or
//!   mid-drain is *pinned*: the engine's GC reads
//!   [`DrainHandle::pending`] and never collects a pinned version, so
//!   a drain never races a delete. Deadlock-freedom: the drain thread
//!   only ever takes one plane operation's lock at a time and never
//!   waits on the training thread, while the training thread blocks
//!   (at most) on the bounded queue that the drain thread is actively
//!   emptying.
//! * [`drain_version`] — the synchronous tier-0 → tier-1 copy itself,
//!   checksum-verified blob by blob, re-reading the committed
//!   placement epoch at copy time so node churn between enqueue and
//!   drain is observed rather than raced. Remote keys are per-node
//!   (`remote/ecc/v{v}/chunk/{node}`), so the copy stays correct
//!   whatever incarnation currently owns a slot.
//! * [`WorkerDirtySet`] — one worker's dirty shard for
//!   [`crate::EcCheck::save_delta`], the GF-linear delta save that
//!   generalizes `update_worker` to arbitrary dirty sets.

use std::collections::BTreeSet;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use ecc_checkpoint::{verify_checksum, StateDict};
use ecc_cluster::DataPlane;
use ecc_telemetry::Recorder;

use crate::keys::{
    chunk_crc_key, chunk_key, committed_epoch, header_crc_key, header_key, manifest_key,
    remote_chunk_crc_key, remote_chunk_key, remote_header_crc_key, remote_header_key,
    remote_manifest_key,
};
use crate::{EcCheckConfig, EcCheckError};

/// One worker's dirty shard for a delta save: the worker id and its new
/// `state_dict`. Tensor shapes must be unchanged since the last full
/// save (only values evolve during training); shape changes need a full
/// [`crate::EcCheck::save`].
#[derive(Debug, Clone, Copy)]
pub struct WorkerDirtySet<'a> {
    /// The worker whose shard changed.
    pub worker: usize,
    /// The worker's new state.
    pub state: &'a StateDict,
}

/// Which tier-0 versions survive a save: the newest `keep_last`, plus
/// every `keep_every`-th version (0 disables the ladder). Derived from
/// [`EcCheckConfig::retain_last`] / [`EcCheckConfig::retain_every`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Newest versions kept unconditionally (clamped to ≥ 1).
    pub keep_last: usize,
    /// Keep-every-Kth pinning period (0 = off).
    pub keep_every: u64,
}

impl RetentionPolicy {
    /// Reads the policy out of an engine configuration.
    pub fn from_config(config: &EcCheckConfig) -> Self {
        Self { keep_last: config.retain_last().max(1), keep_every: config.retain_every() }
    }
}

/// The ordered set of sealed (restorable) checkpoint versions in tier 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionIndex {
    versions: Vec<u64>,
}

impl VersionIndex {
    /// An empty index (no version sealed yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the index from the manifests present on a plane's alive
    /// nodes — how an adopting engine learns which versions a previous
    /// process left restorable.
    pub fn rebuild(plane: &impl DataPlane) -> Self {
        Self { versions: crate::keys::manifest_versions(plane) }
    }

    /// Records a newly sealed version.
    pub fn record(&mut self, version: u64) {
        if version > 0 && !self.versions.contains(&version) {
            self.versions.push(version);
            self.versions.sort_unstable();
        }
    }

    /// Forgets a collected version.
    pub fn remove(&mut self, version: u64) {
        self.versions.retain(|&v| v != version);
    }

    /// `true` when `version` is sealed and uncollected.
    pub fn contains(&self, version: u64) -> bool {
        self.versions.contains(&version)
    }

    /// The newest sealed version, if any.
    pub fn newest(&self) -> Option<u64> {
        self.versions.last().copied()
    }

    /// Every sealed version, ascending.
    pub fn versions(&self) -> &[u64] {
        &self.versions
    }

    /// The versions a GC pass may collect under `policy`: everything
    /// outside the keep-last window, the keep-every ladder, and the
    /// `pinned` set (versions queued or mid-drain). Ascending order.
    /// The newest version is never returned — `keep_last ≥ 1`.
    pub fn collectible(&self, policy: &RetentionPolicy, pinned: &[u64]) -> Vec<u64> {
        let keep_last = policy.keep_last.max(1);
        let cutoff = self.versions.len().saturating_sub(keep_last);
        self.versions[..cutoff]
            .iter()
            .copied()
            .filter(|&v| !(policy.keep_every > 0 && v.is_multiple_of(policy.keep_every)))
            .filter(|v| !pinned.contains(v))
            .collect()
    }
}

/// What one tier-0 → tier-1 copy moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainOutcome {
    /// The version copied.
    pub version: u64,
    /// The placement epoch committed on the plane at copy time
    /// (re-read under the drain, so churn since enqueue is observed).
    pub epoch: Option<u64>,
    /// Chunks copied intact.
    pub chunks_copied: usize,
    /// Total blob bytes written to tier 1.
    pub bytes_copied: u64,
    /// Chunks skipped because they failed their checksum (never
    /// propagate corruption into the copy of last resort).
    pub skipped_corrupt: usize,
}

/// Synchronously copies one sealed version from tier 0 (peer memory) to
/// tier 1 (the remote store), verifying every blob's checksum on the
/// way. Corrupt chunks are skipped (and counted), headers fall back
/// across all survivors exactly like recovery, and the committed
/// placement epoch is re-read at copy time. This is the drain worker's
/// unit of work, public so tests (and synchronous callers) can drain
/// deterministically without a thread.
///
/// # Errors
///
/// Returns [`EcCheckError::VersionGone`] when no alive node holds a
/// manifest for `version` — there is nothing sealed to drain.
pub fn drain_version<P: DataPlane>(
    plane: &mut P,
    version: u64,
    world: usize,
    recorder: &Recorder,
) -> Result<DrainOutcome, EcCheckError> {
    let n = plane.nodes();
    let manifest = (0..n)
        .filter(|&node| plane.alive(node))
        .find_map(|node| plane.get_local(node, &manifest_key(version)))
        .ok_or(EcCheckError::VersionGone { version })?;
    let epoch = committed_epoch(plane);
    let mut chunks_copied = 0usize;
    let mut bytes_copied = 0u64;
    let mut skipped_corrupt = 0usize;
    for node in 0..n {
        let blob = plane.get_local(node, &chunk_key(version));
        let crc = plane.get_local(node, &chunk_crc_key(version));
        let (Some(blob), Some(crc)) = (blob, crc) else { continue };
        if !verify_checksum(&blob, &crc) {
            skipped_corrupt += 1;
            recorder.counter("ecc.drain.skipped_corrupt").incr();
            recorder.event("ecc.drain.corrupt", format!("v{version} node {node} failed checksum"));
            continue;
        }
        bytes_copied += (blob.len() + crc.len()) as u64;
        plane.put_remote(&remote_chunk_key(version, node), blob);
        plane.put_remote(&remote_chunk_crc_key(version, node), crc);
        chunks_copied += 1;
    }
    for w in 0..world {
        for node in 0..n {
            if !plane.alive(node) {
                continue;
            }
            let h = plane.get_local(node, &header_key(version, w));
            let crc = plane.get_local(node, &header_crc_key(version, w));
            let (Some(h), Some(crc)) = (h, crc) else { continue };
            if !verify_checksum(&h, &crc) {
                continue;
            }
            bytes_copied += (h.len() + crc.len()) as u64;
            plane.put_remote(&remote_header_key(version, w), h);
            plane.put_remote(&remote_header_crc_key(version, w), crc);
            break;
        }
    }
    bytes_copied += manifest.len() as u64;
    plane.put_remote(&remote_manifest_key(version), manifest);
    recorder.counter("ecc.drain.versions").incr();
    recorder.counter("ecc.drain.bytes").add(bytes_copied);
    recorder.event(
        "ecc.drain",
        format!("v{version} -> tier1: {chunks_copied} chunks, epoch {epoch:?}"),
    );
    Ok(DrainOutcome { version, epoch, chunks_copied, bytes_copied, skipped_corrupt })
}

enum DrainMsg {
    Drain { version: u64, world: usize },
    Flush(SyncSender<()>),
    Shutdown,
}

/// A cloneable handle into the drain worker's queue. The engine holds
/// one (to enqueue sealed versions and to pin pending versions against
/// GC); the owner of the [`Drainer`] keeps another for flushing.
#[derive(Debug, Clone)]
pub struct DrainHandle {
    tx: SyncSender<DrainMsg>,
    pending: Arc<Mutex<BTreeSet<u64>>>,
    recorder: Recorder,
}

impl DrainHandle {
    /// Queues `version` for a tier-0 → tier-1 copy. Blocks when the
    /// bounded queue is full (counting the stall on
    /// `ecc.drain.backpressure`) — the save path slows down rather
    /// than dropping durability work. Returns `false` when the drain
    /// worker is gone.
    pub fn enqueue(&self, version: u64, world: usize) -> bool {
        self.pending.lock().expect("drain pending lock").insert(version);
        self.recorder.counter("ecc.drain.enqueued").incr();
        match self.tx.try_send(DrainMsg::Drain { version, world }) {
            Ok(()) => true,
            Err(TrySendError::Full(msg)) => {
                self.recorder.counter("ecc.drain.backpressure").incr();
                if self.tx.send(msg).is_ok() {
                    true
                } else {
                    self.pending.lock().expect("drain pending lock").remove(&version);
                    false
                }
            }
            Err(TrySendError::Disconnected(_)) => {
                self.pending.lock().expect("drain pending lock").remove(&version);
                false
            }
        }
    }

    /// Versions queued or mid-drain — pinned against GC.
    pub fn pending(&self) -> Vec<u64> {
        self.pending.lock().expect("drain pending lock").iter().copied().collect()
    }

    /// Blocks until every version enqueued before this call has been
    /// drained (or the worker is gone).
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = sync_channel(0);
        if self.tx.send(DrainMsg::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }
}

/// The asynchronous drain worker: owns a thread that copies sealed
/// versions to tier 1 as [`DrainHandle::enqueue`] feeds it, off the
/// training critical path.
///
/// # Examples
///
/// ```
/// use ecc_cluster::{Cluster, ClusterSpec, SharedPlane};
/// use ecc_telemetry::Recorder;
/// use eccheck::store::Drainer;
///
/// let shared = SharedPlane::new(Cluster::new(ClusterSpec::tiny_test(2, 1)));
/// let drainer = Drainer::spawn(shared.clone(), 4, Recorder::new());
/// let handle = drainer.handle();
/// // ... engine saves through a clone of `shared`, enqueueing versions ...
/// handle.flush();
/// drainer.shutdown();
/// ```
#[derive(Debug)]
pub struct Drainer {
    handle: DrainHandle,
    thread: Option<JoinHandle<()>>,
}

impl Drainer {
    /// Spawns the drain worker over `plane` (a [`SharedPlane`] clone of
    /// the plane the engine saves through, so the worker sees the blobs
    /// the engine places) with a queue of `depth` pending versions.
    ///
    /// [`SharedPlane`]: ecc_cluster::SharedPlane
    pub fn spawn<P: DataPlane + Send + 'static>(
        mut plane: P,
        depth: usize,
        recorder: Recorder,
    ) -> Self {
        let (tx, rx): (SyncSender<DrainMsg>, Receiver<DrainMsg>) = sync_channel(depth.max(1));
        let pending = Arc::new(Mutex::new(BTreeSet::new()));
        let handle = DrainHandle { tx, pending: Arc::clone(&pending), recorder: recorder.clone() };
        let thread = std::thread::spawn(move || {
            while let Ok(msg) = rx.recv() {
                match msg {
                    DrainMsg::Drain { version, world } => {
                        if let Err(err) = drain_version(&mut plane, version, world, &recorder) {
                            recorder.counter("ecc.drain.failures").incr();
                            recorder.event("ecc.drain.failed", format!("v{version}: {err}"));
                        }
                        // Unpin only after the copy (or its failure) is
                        // final, so GC never deletes a version mid-copy.
                        pending.lock().expect("drain pending lock").remove(&version);
                    }
                    DrainMsg::Flush(ack) => {
                        let _ = ack.send(());
                    }
                    DrainMsg::Shutdown => break,
                }
            }
        });
        Self { handle, thread: Some(thread) }
    }

    /// A handle for enqueueing and pin queries (give one to the engine
    /// via [`crate::EcCheck::set_drainer`]).
    pub fn handle(&self) -> DrainHandle {
        self.handle.clone()
    }

    /// Drains the queue and stops the worker.
    pub fn shutdown(mut self) {
        let _ = self.handle.tx.send(DrainMsg::Shutdown);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Drainer {
    fn drop(&mut self) {
        let _ = self.handle.tx.send(DrainMsg::Shutdown);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_cluster::{Cluster, ClusterSpec, SharedPlane};

    fn policy(keep_last: usize, keep_every: u64) -> RetentionPolicy {
        RetentionPolicy { keep_last, keep_every }
    }

    fn index(versions: &[u64]) -> VersionIndex {
        let mut idx = VersionIndex::new();
        for &v in versions {
            idx.record(v);
        }
        idx
    }

    #[test]
    fn keep_last_one_collects_everything_but_newest() {
        let idx = index(&[1, 2, 3, 4]);
        assert_eq!(idx.collectible(&policy(1, 0), &[]), vec![1, 2, 3]);
        assert_eq!(idx.newest(), Some(4));
    }

    #[test]
    fn newest_version_is_never_collectible() {
        // Even a zero keep_last clamps to one.
        for keep in [0usize, 1, 2, 10] {
            let idx = index(&[5, 6, 7]);
            assert!(!idx.collectible(&policy(keep, 0), &[]).contains(&7));
        }
        assert!(index(&[9]).collectible(&policy(1, 0), &[]).is_empty());
        assert!(VersionIndex::new().collectible(&policy(1, 0), &[]).is_empty());
    }

    #[test]
    fn keep_every_pins_the_ladder() {
        let idx = index(&[1, 2, 3, 4, 5, 6, 7]);
        // Keep newest 2 (6, 7) and every 3rd (3, 6).
        assert_eq!(idx.collectible(&policy(2, 3), &[]), vec![1, 2, 4, 5]);
    }

    #[test]
    fn pinned_versions_survive() {
        let idx = index(&[1, 2, 3, 4]);
        assert_eq!(idx.collectible(&policy(1, 0), &[2]), vec![1, 3]);
    }

    #[test]
    fn record_is_idempotent_and_sorted() {
        let mut idx = index(&[3, 1]);
        idx.record(2);
        idx.record(3);
        idx.record(0); // version 0 means "none" and is never sealed
        assert_eq!(idx.versions(), &[1, 2, 3]);
        idx.remove(2);
        assert_eq!(idx.versions(), &[1, 3]);
        assert!(!idx.contains(2));
    }

    #[test]
    fn drain_of_unknown_version_errors() {
        let mut c = Cluster::new(ClusterSpec::tiny_test(2, 1));
        let err = drain_version(&mut c, 9, 2, &Recorder::new()).unwrap_err();
        assert!(matches!(err, EcCheckError::VersionGone { version: 9 }));
    }

    #[test]
    fn drainer_reports_pending_until_drained() {
        let shared = SharedPlane::new(Cluster::new(ClusterSpec::tiny_test(2, 1)));
        let drainer = Drainer::spawn(shared.clone(), 2, Recorder::new());
        let handle = drainer.handle();
        assert!(handle.pending().is_empty());
        // Draining a version with no manifest fails but must still
        // unpin it — a failed drain must never pin a version forever.
        assert!(handle.enqueue(3, 2));
        handle.flush();
        assert!(handle.pending().is_empty());
        drainer.shutdown();
    }
}
