//! The engine's blob-key namespace.
//!
//! Every blob the engine stores on the data plane lives under a
//! versioned key built here. The helpers are public so fault-injection
//! layers (e.g. `ecc-chaos`) and targeted tests can address a specific
//! stored blob — a node's chunk, one worker's header, or the checksum
//! frames guarding them — without duplicating format strings.

/// Key of the (single) erasure-code chunk a node holds for `version`.
pub fn chunk_key(version: u64) -> String {
    format!("ecc/v{version}/chunk")
}

/// Key of the checksum frame guarding [`chunk_key`].
pub fn chunk_crc_key(version: u64) -> String {
    format!("ecc/v{version}/chunk.crc")
}

/// Key of `worker`'s broadcast decomposition header for `version`.
pub fn header_key(version: u64, worker: usize) -> String {
    format!("ecc/v{version}/hdr/{worker}")
}

/// Key of the checksum frame guarding [`header_key`].
pub fn header_crc_key(version: u64, worker: usize) -> String {
    format!("ecc/v{version}/hdr/{worker}.crc")
}

/// Key of the packet-layout manifest for `version`.
pub fn manifest_key(version: u64) -> String {
    format!("ecc/v{version}/manifest")
}

/// Remote-storage key of `node`'s chunk for `version`.
pub fn remote_chunk_key(version: u64, node: usize) -> String {
    format!("remote/ecc/v{version}/chunk/{node}")
}

/// Remote-storage key of the checksum frame guarding
/// [`remote_chunk_key`].
pub fn remote_chunk_crc_key(version: u64, node: usize) -> String {
    format!("remote/ecc/v{version}/chunk/{node}.crc")
}

/// Remote-storage key of `worker`'s header for `version`.
pub fn remote_header_key(version: u64, worker: usize) -> String {
    format!("remote/ecc/v{version}/hdr/{worker}")
}

/// Remote-storage key of the checksum frame guarding
/// [`remote_header_key`].
pub fn remote_header_crc_key(version: u64, worker: usize) -> String {
    format!("remote/ecc/v{version}/hdr/{worker}.crc")
}

/// Remote-storage key of the manifest for `version`.
pub fn remote_manifest_key(version: u64) -> String {
    format!("remote/ecc/v{version}/manifest")
}

/// Key of the cluster-wide committed placement epoch marker, written
/// to every alive node by the membership controller after a verified
/// rebalance. Unversioned: there is exactly one current epoch per
/// cluster, and checkpoints of any version are migrated forward to
/// match it before it commits.
pub fn placement_epoch_key() -> String {
    "ecc/placement/epoch".to_string()
}

/// Key of the provenance marker recording the placement epoch a
/// checkpoint `version` was saved (or last migrated) under.
pub fn epoch_key(version: u64) -> String {
    format!("ecc/v{version}/epoch")
}

/// Serializes a placement epoch for storage under
/// [`placement_epoch_key`] / [`epoch_key`].
pub fn encode_epoch(epoch: u64) -> Vec<u8> {
    epoch.to_le_bytes().to_vec()
}

/// Parses an epoch blob written by [`encode_epoch`]. `None` for blobs
/// of the wrong width (treat as "no epoch committed").
pub fn decode_epoch(bytes: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

/// Reads the committed placement epoch from the first alive node that
/// holds the marker. `None` means no membership controller has ever
/// committed a rebalance on this plane (implicit epoch 0).
pub fn committed_epoch(plane: &impl ecc_cluster::DataPlane) -> Option<u64> {
    let key = placement_epoch_key();
    (0..plane.nodes())
        .filter(|&node| plane.alive(node))
        .find_map(|node| plane.get_local(node, &key))
        .and_then(|blob| decode_epoch(&blob))
}

/// `true` when `key` addresses a chunk blob or its checksum frame —
/// the blobs whose loss or corruption consumes one unit of the code's
/// `m`-failure budget. Used by fault-injection accounting.
pub fn is_chunk_class(key: &str) -> bool {
    key.contains("/chunk")
}

/// `true` when `key` addresses a header blob or its checksum frame
/// (replicated on every node, so a single loss is survivable).
pub fn is_header_class(key: &str) -> bool {
    key.contains("/hdr/")
}

/// Extracts the worker a header-class key addresses, if any.
///
/// # Examples
///
/// ```
/// assert_eq!(eccheck::keys::header_worker(&eccheck::keys::header_key(2, 5)), Some(5));
/// assert_eq!(eccheck::keys::header_worker(&eccheck::keys::header_crc_key(2, 5)), Some(5));
/// assert_eq!(eccheck::keys::header_worker(&eccheck::keys::chunk_key(2)), None);
/// ```
pub fn header_worker(key: &str) -> Option<usize> {
    let (_, tail) = key.split_once("/hdr/")?;
    tail.strip_suffix(".crc").unwrap_or(tail).parse().ok()
}

/// Extracts the version a key addresses, if it is an engine key.
///
/// # Examples
///
/// ```
/// assert_eq!(eccheck::keys::key_version(&eccheck::keys::chunk_key(7)), Some(7));
/// assert_eq!(eccheck::keys::key_version("unrelated"), None);
/// ```
pub fn key_version(key: &str) -> Option<u64> {
    let tail = key.strip_prefix("remote/").unwrap_or(key);
    let tail = tail.strip_prefix("ecc/v")?;
    let end = tail.find('/')?;
    tail[..end].parse().ok()
}

/// Scans a data plane for the newest checkpoint version that has a
/// manifest on some alive node, so a fresh process can adopt a
/// checkpoint it did not write (see `EcCheck::adopt_version`). Returns
/// `None` when no alive node holds a manifest. Remote storage is not
/// probed: it has no key listing and is only flushed periodically, so
/// its newest manifest may lag the cluster's.
pub fn latest_manifest_version(plane: &impl ecc_cluster::DataPlane) -> Option<u64> {
    let mut latest = None;
    for node in 0..plane.nodes() {
        if !plane.alive(node) {
            continue;
        }
        for key in plane.local_keys(node) {
            if let Some(rest) = key.strip_prefix("ecc/v") {
                if let Some(v) = rest.strip_suffix("/manifest").and_then(|v| v.parse().ok()) {
                    latest = latest.max(Some(v));
                }
            }
        }
    }
    latest
}

/// Scans a data plane for every checkpoint version that has a manifest
/// on some alive node, sorted ascending. The tiered store's version
/// index is rebuilt from this after adoption: the manifest is the last
/// blob a save seals, so a version with a manifest is restorable (up to
/// the usual `m`-failure budget).
pub fn manifest_versions(plane: &impl ecc_cluster::DataPlane) -> Vec<u64> {
    let mut versions = Vec::new();
    for node in 0..plane.nodes() {
        if !plane.alive(node) {
            continue;
        }
        for key in plane.local_keys(node) {
            if let Some(rest) = key.strip_prefix("ecc/v") {
                if let Some(v) = rest.strip_suffix("/manifest").and_then(|v| v.parse().ok()) {
                    if !versions.contains(&v) {
                        versions.push(v);
                    }
                }
            }
        }
    }
    versions.sort_unstable();
    versions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_distinct_and_versioned() {
        let keys = [
            chunk_key(3),
            chunk_crc_key(3),
            header_key(3, 0),
            header_crc_key(3, 0),
            manifest_key(3),
            remote_chunk_key(3, 1),
            remote_chunk_crc_key(3, 1),
            remote_header_key(3, 0),
            remote_header_crc_key(3, 0),
            remote_manifest_key(3),
            epoch_key(3),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
            assert_eq!(key_version(a), Some(3), "{a}");
        }
    }

    #[test]
    fn classification() {
        assert!(is_chunk_class(&chunk_key(1)));
        assert!(is_chunk_class(&chunk_crc_key(1)));
        assert!(is_chunk_class(&remote_chunk_key(1, 0)));
        assert!(!is_chunk_class(&header_key(1, 0)));
        assert!(!is_chunk_class(&manifest_key(1)));
        assert!(is_header_class(&header_key(1, 2)));
        assert!(is_header_class(&header_crc_key(1, 2)));
        assert!(!is_header_class(&chunk_key(1)));
    }

    #[test]
    fn header_worker_extraction() {
        assert_eq!(header_worker(&header_key(4, 11)), Some(11));
        assert_eq!(header_worker(&header_crc_key(4, 11)), Some(11));
        assert_eq!(header_worker(&remote_header_key(4, 3)), Some(3));
        assert_eq!(header_worker(&chunk_key(4)), None);
        assert_eq!(header_worker("ecc/v1/hdr/notanumber"), None);
    }

    #[test]
    fn epoch_blob_round_trip() {
        assert_eq!(decode_epoch(&encode_epoch(0)), Some(0));
        assert_eq!(decode_epoch(&encode_epoch(u64::MAX)), Some(u64::MAX));
        assert_eq!(decode_epoch(&[1, 2, 3]), None);
        assert_eq!(decode_epoch(&[]), None);
        // The cluster-wide marker is outside any version namespace, so
        // per-version cleanup can never reap it.
        assert_eq!(key_version(&placement_epoch_key()), None);
        assert!(!is_chunk_class(&placement_epoch_key()));
        assert_eq!(key_version(&epoch_key(9)), Some(9));
    }

    #[test]
    fn manifest_versions_scans_alive_nodes() {
        use ecc_cluster::{Cluster, ClusterSpec};
        let mut c = Cluster::new(ClusterSpec::tiny_test(2, 1));
        assert!(manifest_versions(&c).is_empty());
        c.put_local(0, &manifest_key(3), vec![0; 8]).unwrap();
        c.put_local(1, &manifest_key(1), vec![0; 8]).unwrap();
        c.put_local(1, &manifest_key(3), vec![0; 8]).unwrap();
        assert_eq!(manifest_versions(&c), vec![1, 3]);
        assert_eq!(latest_manifest_version(&c), Some(3));
        c.fail_node(1);
        assert_eq!(manifest_versions(&c), vec![3]);
    }

    #[test]
    fn version_extraction_rejects_garbage() {
        assert_eq!(key_version("ecc/vX/chunk"), None);
        assert_eq!(key_version("ecc/v12"), None);
        assert_eq!(key_version(""), None);
    }
}
