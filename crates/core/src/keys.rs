//! The engine's blob-key namespace.
//!
//! Every blob the engine stores on the data plane lives under a
//! versioned key built here. The helpers are public so fault-injection
//! layers (e.g. `ecc-chaos`) and targeted tests can address a specific
//! stored blob — a node's chunk, one worker's header, or the checksum
//! frames guarding them — without duplicating format strings.

/// Key of the (single) erasure-code chunk a node holds for `version`.
pub fn chunk_key(version: u64) -> String {
    format!("ecc/v{version}/chunk")
}

/// Key of the checksum frame guarding [`chunk_key`].
pub fn chunk_crc_key(version: u64) -> String {
    format!("ecc/v{version}/chunk.crc")
}

/// Key of `worker`'s broadcast decomposition header for `version`.
pub fn header_key(version: u64, worker: usize) -> String {
    format!("ecc/v{version}/hdr/{worker}")
}

/// Key of the checksum frame guarding [`header_key`].
pub fn header_crc_key(version: u64, worker: usize) -> String {
    format!("ecc/v{version}/hdr/{worker}.crc")
}

/// Key of the packet-layout manifest for `version`.
pub fn manifest_key(version: u64) -> String {
    format!("ecc/v{version}/manifest")
}

/// Remote-storage key of `node`'s chunk for `version`.
pub fn remote_chunk_key(version: u64, node: usize) -> String {
    format!("remote/ecc/v{version}/chunk/{node}")
}

/// Remote-storage key of the checksum frame guarding
/// [`remote_chunk_key`].
pub fn remote_chunk_crc_key(version: u64, node: usize) -> String {
    format!("remote/ecc/v{version}/chunk/{node}.crc")
}

/// Remote-storage key of `worker`'s header for `version`.
pub fn remote_header_key(version: u64, worker: usize) -> String {
    format!("remote/ecc/v{version}/hdr/{worker}")
}

/// Remote-storage key of the checksum frame guarding
/// [`remote_header_key`].
pub fn remote_header_crc_key(version: u64, worker: usize) -> String {
    format!("remote/ecc/v{version}/hdr/{worker}.crc")
}

/// Remote-storage key of the manifest for `version`.
pub fn remote_manifest_key(version: u64) -> String {
    format!("remote/ecc/v{version}/manifest")
}

/// `true` when `key` addresses a chunk blob or its checksum frame —
/// the blobs whose loss or corruption consumes one unit of the code's
/// `m`-failure budget. Used by fault-injection accounting.
pub fn is_chunk_class(key: &str) -> bool {
    key.contains("/chunk")
}

/// `true` when `key` addresses a header blob or its checksum frame
/// (replicated on every node, so a single loss is survivable).
pub fn is_header_class(key: &str) -> bool {
    key.contains("/hdr/")
}

/// Extracts the worker a header-class key addresses, if any.
///
/// # Examples
///
/// ```
/// assert_eq!(eccheck::keys::header_worker(&eccheck::keys::header_key(2, 5)), Some(5));
/// assert_eq!(eccheck::keys::header_worker(&eccheck::keys::header_crc_key(2, 5)), Some(5));
/// assert_eq!(eccheck::keys::header_worker(&eccheck::keys::chunk_key(2)), None);
/// ```
pub fn header_worker(key: &str) -> Option<usize> {
    let (_, tail) = key.split_once("/hdr/")?;
    tail.strip_suffix(".crc").unwrap_or(tail).parse().ok()
}

/// Extracts the version a key addresses, if it is an engine key.
///
/// # Examples
///
/// ```
/// assert_eq!(eccheck::keys::key_version(&eccheck::keys::chunk_key(7)), Some(7));
/// assert_eq!(eccheck::keys::key_version("unrelated"), None);
/// ```
pub fn key_version(key: &str) -> Option<u64> {
    let tail = key.strip_prefix("remote/").unwrap_or(key);
    let tail = tail.strip_prefix("ecc/v")?;
    let end = tail.find('/')?;
    tail[..end].parse().ok()
}

/// Scans a data plane for the newest checkpoint version that has a
/// manifest on some alive node, so a fresh process can adopt a
/// checkpoint it did not write (see `EcCheck::adopt_version`). Returns
/// `None` when no alive node holds a manifest. Remote storage is not
/// probed: it has no key listing and is only flushed periodically, so
/// its newest manifest may lag the cluster's.
pub fn latest_manifest_version(plane: &impl ecc_cluster::DataPlane) -> Option<u64> {
    let mut latest = None;
    for node in 0..plane.nodes() {
        if !plane.alive(node) {
            continue;
        }
        for key in plane.local_keys(node) {
            if let Some(rest) = key.strip_prefix("ecc/v") {
                if let Some(v) = rest.strip_suffix("/manifest").and_then(|v| v.parse().ok()) {
                    latest = latest.max(Some(v));
                }
            }
        }
    }
    latest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_distinct_and_versioned() {
        let keys = [
            chunk_key(3),
            chunk_crc_key(3),
            header_key(3, 0),
            header_crc_key(3, 0),
            manifest_key(3),
            remote_chunk_key(3, 1),
            remote_chunk_crc_key(3, 1),
            remote_header_key(3, 0),
            remote_header_crc_key(3, 0),
            remote_manifest_key(3),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
            assert_eq!(key_version(a), Some(3), "{a}");
        }
    }

    #[test]
    fn classification() {
        assert!(is_chunk_class(&chunk_key(1)));
        assert!(is_chunk_class(&chunk_crc_key(1)));
        assert!(is_chunk_class(&remote_chunk_key(1, 0)));
        assert!(!is_chunk_class(&header_key(1, 0)));
        assert!(!is_chunk_class(&manifest_key(1)));
        assert!(is_header_class(&header_key(1, 2)));
        assert!(is_header_class(&header_crc_key(1, 2)));
        assert!(!is_header_class(&chunk_key(1)));
    }

    #[test]
    fn header_worker_extraction() {
        assert_eq!(header_worker(&header_key(4, 11)), Some(11));
        assert_eq!(header_worker(&header_crc_key(4, 11)), Some(11));
        assert_eq!(header_worker(&remote_header_key(4, 3)), Some(3));
        assert_eq!(header_worker(&chunk_key(4)), None);
        assert_eq!(header_worker("ecc/v1/hdr/notanumber"), None);
    }

    #[test]
    fn version_extraction_rejects_garbage() {
        assert_eq!(key_version("ecc/vX/chunk"), None);
        assert_eq!(key_version("ecc/v12"), None);
        assert_eq!(key_version(""), None);
    }
}
