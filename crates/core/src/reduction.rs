//! Reduction groups and XOR-reduction target selection (paper §IV-B-2).
//!
//! The `W` workers are divided into `k` data groups of `W/k` workers
//! (the packets of data group `j` form data chunk `j`). Reduction group
//! `r` gathers the workers holding relative index `r` in each data
//! group; it performs `m` XOR reductions, one per parity chunk, so
//! `(W/k) · m` reductions happen per checkpoint in total — a count that
//! is invariant to node roles. What the target selection *can* optimise
//! is where each reduction result lands: on a parity worker, the result
//! needs no further P2P transfer.

use std::ops::Range;

use ecc_cluster::ClusterSpec;

use crate::{EcCheckError, Placement};

/// One reduction group: `k` member workers and the `m` chosen reduction
/// targets (one per parity chunk).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionGroup {
    members: Vec<usize>,
    targets: Vec<usize>,
}

impl ReductionGroup {
    /// The member workers, one from each data group (by relative index).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// `targets()[i]` is the worker that accumulates parity packet `i`.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }
}

/// The complete reduction plan for one checkpoint layout.
///
/// # Examples
///
/// ```
/// use ecc_cluster::ClusterSpec;
/// use eccheck::{select_data_parity_nodes, ReductionPlan};
///
/// let spec = ClusterSpec::paper_testbed(); // 4 nodes × 4 GPUs
/// let placement = select_data_parity_nodes(&spec.origin_group(), 2)?;
/// let plan = ReductionPlan::build(&spec, &placement, 2)?;
/// assert_eq!(plan.groups().len(), 8); // W/k = 16/2
/// // Total checkpoint traffic is m × model size (paper §V-F).
/// let t = plan.traffic(1);
/// assert_eq!(t.total(), 2 * 16);
/// # Ok::<(), eccheck::EcCheckError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionPlan {
    groups: Vec<ReductionGroup>,
    k: usize,
    m: usize,
    world: usize,
    gpus_per_node: usize,
    placement: Placement,
    origin: Vec<Range<usize>>,
}

impl ReductionPlan {
    /// Builds the plan for a cluster, node placement, and parity count.
    ///
    /// # Errors
    ///
    /// Returns [`EcCheckError::Config`] when the world size does not
    /// divide by `k` or the placement disagrees with `m`.
    pub fn build(
        spec: &ClusterSpec,
        placement: &Placement,
        m: usize,
    ) -> Result<Self, EcCheckError> {
        let world = spec.world_size();
        let k = placement.k();
        if placement.m() != m {
            return Err(EcCheckError::Config {
                detail: format!("placement provides {} parity nodes but m = {m}", placement.m()),
            });
        }
        if !world.is_multiple_of(k) {
            return Err(EcCheckError::Config {
                detail: format!("world size {world} does not divide into {k} data groups"),
            });
        }
        let group_size = world / k;
        let mut groups = Vec::with_capacity(group_size);
        for r in 0..group_size {
            let members: Vec<usize> = (0..k).map(|j| j * group_size + r).collect();
            let targets = select_targets(&members, placement, spec, m);
            groups.push(ReductionGroup { members, targets });
        }
        Ok(Self {
            groups,
            k,
            m,
            world,
            gpus_per_node: spec.gpus_per_node(),
            placement: placement.clone(),
            origin: spec.origin_group(),
        })
    }

    /// The reduction groups, ordered by relative index.
    pub fn groups(&self) -> &[ReductionGroup] {
        &self.groups
    }

    /// Number of XOR reduction operations per checkpoint:
    /// `(W/k) · m` (paper §IV-B-2).
    pub fn reduction_op_count(&self) -> usize {
        self.groups.len() * self.m
    }

    /// Traffic accounting for one checkpoint with per-worker packet
    /// payload `packet_units` (in arbitrary units, typically bytes).
    pub fn traffic(&self, packet_units: u64) -> TrafficSummary {
        // XOR reduction: each of the (W/k)·m reductions moves k-1 packets
        // (a chain through the k members ending at the target).
        let xor_units = (self.groups.len() * self.m * (self.k - 1)) as u64 * packet_units;
        // Data P2P: packets the data nodes still need.
        let data_units =
            crate::placement::data_p2p_packets(&self.origin, &self.placement) as u64 * packet_units;
        // Parity P2P: reduction results not already on the right parity
        // node.
        let mut parity_moves = 0u64;
        for g in &self.groups {
            for (i, &target) in g.targets.iter().enumerate() {
                let target_node = target / self.gpus_per_node;
                if target_node != self.placement.parity_nodes()[i] {
                    parity_moves += 1;
                }
            }
        }
        TrafficSummary {
            xor_reduction: xor_units,
            data_p2p: data_units,
            parity_p2p: parity_moves * packet_units,
        }
    }

    /// Cluster node hosting the reduction target of group `group` for
    /// parity index `parity`.
    pub fn target_node(&self, group: usize, parity: usize) -> usize {
        self.groups[group].targets[parity] / self.gpus_per_node
    }

    /// How many reductions per checkpoint land on a target worker that
    /// already lives on the owning parity node (rule 1 of target
    /// selection, paper §IV-B-2) — those results need no parity P2P hop.
    /// The complement of the `parity_p2p` moves counted by
    /// [`ReductionPlan::traffic`].
    pub fn local_target_hits(&self) -> usize {
        let mut hits = 0;
        for (g, group) in self.groups.iter().enumerate() {
            for i in 0..group.targets.len() {
                if self.target_node(g, i) == self.placement.parity_nodes()[i] {
                    hits += 1;
                }
            }
        }
        hits
    }
}

/// Selects the `m` reduction targets for one group (paper §IV-B-2).
///
/// Rule 1: a member living on parity node `i` absorbs reduction `i`
/// (its result is already where parity chunk `i` lives). For the
/// remaining reductions: `k == m` pairs them 1:1 with members; `k > m`
/// spreads them at interval `⌊k/m⌋`; `k < m` wraps round-robin.
fn select_targets(
    members: &[usize],
    placement: &Placement,
    spec: &ClusterSpec,
    m: usize,
) -> Vec<usize> {
    let k = members.len();
    let mut targets: Vec<Option<usize>> = vec![None; m];
    // Rule 1: members on parity nodes take "their" parity index.
    for &w in members {
        let node = spec.node_of_worker(w);
        if let Some(i) = placement.parity_nodes().iter().position(|&p| p == node) {
            if targets[i].is_none() {
                targets[i] = Some(w);
            }
        }
    }
    // Remaining reductions fall back to the k/m distribution rules.
    let open: Vec<usize> = (0..m).filter(|&i| targets[i].is_none()).collect();
    if !open.is_empty() {
        if k >= m {
            let stride = (k / m).max(1);
            for (slot, &i) in open.iter().enumerate() {
                targets[i] = Some(members[(slot * stride) % k]);
            }
        } else {
            for (slot, &i) in open.iter().enumerate() {
                targets[i] = Some(members[slot % k]);
            }
        }
    }
    targets.into_iter().map(|t| t.expect("all targets assigned")).collect()
}

/// Byte counts of the three communication phases of one checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSummary {
    /// Bytes moved during XOR reduction chains.
    pub xor_reduction: u64,
    /// Bytes of data packets moved to data nodes.
    pub data_p2p: u64,
    /// Bytes of parity packets moved to parity nodes.
    pub parity_p2p: u64,
}

impl TrafficSummary {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.xor_reduction + self.data_p2p + self.parity_p2p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select_data_parity_nodes;

    fn plan_for(nodes: usize, g: usize, k: usize, m: usize) -> ReductionPlan {
        let spec = ClusterSpec::tiny_test(nodes, g);
        let placement = select_data_parity_nodes(&spec.origin_group(), k).unwrap();
        ReductionPlan::build(&spec, &placement, m).unwrap()
    }

    #[test]
    fn paper_testbed_groups_and_ops() {
        let plan = plan_for(4, 4, 2, 2);
        assert_eq!(plan.groups().len(), 8);
        assert_eq!(plan.reduction_op_count(), 16);
        // Every group has one member from each data group.
        for (r, g) in plan.groups().iter().enumerate() {
            assert_eq!(g.members(), &[r, 8 + r]);
        }
    }

    /// The headline invariant of §V-F: total communication volume for one
    /// checkpoint equals m × s × W.
    #[test]
    fn total_traffic_is_m_s_w() {
        for (nodes, g, k, m) in [(4, 4, 2, 2), (4, 1, 2, 2), (6, 2, 3, 3), (8, 4, 4, 4)] {
            let plan = plan_for(nodes, g, k, m);
            let s = 10u64;
            let w = (nodes * g) as u64;
            let t = plan.traffic(s);
            assert_eq!(t.total(), m as u64 * s * w, "nodes={nodes} g={g} k={k} m={m}: {t:?}");
        }
    }

    #[test]
    fn traffic_breakdown_matches_closed_forms() {
        // Paper §V-F: XOR = (W/k)·m·(k-1)·s, data = (W - k·g)·s,
        // parity = ((W/k) - g)·m·s.
        let (nodes, g, k, m) = (4usize, 4usize, 2usize, 2usize);
        let plan = plan_for(nodes, g, k, m);
        let s = 7u64;
        let w = nodes * g;
        let t = plan.traffic(s);
        assert_eq!(t.xor_reduction, ((w / k) * m * (k - 1)) as u64 * s);
        assert_eq!(t.data_p2p, (w - k * g) as u64 * s);
        assert_eq!(t.parity_p2p, ((w / k - g) * m) as u64 * s);
    }

    #[test]
    fn members_on_parity_nodes_become_targets() {
        // Paper testbed: groups with r in 4..8 have members on nodes 1
        // and 3 (the parity nodes); those members must be the targets.
        let plan = plan_for(4, 4, 2, 2);
        for r in 4..8 {
            let g = &plan.groups()[r];
            assert_eq!(g.targets()[0], g.members()[0], "r={r} parity 0 on node 1");
            assert_eq!(g.targets()[1], g.members()[1], "r={r} parity 1 on node 3");
        }
        // Groups with r in 0..4 live on data nodes: k == m pairs 1:1.
        for r in 0..4 {
            let g = &plan.groups()[r];
            assert_eq!(g.targets().len(), 2);
            assert!(g.targets().iter().all(|t| g.members().contains(t)));
            assert_ne!(g.targets()[0], g.targets()[1], "k == m spreads targets");
        }
    }

    #[test]
    fn k_greater_than_m_skips_workers() {
        // k = 4, m = 2 on a single-GPU-per-node cluster of 6: every
        // reduction group is all 6 nodes' single workers... here 6 nodes,
        // k=4, m=2, g=2 -> W=12, group size 3.
        let plan = plan_for(6, 2, 4, 2);
        for g in plan.groups() {
            assert_eq!(g.targets().len(), 2);
            // Targets are distinct members (stride k/m = 2).
            assert!(g.targets().iter().all(|t| g.members().contains(t)));
        }
    }

    #[test]
    fn k_less_than_m_round_robins() {
        // 6 nodes × 1 GPU, k = 2, m = 4: W = 6, group size 3, members 2.
        let plan = plan_for(6, 1, 2, 4);
        for g in plan.groups() {
            assert_eq!(g.targets().len(), 4);
            for t in g.targets() {
                assert!(g.members().contains(t));
            }
        }
    }

    /// `local_target_hits` is exactly the complement of the parity P2P
    /// moves `traffic` charges for: every reduction either lands on its
    /// parity node (a hit) or pays one parity move.
    #[test]
    fn local_hits_complement_parity_moves() {
        for (nodes, g, k, m) in [(4, 4, 2, 2), (4, 1, 2, 2), (6, 2, 3, 3), (8, 4, 4, 4)] {
            let plan = plan_for(nodes, g, k, m);
            let t = plan.traffic(1);
            let reductions = plan.reduction_op_count() as u64;
            assert_eq!(
                plan.local_target_hits() as u64 + t.parity_p2p,
                reductions,
                "nodes={nodes} g={g} k={k} m={m}"
            );
            for (r, group) in plan.groups().iter().enumerate() {
                for i in 0..group.targets().len() {
                    let node = plan.target_node(r, i);
                    assert!(node < nodes, "target node in range");
                }
            }
        }
    }

    #[test]
    fn placement_mismatch_is_rejected() {
        let spec = ClusterSpec::tiny_test(4, 2);
        let placement = select_data_parity_nodes(&spec.origin_group(), 2).unwrap();
        assert!(ReductionPlan::build(&spec, &placement, 3).is_err());
    }
}
