//! The pipelined save executor (paper §IV-C).
//!
//! ECCheck's checkpoint coding pipeline overlaps the three save stages —
//! encode, XOR-reduce, transfer — by streaming fixed-size *stripes* of
//! each data chunk through them instead of materialising whole parity
//! chunks before any byte moves. This module is the real-thread
//! implementation of that pipeline over the in-memory data plane:
//!
//! * **Stage 1 — encode.** `coding_threads` workers share the task list
//!   through chunked work-stealing deques: tasks are seeded round-robin
//!   into per-worker FIFO queues and an idle worker batch-steals the
//!   oldest half of a busy worker's backlog, so a stalled core delays
//!   only the task it is executing. For every (stripe, data chunk) pair
//!   a worker runs the *fused* single-column XOR schedule over the
//!   stripe's `w` sub-packet rows, read in place straight out of the
//!   data chunk ([`ecc_erasure::ErasureCode::encode_column_stripe_into`]
//!   — no gather copy), and hands the flat contribution buffer to the
//!   reducer. Workers also checksum the data chunks in fixed-size pieces
//!   so the CRC cost rides the pipeline instead of serialising behind
//!   it.
//! * **Stage 2 — XOR-reduce.** One reducer thread folds the `k` column
//!   contributions of each stripe together (GF(2) linearity makes the
//!   XOR of column encodings bit-identical to the full encode), computes
//!   the stripe's parity piece CRCs, and forwards the finished
//!   accumulator to the transfer stage.
//! * **Stage 3 — transfer.** The driver scatters finished stripes into
//!   the parity chunks, stitches piece CRCs with
//!   [`ecc_checkpoint::crc32_combine`], and issues every store in one
//!   canonical order (data chunks by index, then parity, as the
//!   sequential oracle does), gating each transfer through the profiled
//!   idle-slot [`SlotGate`] when one is attached.
//!
//! Memory is bounded by construction: contributions recycle through a
//! ring of `threads + 2` buffers and at most `pipeline_depth` stripes may
//! be open between encode and retirement (the *admission window*), so a
//! save never holds more than a few stripes of transient state beyond
//! the chunks themselves. Backpressure falls out of the same bounds — a
//! fast encode stage simply blocks on the window or the ring until the
//! reducer and driver catch up.
//!
//! Determinism: everything observable through the recorder snapshot or a
//! [`ManualClock`](ecc_telemetry::ManualClock)-driven trace is invariant
//! across runs *and* across thread counts — even though *which* worker
//! executes a task is now a scheduling accident. Encode and reduce spans
//! are recorded privately by the stage threads and re-emitted by the
//! driver after the join, sorted by task/stripe order, on single
//! `encode`/`reduce` tracks whose identity never depends on the thread
//! count; every telemetry counter counts work items (stripes, pieces,
//! bytes) — never scheduling accidents. The nondeterministic residue
//! (busy times, queue waits, steal counts) lands in [`PipelineStats`]
//! instead.
//!
//! Deadlock freedom under stealing: deques are FIFO and steals take from
//! the front, so the globally oldest unexecuted task is always the next
//! one some worker picks up. A worker blocked on the admission window
//! holds a task for a stripe beyond the window; every task of the oldest
//! open stripe is older, hence already executing or at a deque front
//! where any free worker — including ones whose own deque is empty —
//! will take it. The oldest stripe therefore always completes, the
//! window advances, and blocked workers wake.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

use crossbeam_deque::{Steal, Stealer, Worker};
use ecc_checkpoint::{crc32, crc32_combine};
use ecc_cluster::DataPlane;
use ecc_erasure::{region, ErasureCode};
use ecc_sim::SlotGate;
use ecc_telemetry::Recorder;
use ecc_trace::{TrackId, CODING_PID, DRIVER_PID};

use crate::engine::TraceHandles;
use crate::keys::{chunk_crc_key, chunk_key};
use crate::{EcCheckError, Placement, ReductionPlan};

/// Stage accounting for one pipelined save, reported on
/// [`crate::SaveReport`].
///
/// All fields are plain integers so reports stay `Eq`; occupancy ratios
/// are derived through the accessor methods. Busy/wait figures are wall
/// measurements and vary run to run — the deterministic work counts
/// (stripes, tasks, admissions) are also mirrored as telemetry counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Stripes the chunks were split into (per data chunk).
    pub stripes: usize,
    /// Rows of a full stripe: bytes each encode task reads per
    /// sub-packet (the last stripe may be shorter).
    pub stripe_rows: usize,
    /// Size in bytes of one flat contribution buffer (`m · w · rows`).
    pub buffer_bytes: usize,
    /// Encode-stage worker threads.
    pub encode_workers: usize,
    /// Encode tasks executed: `stripes · k` contributions plus the data
    /// CRC pieces.
    pub encode_tasks: u64,
    /// Summed busy time of the encode workers, ns.
    pub encode_busy_ns: u64,
    /// Busy time of the reduce stage, ns.
    pub reduce_busy_ns: u64,
    /// Busy time of the transfer stage (scatter, CRC stitch, stores), ns.
    pub transfer_busy_ns: u64,
    /// Wall time of the whole executor, ns.
    pub wall_ns: u64,
    /// Times an encode worker blocked waiting for a free contribution
    /// buffer (ring backpressure).
    pub ring_waits: u64,
    /// Times an encode worker blocked on the stripe admission window
    /// (pipeline-depth backpressure).
    pub window_waits: u64,
    /// Encode tasks obtained by stealing from another worker's deque
    /// rather than popped from the worker's own. A scheduling accident
    /// (varies run to run); deliberately not mirrored into telemetry.
    pub encode_steals: u64,
    /// Virtual nanoseconds transfers spent parked behind profiled busy
    /// windows at the idle-slot gate (0 when no gate is attached).
    pub slot_wait_ns: u64,
    /// Transfers admitted through the idle-slot gate.
    pub slot_admissions: u64,
    /// Reductions whose target already sat on the owning parity node
    /// (no parity P2P hop), per the reduction plan.
    pub local_reduce_targets: u64,
}

impl PipelineStats {
    /// Encode-stage occupancy in `[0, 1]`: busy time over wall time
    /// across all worker lanes.
    pub fn encode_occupancy(&self) -> f64 {
        occupancy(self.encode_busy_ns, self.wall_ns, self.encode_workers as u64)
    }

    /// Reduce-stage occupancy in `[0, 1]`.
    pub fn reduce_occupancy(&self) -> f64 {
        occupancy(self.reduce_busy_ns, self.wall_ns, 1)
    }

    /// Transfer-stage occupancy in `[0, 1]`.
    pub fn transfer_occupancy(&self) -> f64 {
        occupancy(self.transfer_busy_ns, self.wall_ns, 1)
    }
}

fn occupancy(busy_ns: u64, wall_ns: u64, lanes: u64) -> f64 {
    if wall_ns == 0 || lanes == 0 {
        return 0.0;
    }
    (busy_ns as f64 / (wall_ns * lanes) as f64).min(1.0)
}

/// One pipelined save, handed over from the engine after the data chunks
/// are built.
pub(crate) struct PipelineJob<'a> {
    pub version: u64,
    pub data_chunks: Vec<Vec<u8>>,
    /// Keep owned copies of every chunk for the remote flush instead of
    /// moving them into the store.
    pub keep_chunks: bool,
    pub code: &'a ErasureCode,
    pub placement: &'a Placement,
    pub reduction: &'a ReductionPlan,
    pub threads: usize,
    pub buffer: usize,
    pub depth: usize,
    pub recorder: &'a Recorder,
    pub trace: Option<&'a TraceHandles>,
    pub gate: Option<SlotGate>,
    /// Chaos fail point: the worker picking up global task `n` panics.
    pub fail_encode_task: Option<u64>,
}

/// `(data chunks, parity chunks)` handed back when the caller asked to
/// keep them (remote flush).
pub(crate) type KeptChunks = (Vec<Vec<u8>>, Vec<Vec<u8>>);

/// What [`run`] produced, beyond the cluster-side effects.
pub(crate) struct PipelineOutcome {
    pub encoded_bytes: u64,
    pub stats: PipelineStats,
    /// First/last instants of encode-stage activity, for the engine's
    /// `save.encode` summary span.
    pub encode_begin_ns: u64,
    pub encode_end_ns: u64,
    /// First/last instants of transfer-stage activity, for `save.place`.
    pub place_begin_ns: u64,
    pub place_end_ns: u64,
    /// `(data, parity)` chunks, present when `keep_chunks` was set.
    pub kept: Option<KeptChunks>,
}

/// One affected data column of a pipelined delta save.
pub(crate) struct DeltaColumn {
    /// True data-column index (what the code's encode matrix sees).
    pub col: usize,
    /// The patched (new) chunk, to be stored on the column's node.
    pub chunk: Vec<u8>,
    /// `old ⊕ new`, zero outside the dirty worker regions — what gets
    /// encoded; its parity is XORed onto the old parity (GF(2)
    /// linearity).
    pub delta: Vec<u8>,
}

/// One pipelined delta save: only the affected columns stream through
/// the encode → reduce → transfer rings, and the parity chunks are
/// patched rather than rebuilt.
pub(crate) struct DeltaJob<'a> {
    pub version: u64,
    pub cols: Vec<DeltaColumn>,
    /// The verified current parity chunks, patched in place.
    pub parity: Vec<Vec<u8>>,
    pub code: &'a ErasureCode,
    pub placement: &'a Placement,
    pub threads: usize,
    pub buffer: usize,
    pub depth: usize,
    pub recorder: &'a Recorder,
    pub trace: Option<&'a TraceHandles>,
    pub gate: Option<SlotGate>,
    pub fail_encode_task: Option<u64>,
}

/// Work items of the encode stage. Seeded in global order round-robin
/// across the per-worker deques; a task's *sequence number* (its global
/// order index) travels with it so deferred trace spans can be re-emitted
/// in an execution-independent order.
enum Task {
    /// Checksum piece `piece` of data chunk `col`.
    DataCrc { col: usize, piece: usize, chunk: Arc<Vec<u8>> },
    /// Encode the column contribution of data chunk `col` to stripe
    /// `stripe`.
    Contrib { stripe: usize, col: usize, chunk: Arc<Vec<u8>> },
}

/// A finished column contribution travelling encode → reduce.
struct Contribution {
    stripe: usize,
    buf: Vec<u8>,
}

/// A deferred encode-stage span, recorded privately by a worker and
/// re-emitted by the driver in `seq` order on the shared `encode` track:
/// `(seq, name, detail, begin_ns, end_ns)`.
type SpanRec = (u64, &'static str, String, u64, u64);

/// Messages arriving at the transfer stage (the driver).
enum DriverMsg {
    /// CRC of one piece of a data chunk.
    DataCrc { col: usize, piece: usize, crc: u32 },
    /// A fully reduced stripe: the flat accumulator plus the CRC of each
    /// `(parity, sub-packet)` row range, and the reduce-stage span.
    Stripe { stripe: usize, acc: Vec<u8>, crcs: Vec<u32>, begin_ns: u64, end_ns: u64 },
}

/// Bounded pool of reusable contribution buffers (encode → reduce).
///
/// `acquire` blocks while the pool is empty — that is the pipeline's
/// backpressure — and returns `None` once cancelled so blocked workers
/// unwind cleanly on a failed save.
struct Ring {
    state: Mutex<(Vec<Vec<u8>>, bool)>,
    available: Condvar,
    waits: AtomicU64,
}

impl Ring {
    fn new(depth: usize, len: usize) -> Self {
        let bufs = (0..depth).map(|_| vec![0u8; len]).collect();
        Self {
            state: Mutex::new((bufs, false)),
            available: Condvar::new(),
            waits: AtomicU64::new(0),
        }
    }

    fn acquire(&self) -> Option<Vec<u8>> {
        let mut state = self.state.lock().expect("ring lock");
        let mut waited = false;
        loop {
            if state.1 {
                return None;
            }
            if let Some(buf) = state.0.pop() {
                if waited {
                    self.waits.fetch_add(1, Ordering::Relaxed);
                }
                return Some(buf);
            }
            waited = true;
            state = self.available.wait(state).expect("ring lock");
        }
    }

    fn release(&self, buf: Vec<u8>) {
        self.state.lock().expect("ring lock").0.push(buf);
        self.available.notify_one();
    }

    fn cancel(&self) {
        self.state.lock().expect("ring lock").1 = true;
        self.available.notify_all();
    }
}

/// The stripe admission window: at most `depth` stripes may be open
/// (admitted but not yet retired by the driver) at once, bounding the
/// accumulators alive between encode and transfer.
struct Window {
    state: Mutex<(u64, bool)>,
    moved: Condvar,
    depth: u64,
    waits: AtomicU64,
}

impl Window {
    fn new(depth: usize) -> Self {
        Self {
            state: Mutex::new((0, false)),
            moved: Condvar::new(),
            depth: depth as u64,
            waits: AtomicU64::new(0),
        }
    }

    /// Blocks until `stripe` fits in the window; `false` means the save
    /// was cancelled.
    fn admit(&self, stripe: usize) -> bool {
        let mut state = self.state.lock().expect("window lock");
        let mut waited = false;
        loop {
            if state.1 {
                return false;
            }
            if (stripe as u64) < state.0 + self.depth {
                if waited {
                    self.waits.fetch_add(1, Ordering::Relaxed);
                }
                return true;
            }
            waited = true;
            state = self.moved.wait(state).expect("window lock");
        }
    }

    fn retire(&self) {
        self.state.lock().expect("window lock").0 += 1;
        self.moved.notify_all();
    }

    fn cancel(&self) {
        self.state.lock().expect("window lock").1 = true;
        self.moved.notify_all();
    }
}

/// Stripe geometry: how a chunk of `w · ps_total` bytes splits into
/// admission-window stripes.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    k: usize,
    m: usize,
    w: usize,
    chunk_len: usize,
    /// Packet-dimension length: `chunk_len / w` bytes per sub-packet.
    ps_total: usize,
    /// Rows of a full stripe (multiple of 8, so every stripe region
    /// stays coding-aligned).
    rows: usize,
    stripes: usize,
    /// Data-chunk CRC piece length in bytes.
    crc_piece: usize,
    crc_pieces: usize,
}

impl Geometry {
    fn new(k: usize, m: usize, w: usize, chunk_len: usize, buffer: usize) -> Self {
        let ps_total = chunk_len / w;
        // Aim for `buffer` bytes of chunk per encode task, rounded to the
        // 8-row alignment the bit-matrix schedules need. `ps_total` is
        // itself a positive multiple of 8 (packet sizes are multiples of
        // w·8), so the clamp below always lands on a legal stripe.
        let target = (buffer / w).max(8);
        let rows = ((target / 8) * 8).clamp(8, ps_total.max(8)).min(ps_total);
        let stripes = ps_total.div_ceil(rows);
        // CRC pieces mirror the stripe budget so checksum work pipelines
        // at the same grain; derived from sizes only, never from the
        // thread count, to keep piece CRCs deterministic.
        let crc_piece = rows * w;
        let crc_pieces = chunk_len.div_ceil(crc_piece);
        Self { k, m, w, chunk_len, ps_total, rows, stripes, crc_piece, crc_pieces }
    }

    /// `[lo, hi)` row range of stripe `b` within the packet dimension.
    fn rows_of(&self, stripe: usize) -> (usize, usize) {
        let lo = stripe * self.rows;
        (lo, (lo + self.rows).min(self.ps_total))
    }
}

/// Deterministically ordered trace tracks for the executor, created
/// up-front by the driver so track identity never depends on thread
/// scheduling.
struct PipelineTracks {
    transfer: TrackId,
    reduce: TrackId,
    /// One shared track for all deferred encode spans, whatever the
    /// thread count — traces stay byte-identical across 1..n workers.
    encode: TrackId,
}

fn make_tracks(trace: Option<&TraceHandles>) -> Option<PipelineTracks> {
    trace.map(|t| PipelineTracks {
        transfer: t.tracer.track(DRIVER_PID, "driver", "pipeline"),
        reduce: t.tracer.track(CODING_PID, "coding", "reduce"),
        encode: t.tracer.track(CODING_PID, "coding", "encode"),
    })
}

/// Runs one pipelined save: encodes, reduces and stores every chunk of
/// `version`, leaving the cluster byte-identical to the sequential path.
///
/// Headers, manifests and version rotation stay with the engine — this
/// function owns exactly the chunk dataflow.
pub(crate) fn run(
    job: PipelineJob<'_>,
    cluster: &mut impl DataPlane,
) -> Result<PipelineOutcome, EcCheckError> {
    let PipelineJob {
        version,
        data_chunks,
        keep_chunks,
        code,
        placement,
        reduction,
        threads,
        buffer,
        depth,
        recorder,
        trace,
        mut gate,
        fail_encode_task,
    } = job;
    let params = code.params();
    let geo =
        Geometry::new(params.k(), params.m(), params.w() as usize, data_chunks[0].len(), buffer);
    let threads = threads.max(1);
    let depth = depth.max(2);
    let tracks = make_tracks(trace);

    let wall_begin = recorder.now_ns();
    let data: Vec<Arc<Vec<u8>>> = data_chunks.into_iter().map(Arc::new).collect();

    // Seed the work-stealing deques in global order, round-robin: data
    // CRC pieces first (stores can start as soon as a chunk's pieces are
    // stitched), then contributions stripe-major so stripes complete
    // roughly in admission order. Deques are FIFO and steals take the
    // oldest tasks, so execution tracks this order whatever the mix of
    // pops and steals.
    let locals: Vec<Worker<(u64, Task)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let mut next = 0u64;
    for (col, chunk) in data.iter().enumerate() {
        for piece in 0..geo.crc_pieces {
            locals[(next as usize) % threads]
                .push((next, Task::DataCrc { col, piece, chunk: Arc::clone(chunk) }));
            next += 1;
        }
    }
    for stripe in 0..geo.stripes {
        for (col, chunk) in data.iter().enumerate() {
            locals[(next as usize) % threads]
                .push((next, Task::Contrib { stripe, col, chunk: Arc::clone(chunk) }));
            next += 1;
        }
    }
    let contrib_len = geo.m * geo.w * geo.rows;
    let mut driver = Driver {
        version,
        geo,
        delta: false,
        keep_chunks,
        placement,
        col_ids: (0..geo.k).collect(),
        col_nodes: placement.data_nodes().to_vec(),
        recorder,
        trace,
        tracks: tracks.as_ref(),
        gate: gate.as_mut(),
        data: data.into_iter().map(Some).collect(),
        data_placed: 0,
        data_crcs: vec![vec![None; geo.crc_pieces]; geo.k],
        parity: (0..geo.m).map(|_| vec![0u8; geo.chunk_len]).collect(),
        parity_crcs: vec![vec![vec![0u32; geo.stripes]; geo.w]; geo.m],
        stripes_done: 0,
        reduce_spans: Vec::with_capacity(geo.stripes),
        kept_data: Vec::new(),
        busy_ns: 0,
        place_begin_ns: u64::MAX,
        place_end_ns: 0,
        slot_wait_ns: 0,
        slot_admissions: 0,
        failed: None,
    };

    let stages = execute_stages(
        &geo,
        code,
        locals,
        threads,
        depth,
        recorder,
        tracks.is_some(),
        fail_encode_task,
        true,
        &mut driver,
        cluster,
    );
    if stages.panicked && driver.failed.is_none() {
        driver.failed = Some(EcCheckError::StageFailed {
            detail: "an encode worker panicked mid-save".to_string(),
        });
    }
    driver.finish(cluster);
    let mut encode_spans = stages.encode_spans;

    // Deferred encode and reduce spans: re-emitted in task/stripe order
    // so the trace is identical no matter which worker ran (or stole) a
    // task or how stripes raced through the reducer.
    if let (Some(t), Some(tr)) = (trace, tracks.as_ref()) {
        encode_spans.sort_unstable_by_key(|&(seq, ..)| seq);
        for (_, name, detail, begin_ns, end_ns) in encode_spans {
            t.tracer.begin_at(tr.encode, name, detail, begin_ns);
            t.tracer.end_at(tr.encode, end_ns);
        }
        // Stripe order, not completion order: completions race.
        driver.reduce_spans.sort_unstable_by_key(|&(stripe, _, _)| stripe);
        for (stripe, begin_ns, end_ns) in &driver.reduce_spans {
            t.tracer.begin_at(tr.reduce, "reduce.stripe", format!("stripe={stripe}"), *begin_ns);
            t.tracer.end_at(tr.reduce, *end_ns);
        }
    }

    if let Some(err) = driver.failed.take() {
        return Err(err);
    }

    let wall_end = recorder.now_ns();
    let encode_begin = stages.encode_begin_ns;
    let encode_end = stages.encode_end_ns;
    let stats = PipelineStats {
        stripes: geo.stripes,
        stripe_rows: geo.rows,
        buffer_bytes: contrib_len,
        encode_workers: threads,
        encode_tasks: (geo.stripes * geo.k + geo.k * geo.crc_pieces) as u64,
        encode_busy_ns: stages.encode_busy_ns,
        reduce_busy_ns: stages.reduce_busy_ns,
        transfer_busy_ns: driver.busy_ns,
        wall_ns: wall_end.saturating_sub(wall_begin),
        ring_waits: stages.ring_waits,
        window_waits: stages.window_waits,
        encode_steals: stages.encode_steals,
        slot_wait_ns: driver.slot_wait_ns,
        slot_admissions: driver.slot_admissions,
        local_reduce_targets: reduction.local_target_hits() as u64,
    };

    // Deterministic work counters; scheduling accidents stay in `stats`.
    recorder.counter("ecc.pipeline.stripes").add(geo.stripes as u64);
    recorder.counter("ecc.pipeline.encode_tasks").add(stats.encode_tasks);
    recorder
        .counter("ecc.pipeline.crc_pieces")
        .add((geo.k * geo.crc_pieces + geo.stripes * geo.m * geo.w) as u64);
    recorder.counter("ecc.pipeline.slot_wait_ns").add(driver.slot_wait_ns);
    recorder.counter("ecc.pipeline.slot_admissions").add(driver.slot_admissions);
    recorder.counter("ecc.pipeline.local_reduce_targets").add(stats.local_reduce_targets);
    let encode_begin = if encode_begin == u64::MAX { wall_begin } else { encode_begin };
    let encode_end = encode_end.max(encode_begin);
    let place_begin =
        if driver.place_begin_ns == u64::MAX { wall_end } else { driver.place_begin_ns };
    let place_end = driver.place_end_ns.max(place_begin);
    recorder.record("ecc.save.encode_ns", encode_end - encode_begin);
    recorder.record("ecc.save.place_ns", place_end - place_begin);
    recorder.record("ecc.save.pipeline_ns", stats.wall_ns);
    // The column path records only per-column metrics inside the erasure
    // crate; keep the aggregate `erasure.encode.*` totals complete
    // however an encode executes (same contract as the pooled path).
    recorder.counter("erasure.encode.calls").incr();
    recorder.counter("erasure.encode.bytes").add((geo.k * geo.chunk_len) as u64);
    recorder.counter("erasure.encode.parity_bytes").add((geo.m * geo.chunk_len) as u64);
    recorder.record("erasure.encode.ns", encode_end - encode_begin);

    let kept = if keep_chunks {
        let data = driver
            .kept_data
            .drain(..)
            .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone()))
            .collect();
        Some((data, std::mem::take(&mut driver.parity)))
    } else {
        None
    };
    Ok(PipelineOutcome {
        encoded_bytes: (geo.m * geo.chunk_len) as u64,
        stats,
        encode_begin_ns: encode_begin,
        encode_end_ns: encode_end,
        place_begin_ns: place_begin,
        place_end_ns: place_end,
        kept,
    })
}

/// Runs one pipelined delta save ([`crate::EcCheck::save_delta`]'s
/// executor half): the affected columns' deltas stream through the same
/// encode → reduce → transfer rings as a full save, the old parity is
/// XOR-patched stripe by stripe, and *every* store — patched data
/// columns ascending, then parity — is deferred until the executor
/// drained cleanly. An in-place patch has no fresh version to abandon
/// on failure, so deferring the transfer commit is what keeps a
/// mid-delta crash from tearing the live checkpoint.
pub(crate) fn run_delta(
    job: DeltaJob<'_>,
    cluster: &mut impl DataPlane,
) -> Result<PipelineOutcome, EcCheckError> {
    let DeltaJob {
        version,
        cols,
        parity,
        code,
        placement,
        threads,
        buffer,
        depth,
        recorder,
        trace,
        mut gate,
        fail_encode_task,
    } = job;
    debug_assert!(!cols.is_empty(), "the engine short-circuits empty deltas");
    let params = code.params();
    let chunk_len = parity[0].len();
    // Dense-column geometry: the affected columns stand in for `k`, so
    // the reducer waits for exactly one contribution per affected
    // column and the stats reflect the work actually done.
    let geo = Geometry::new(cols.len(), params.m(), params.w() as usize, chunk_len, buffer);
    let threads = threads.max(1);
    let depth = depth.max(2);
    let tracks = make_tracks(trace);

    let wall_begin = recorder.now_ns();
    let col_ids: Vec<usize> = cols.iter().map(|c| c.col).collect();
    let col_nodes: Vec<usize> = col_ids.iter().map(|&c| placement.data_nodes()[c]).collect();
    let mut new_chunks = Vec::with_capacity(col_ids.len());
    let mut deltas = Vec::with_capacity(col_ids.len());
    for c in cols {
        new_chunks.push(Arc::new(c.chunk));
        deltas.push((c.col, Arc::new(c.delta)));
    }

    // Seed exactly like a full save, with the dense column set standing
    // in for `k`: CRC pieces cover the *patched* chunks (what gets
    // stored), contributions encode the *delta* chunks (what the parity
    // absorbs). `DataCrc.col` is the dense index (a driver array
    // index); `Contrib.col` is the true column (what the encode matrix
    // needs).
    let locals: Vec<Worker<(u64, Task)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let mut next = 0u64;
    for (dense, chunk) in new_chunks.iter().enumerate() {
        for piece in 0..geo.crc_pieces {
            locals[(next as usize) % threads]
                .push((next, Task::DataCrc { col: dense, piece, chunk: Arc::clone(chunk) }));
            next += 1;
        }
    }
    for stripe in 0..geo.stripes {
        for (col, delta) in &deltas {
            locals[(next as usize) % threads]
                .push((next, Task::Contrib { stripe, col: *col, chunk: Arc::clone(delta) }));
            next += 1;
        }
    }

    let contrib_len = geo.m * geo.w * geo.rows;
    let mut driver = Driver {
        version,
        geo,
        delta: true,
        keep_chunks: false,
        placement,
        col_ids,
        col_nodes,
        recorder,
        trace,
        tracks: tracks.as_ref(),
        gate: gate.as_mut(),
        data: new_chunks.into_iter().map(Some).collect(),
        data_placed: 0,
        data_crcs: vec![vec![None; geo.crc_pieces]; geo.k],
        parity,
        parity_crcs: Vec::new(),
        stripes_done: 0,
        reduce_spans: Vec::with_capacity(geo.stripes),
        kept_data: Vec::new(),
        busy_ns: 0,
        place_begin_ns: u64::MAX,
        place_end_ns: 0,
        slot_wait_ns: 0,
        slot_admissions: 0,
        failed: None,
    };

    let stages = execute_stages(
        &geo,
        code,
        locals,
        threads,
        depth,
        recorder,
        tracks.is_some(),
        fail_encode_task,
        false,
        &mut driver,
        cluster,
    );
    if stages.panicked && driver.failed.is_none() {
        driver.failed = Some(EcCheckError::StageFailed {
            detail: "an encode worker panicked mid-delta".to_string(),
        });
    }
    driver.finish(cluster);
    let mut encode_spans = stages.encode_spans;

    if let (Some(t), Some(tr)) = (trace, tracks.as_ref()) {
        encode_spans.sort_unstable_by_key(|&(seq, ..)| seq);
        for (_, name, detail, begin_ns, end_ns) in encode_spans {
            t.tracer.begin_at(tr.encode, name, detail, begin_ns);
            t.tracer.end_at(tr.encode, end_ns);
        }
        driver.reduce_spans.sort_unstable_by_key(|&(stripe, _, _)| stripe);
        for (stripe, begin_ns, end_ns) in &driver.reduce_spans {
            t.tracer.begin_at(tr.reduce, "reduce.stripe", format!("stripe={stripe}"), *begin_ns);
            t.tracer.end_at(tr.reduce, *end_ns);
        }
    }

    if let Some(err) = driver.failed.take() {
        return Err(err);
    }

    let wall_end = recorder.now_ns();
    let stats = PipelineStats {
        stripes: geo.stripes,
        stripe_rows: geo.rows,
        buffer_bytes: contrib_len,
        encode_workers: threads,
        encode_tasks: (geo.stripes * geo.k + geo.k * geo.crc_pieces) as u64,
        encode_busy_ns: stages.encode_busy_ns,
        reduce_busy_ns: stages.reduce_busy_ns,
        transfer_busy_ns: driver.busy_ns,
        wall_ns: wall_end.saturating_sub(wall_begin),
        ring_waits: stages.ring_waits,
        window_waits: stages.window_waits,
        encode_steals: stages.encode_steals,
        slot_wait_ns: driver.slot_wait_ns,
        slot_admissions: driver.slot_admissions,
        local_reduce_targets: 0,
    };
    recorder.counter("ecc.pipeline.stripes").add(geo.stripes as u64);
    recorder.counter("ecc.pipeline.encode_tasks").add(stats.encode_tasks);
    // No parity piece CRCs in delta mode — only the data pieces count.
    recorder.counter("ecc.pipeline.crc_pieces").add((geo.k * geo.crc_pieces) as u64);
    let encode_begin =
        if stages.encode_begin_ns == u64::MAX { wall_begin } else { stages.encode_begin_ns };
    let encode_end = stages.encode_end_ns.max(encode_begin);
    let place_begin =
        if driver.place_begin_ns == u64::MAX { wall_end } else { driver.place_begin_ns };
    let place_end = driver.place_end_ns.max(place_begin);
    recorder.record("ecc.delta.encode_ns", encode_end - encode_begin);
    recorder.record("ecc.delta.place_ns", place_end - place_begin);
    recorder.record("ecc.delta.pipeline_ns", stats.wall_ns);

    Ok(PipelineOutcome {
        encoded_bytes: (geo.k * geo.m * geo.chunk_len) as u64,
        stats,
        encode_begin_ns: encode_begin,
        encode_end_ns: encode_end,
        place_begin_ns: place_begin,
        place_end_ns: place_end,
        kept: None,
    })
}

/// Nondeterministic residue of one executor run, handed back from
/// [`execute_stages`] to whichever mode drove it.
struct StageOutcome {
    reduce_busy_ns: u64,
    encode_spans: Vec<SpanRec>,
    encode_steals: u64,
    ring_waits: u64,
    window_waits: u64,
    /// `u64::MAX` when no encode task ever ran.
    encode_begin_ns: u64,
    encode_end_ns: u64,
    encode_busy_ns: u64,
    panicked: bool,
}

/// Drives the three stages over an already-seeded task list until every
/// deque drains (or a failure cancels the run). Shared verbatim by full
/// saves ([`run`]) and delta saves ([`run_delta`]) — the driver's mode
/// flag decides placement semantics, not the machinery.
#[allow(clippy::too_many_arguments)]
fn execute_stages(
    geo: &Geometry,
    code: &ErasureCode,
    locals: Vec<Worker<(u64, Task)>>,
    threads: usize,
    depth: usize,
    recorder: &Recorder,
    record_spans: bool,
    fail_encode_task: Option<u64>,
    piece_crcs: bool,
    driver: &mut Driver<'_>,
    cluster: &mut impl DataPlane,
) -> StageOutcome {
    let stealers: Vec<Stealer<(u64, Task)>> = locals.iter().map(Worker::stealer).collect();
    let contrib_len = geo.m * geo.w * geo.rows;
    let ring = Ring::new(threads + 2, contrib_len);
    let window = Window::new(depth);
    let encode_begin = AtomicU64::new(u64::MAX);
    let encode_end = AtomicU64::new(0);
    let encode_busy = AtomicU64::new(0);
    let fail_counter = AtomicU64::new(0);
    let worker_panicked = AtomicBool::new(false);

    let (contrib_tx, contrib_rx) = channel::<Contribution>();
    let (driver_tx, driver_rx) = channel::<DriverMsg>();
    let (acc_tx, acc_rx) = channel::<Vec<u8>>();

    // Accumulator pool: one per window slot, so the reducer can always
    // take a buffer for a newly admitted stripe without allocating.
    for _ in 0..depth {
        acc_tx.send(vec![0u8; contrib_len]).expect("receiver alive");
    }

    let (reduce_busy_ns, encode_spans, encode_steals) = std::thread::scope(|scope| {
        let reducer = {
            let driver_tx = driver_tx.clone();
            let ring = &ring;
            scope.spawn(move || {
                reduce_stage(geo, contrib_rx, acc_rx, driver_tx, ring, recorder, piece_crcs)
            })
        };
        let handles: Vec<_> = locals
            .into_iter()
            .enumerate()
            .map(|(worker, local)| {
                let contrib_tx = contrib_tx.clone();
                let driver_tx = driver_tx.clone();
                let (ring, window) = (&ring, &window);
                let (stealers, fail_counter, worker_panicked) =
                    (&stealers, &fail_counter, &worker_panicked);
                let (encode_begin, encode_end, encode_busy) =
                    (&encode_begin, &encode_end, &encode_busy);
                scope.spawn(move || {
                    // A panicking worker (the chaos fail point, or a real
                    // bug) must not wedge the pipeline: catch the unwind,
                    // cancel the ring and the window so blocked peers
                    // drain out, and let the driver fail the save.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        encode_stage(
                            geo,
                            code,
                            worker,
                            local,
                            stealers,
                            contrib_tx,
                            driver_tx,
                            ring,
                            window,
                            recorder,
                            record_spans,
                            fail_encode_task,
                            fail_counter,
                            encode_begin,
                            encode_end,
                            encode_busy,
                        )
                    }));
                    result.unwrap_or_else(|_| {
                        worker_panicked.store(true, Ordering::SeqCst);
                        ring.cancel();
                        window.cancel();
                        (Vec::new(), 0)
                    })
                })
            })
            .collect();
        drop(contrib_tx);
        drop(driver_tx);

        // Stage 3 runs here on the scope's own thread: receive until
        // every worker and the reducer have hung up.
        while let Ok(msg) = driver_rx.recv() {
            driver.handle(msg, cluster, &acc_tx, &window);
            if driver.failed.is_some() {
                // Unblock any worker parked on the ring or the window;
                // stores are skipped from here on, but the channels keep
                // draining so every stage exits cleanly.
                ring.cancel();
                window.cancel();
            }
        }
        let mut spans = Vec::new();
        let mut steals = 0u64;
        for handle in handles {
            let (recs, stolen) = handle.join().expect("encode worker joined after catch_unwind");
            spans.extend(recs);
            steals += stolen;
        }
        (reducer.join().expect("reduce stage panicked"), spans, steals)
    });
    StageOutcome {
        reduce_busy_ns,
        encode_spans,
        encode_steals,
        ring_waits: ring.waits.load(Ordering::Relaxed),
        window_waits: window.waits.load(Ordering::Relaxed),
        encode_begin_ns: encode_begin.load(Ordering::Relaxed),
        encode_end_ns: encode_end.load(Ordering::Relaxed),
        encode_busy_ns: encode_busy.load(Ordering::Relaxed),
        panicked: worker_panicked.load(Ordering::SeqCst),
    }
}

/// Stage 1 worker: drains its own deque, then steals, until every task
/// is done (or the save is cancelled). Returns its deferred span records
/// and how many of its tasks were stolen from other workers.
#[allow(clippy::too_many_arguments)]
fn encode_stage(
    geo: &Geometry,
    code: &ErasureCode,
    worker: usize,
    local: Worker<(u64, Task)>,
    stealers: &[Stealer<(u64, Task)>],
    contrib_tx: Sender<Contribution>,
    driver_tx: Sender<DriverMsg>,
    ring: &Ring,
    window: &Window,
    recorder: &Recorder,
    record_spans: bool,
    fail_at: Option<u64>,
    fail_counter: &AtomicU64,
    encode_begin: &AtomicU64,
    encode_end: &AtomicU64,
    encode_busy: &AtomicU64,
) -> (Vec<SpanRec>, u64) {
    let mut spans = Vec::new();
    let mut stolen = 0u64;
    while let Some((seq, task)) = next_task(worker, &local, stealers, &mut stolen) {
        if let Some(n) = fail_at {
            // The fail point counts task *pick-ups*, so the panic lands
            // right after a pop or steal — mid-steal, before any window
            // or ring state is touched for this task.
            if fail_counter.fetch_add(1, Ordering::SeqCst) == n {
                panic!("injected fail point: encode worker dies at task pick-up {n}");
            }
        }
        let begin = recorder.now_ns();
        encode_begin.fetch_min(begin, Ordering::Relaxed);
        match task {
            Task::DataCrc { col, piece, chunk } => {
                let span_begin = recorder.now_ns();
                let lo = piece * geo.crc_piece;
                let hi = (lo + geo.crc_piece).min(geo.chunk_len);
                let crc = crc32(&chunk[lo..hi]);
                if record_spans {
                    spans.push((
                        seq,
                        "encode.crc",
                        format!("chunk={col} piece={piece}"),
                        span_begin,
                        recorder.now_ns(),
                    ));
                }
                if driver_tx.send(DriverMsg::DataCrc { col, piece, crc }).is_err() {
                    break;
                }
            }
            Task::Contrib { stripe, col, chunk } => {
                if !window.admit(stripe) {
                    break;
                }
                let Some(mut buf) = ring.acquire() else { break };
                let span_begin = recorder.now_ns();
                let (lo, hi) = geo.rows_of(stripe);
                let rows = hi - lo;
                code.encode_column_stripe_into(
                    col,
                    &chunk,
                    lo,
                    rows,
                    &mut buf[..geo.m * geo.w * rows],
                )
                .expect("stripe regions are aligned by construction");
                if record_spans {
                    spans.push((
                        seq,
                        "encode.stripe",
                        format!("stripe={stripe} chunk={col}"),
                        span_begin,
                        recorder.now_ns(),
                    ));
                }
                if contrib_tx.send(Contribution { stripe, buf }).is_err() {
                    break;
                }
            }
        }
        let end = recorder.now_ns();
        encode_end.fetch_max(end, Ordering::Relaxed);
        encode_busy.fetch_add(end.saturating_sub(begin), Ordering::Relaxed);
    }
    (spans, stolen)
}

/// Next task for encode worker `worker`: its own deque first (FIFO, so
/// the oldest seeded task), then batch-steals the oldest half of another
/// worker's backlog. `None` only once every deque is empty; a task still
/// in flight is owned by the worker executing it, so exiting on
/// all-empty never strands work.
fn next_task(
    worker: usize,
    local: &Worker<(u64, Task)>,
    stealers: &[Stealer<(u64, Task)>],
    stolen: &mut u64,
) -> Option<(u64, Task)> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        let mut retry = false;
        for (si, stealer) in stealers.iter().enumerate() {
            if si == worker {
                continue;
            }
            match stealer.steal_batch_and_pop(local) {
                Steal::Success(task) => {
                    *stolen += 1;
                    return Some(task);
                }
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Stage 2: folds the column contributions of each stripe (one per
/// dense column, `geo.k` of them) into one accumulator, releases
/// contribution buffers back to the ring, and ships finished stripes to
/// the driver — with per-piece parity CRCs when `piece_crcs` is set
/// (full saves stitch them; delta saves can't, see
/// [`Driver::place_parity`]). Returns its busy time in ns.
fn reduce_stage(
    geo: &Geometry,
    contrib_rx: Receiver<Contribution>,
    acc_rx: Receiver<Vec<u8>>,
    driver_tx: Sender<DriverMsg>,
    ring: &Ring,
    recorder: &Recorder,
    piece_crcs: bool,
) -> u64 {
    // Open stripes: (accumulator, contributions still missing, begin ts).
    let mut open: Vec<Option<(Vec<u8>, usize, u64)>> = (0..geo.stripes).map(|_| None).collect();
    let mut busy = 0u64;
    while let Ok(Contribution { stripe, mut buf }) = contrib_rx.recv() {
        let begin = recorder.now_ns();
        let (lo, hi) = geo.rows_of(stripe);
        let used = geo.m * geo.w * (hi - lo);
        let slot = &mut open[stripe];
        match slot {
            None => {
                // First contribution: swap the buffer into an accumulator
                // slot and hand the pool buffer back to the ring — no
                // copying, and the two pools stay balanced.
                let mut acc = acc_rx.recv().expect("driver returns accumulators");
                std::mem::swap(&mut acc, &mut buf);
                ring.release(buf);
                *slot = Some((acc, geo.k - 1, begin));
            }
            Some((acc, remaining, _)) => {
                region::xor_into(&mut acc[..used], &buf[..used]);
                ring.release(buf);
                *remaining -= 1;
            }
        }
        if let Some((_, 0, _)) = slot {
            let (acc, _, begin_ns) = slot.take().expect("slot is open");
            let rows = hi - lo;
            let crcs: Vec<u32> = if piece_crcs {
                (0..geo.m * geo.w).map(|idx| crc32(&acc[idx * rows..(idx + 1) * rows])).collect()
            } else {
                Vec::new()
            };
            let end_ns = recorder.now_ns();
            busy += end_ns.saturating_sub(begin);
            if driver_tx.send(DriverMsg::Stripe { stripe, acc, crcs, begin_ns, end_ns }).is_err() {
                break;
            }
            continue;
        }
        busy += recorder.now_ns().saturating_sub(begin);
    }
    busy
}

/// Stage 3 state: lives on the driver thread, issues every store in
/// canonical order.
struct Driver<'a> {
    version: u64,
    geo: Geometry,
    /// Delta mode: `data` holds *patched* chunks for the affected
    /// columns only (`geo.k` is the affected-column count), `parity`
    /// starts from the verified old parity and stripes are XORed in
    /// (GF(2) linearity), and every store is deferred to [`finish`] —
    /// an in-place patch has no version rotation to shield a torn
    /// update, so nothing lands until the whole delta encoded cleanly.
    delta: bool,
    keep_chunks: bool,
    placement: &'a Placement,
    /// Dense column → true data-column index (identity on full saves).
    col_ids: Vec<usize>,
    /// Dense column → owning node (the placement's data nodes on full
    /// saves; the affected columns' nodes on deltas).
    col_nodes: Vec<usize>,
    recorder: &'a Recorder,
    trace: Option<&'a TraceHandles>,
    tracks: Option<&'a PipelineTracks>,
    gate: Option<&'a mut SlotGate>,
    /// Data chunks, surrendered (moved into the store when possible) as
    /// they are placed.
    data: Vec<Option<Arc<Vec<u8>>>>,
    /// Data chunks stored so far; chunk `j` goes out only when chunks
    /// `0..j` are out and all its CRC pieces arrived, so store order
    /// matches the sequential oracle exactly.
    data_placed: usize,
    data_crcs: Vec<Vec<Option<u32>>>,
    parity: Vec<Vec<u8>>,
    parity_crcs: Vec<Vec<Vec<u32>>>,
    stripes_done: usize,
    reduce_spans: Vec<(usize, u64, u64)>,
    kept_data: Vec<Arc<Vec<u8>>>,
    busy_ns: u64,
    place_begin_ns: u64,
    place_end_ns: u64,
    slot_wait_ns: u64,
    slot_admissions: u64,
    failed: Option<EcCheckError>,
}

impl Driver<'_> {
    fn handle(
        &mut self,
        msg: DriverMsg,
        cluster: &mut impl DataPlane,
        acc_tx: &Sender<Vec<u8>>,
        window: &Window,
    ) {
        let begin = self.recorder.now_ns();
        match msg {
            DriverMsg::DataCrc { col, piece, crc } => {
                self.data_crcs[col][piece] = Some(crc);
                // Delta stores are deferred wholesale to `finish`.
                while !self.delta
                    && self.data_placed < self.geo.k
                    && self.data_ready(self.data_placed)
                {
                    let next = self.data_placed;
                    self.place_data(next, cluster);
                    self.data_placed += 1;
                }
            }
            DriverMsg::Stripe { stripe, acc, crcs, begin_ns, end_ns } => {
                let (lo, hi) = self.geo.rows_of(stripe);
                let rows = hi - lo;
                if self.failed.is_none() {
                    for i in 0..self.geo.m {
                        for c in 0..self.geo.w {
                            let idx = i * self.geo.w + c;
                            let dst = &mut self.parity[i]
                                [c * self.geo.ps_total + lo..c * self.geo.ps_total + hi];
                            let src = &acc[idx * rows..(idx + 1) * rows];
                            if self.delta {
                                // parity' = parity ⊕ encode(delta).
                                region::xor_into(dst, src);
                            } else {
                                dst.copy_from_slice(src);
                                self.parity_crcs[i][c][stripe] = crcs[idx];
                            }
                        }
                    }
                }
                self.reduce_spans.push((stripe, begin_ns, end_ns));
                // Return the accumulator *before* retiring the stripe, so
                // a newly admitted stripe always finds a free buffer.
                let _ = acc_tx.send(acc);
                window.retire();
                self.stripes_done += 1;
            }
        }
        self.busy_ns += self.recorder.now_ns().saturating_sub(begin);
    }

    /// After every stage has hung up: store the parity chunks (all
    /// stripes are in by then) in index order. Delta mode also stores
    /// the patched data chunks here — ascending column, then parity —
    /// so an executor failure earlier leaves the live version untouched
    /// (torn-update safety) and both delta paths share one canonical
    /// store order.
    fn finish(&mut self, cluster: &mut impl DataPlane) {
        let begin = self.recorder.now_ns();
        if self.failed.is_none() {
            debug_assert_eq!(self.stripes_done, self.geo.stripes, "all stripes reduced");
            if self.delta {
                for col in 0..self.geo.k {
                    if self.failed.is_some() {
                        break;
                    }
                    debug_assert!(self.data_ready(col), "all CRC pieces arrived before hang-up");
                    self.place_data(col, cluster);
                    self.data_placed += 1;
                }
            } else {
                debug_assert_eq!(self.data_placed, self.geo.k, "all data chunks placed");
            }
            for i in 0..self.geo.m {
                if self.failed.is_some() {
                    break;
                }
                self.place_parity(i, cluster);
            }
        }
        self.busy_ns += self.recorder.now_ns().saturating_sub(begin);
    }

    fn data_ready(&self, col: usize) -> bool {
        self.data_crcs[col].iter().all(Option::is_some)
    }

    /// Stitches a chunk CRC out of its piece CRCs with `crc32_combine`.
    fn stitch(&self, pieces: impl Iterator<Item = (u32, u64)>) -> u32 {
        let mut acc = crc32(&[]);
        for (crc, len) in pieces {
            acc = crc32_combine(acc, crc, len);
        }
        acc
    }

    fn place_data(&mut self, col: usize, cluster: &mut impl DataPlane) {
        if self.failed.is_some() {
            return;
        }
        let crc = self.stitch(self.data_crcs[col].iter().enumerate().map(|(piece, crc)| {
            let lo = piece * self.geo.crc_piece;
            let hi = (lo + self.geo.crc_piece).min(self.geo.chunk_len);
            (crc.expect("placed only when ready"), (hi - lo) as u64)
        }));
        let arc = self.data[col].take().expect("each data chunk placed once");
        let bytes = if self.keep_chunks {
            self.kept_data.push(Arc::clone(&arc));
            (*arc).clone()
        } else {
            // A move when the encode stage is already done with this
            // chunk (its task-list `Arc` clones dropped), a copy — like
            // the sequential path's — otherwise.
            Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone())
        };
        let node = self.col_nodes[col];
        self.store(node, bytes, crc, &format!("data chunk {}", self.col_ids[col]), cluster);
    }

    fn place_parity(&mut self, i: usize, cluster: &mut impl DataPlane) {
        let geo = self.geo;
        let crc = if self.delta {
            // The parity bytes are old ⊕ encode(delta): the reducer's
            // piece CRCs cover only the delta contribution, and
            // `crc32_combine` cannot stitch across an XOR — take one
            // whole-buffer pass instead.
            crc32(&self.parity[i])
        } else {
            self.stitch((0..geo.w).flat_map(|c| (0..geo.stripes).map(move |b| (c, b))).map(
                |(c, b)| {
                    let (lo, hi) = geo.rows_of(b);
                    (self.parity_crcs[i][c][b], (hi - lo) as u64)
                },
            ))
        };
        let bytes = if self.keep_chunks {
            self.parity[i].clone()
        } else {
            std::mem::take(&mut self.parity[i])
        };
        let node = self.placement.parity_nodes()[i];
        self.store(node, bytes, crc, &format!("parity chunk {i}"), cluster);
    }

    /// One gated store: chunk blob plus its CRC frame, byte-identical to
    /// the sequential path's `checksum_frame` output.
    fn store(
        &mut self,
        node: usize,
        bytes: Vec<u8>,
        crc: u32,
        what: &str,
        cluster: &mut impl DataPlane,
    ) {
        debug_assert_eq!(crc32(&bytes), crc, "stitched CRC must match a one-shot pass");
        let len = bytes.len() as u64;
        let mut detail = what.to_string();
        if let Some(gate) = self.gate.as_deref_mut() {
            let admission = gate.admit(len);
            self.slot_wait_ns += admission.waited.as_nanos();
            self.slot_admissions += 1;
            detail = format!(
                "{what} slot=[{}..{}]ns wait={}ns",
                admission.start.as_nanos(),
                admission.end.as_nanos(),
                admission.waited.as_nanos()
            );
        }
        let span = self.tracks.map(|tr| {
            self.trace.expect("tracks imply trace").tracer.span(tr.transfer, "xfer.store", detail)
        });
        let begin = self.recorder.now_ns();
        self.place_begin_ns = self.place_begin_ns.min(begin);
        let result = cluster.put_local(node, &chunk_key(self.version), bytes).and_then(|()| {
            cluster.put_local(node, &chunk_crc_key(self.version), crc.to_le_bytes().to_vec())
        });
        self.place_end_ns = self.place_end_ns.max(self.recorder.now_ns());
        match result {
            // The `p2p.store` flow leaves from the executor's transfer
            // track (not the engine track, which stays quiet during the
            // run so the deferred `save.encode`/`save.place` summary
            // spans are never timestamp-clamped).
            Ok(()) => {
                if let (Some(tr), Some(t)) = (self.tracks, self.trace) {
                    let flow = t.tracer.flow_start(tr.transfer, "p2p.store");
                    let nt = t.node_track(node);
                    let recv = t.tracer.span(nt, "store.chunk", what);
                    t.tracer.flow_end(nt, flow, "p2p.store");
                    drop(recv);
                }
            }
            Err(err) => self.failed = Some(err.into()),
        }
        drop(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_checkpoint::checksum_frame;

    // `checksum_frame` is what the sequential oracle stores; keep the
    // equivalence pinned where the pipelined frame bytes are produced.
    #[test]
    fn le_bytes_equal_checksum_frame() {
        let data = b"pipelined frame bytes";
        assert_eq!(crc32(data).to_le_bytes().to_vec(), checksum_frame(data));
    }

    #[test]
    fn geometry_covers_every_row_exactly_once() {
        for (chunk_len, w, buffer) in
            [(256usize, 8usize, 64usize), (4096, 8, 4096), (768, 4, 100), (64, 8, 1 << 20)]
        {
            let geo = Geometry::new(2, 2, w, chunk_len, buffer);
            assert!(geo.rows.is_multiple_of(8), "rows {} must stay aligned", geo.rows);
            let mut covered = 0;
            for b in 0..geo.stripes {
                let (lo, hi) = geo.rows_of(b);
                assert_eq!(lo, covered, "stripes must tile the packet dimension");
                assert!(hi > lo);
                covered = hi;
            }
            assert_eq!(covered, geo.ps_total, "chunk_len={chunk_len} w={w} buffer={buffer}");
            // CRC pieces tile the full chunk the same way.
            let total: usize = (0..geo.crc_pieces)
                .map(|p| {
                    let lo = p * geo.crc_piece;
                    (lo + geo.crc_piece).min(geo.chunk_len) - lo
                })
                .sum();
            assert_eq!(total, geo.chunk_len);
        }
    }

    #[test]
    fn occupancy_is_bounded_and_zero_safe() {
        let stats = PipelineStats::default();
        assert_eq!(stats.encode_occupancy(), 0.0);
        let stats = PipelineStats {
            encode_workers: 2,
            encode_busy_ns: 150,
            reduce_busy_ns: 40,
            transfer_busy_ns: 900,
            wall_ns: 100,
            ..Default::default()
        };
        assert!((stats.encode_occupancy() - 0.75).abs() < 1e-9);
        assert!((stats.reduce_occupancy() - 0.4).abs() < 1e-9);
        assert_eq!(stats.transfer_occupancy(), 1.0, "occupancy clamps at 1");
    }
}
