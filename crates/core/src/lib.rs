//! ECCheck: erasure-coded in-memory checkpointing for distributed DNN
//! training — the reproduction of the paper's core system.
//!
//! ECCheck classifies the `n` training nodes into `k` *data nodes* and
//! `m = n - k` *parity nodes*, packs each worker's sharded `state_dict`
//! into fixed-size packets without serialization, erasure-codes them with
//! a Cauchy Reed–Solomon code, and spreads the resulting chunks so that
//! any `m` concurrent node failures are survivable (paper §III).
//!
//! The public API mirrors the paper's three entry points:
//!
//! * [`EcCheck::initialize`] — chooses the encoding matrix, selects data
//!   and parity nodes with the sweep-line placement (§IV-B-1), plans XOR
//!   reduction targets (§IV-B-2), and sizes the buffer pools.
//! * [`EcCheck::save`] — the four-step checkpoint: DtoH offload,
//!   decompose + broadcast headers, pipelined encode → XOR-reduce → P2P,
//!   and (at low frequency) a remote-storage flush (§III-A, Fig. 5).
//! * [`EcCheck::load`] — the two recovery workflows: resend when all
//!   data nodes survive, decode otherwise (§III-B, Fig. 7).
//!
//! Two execution planes back the API (see DESIGN.md): `save`/`load` move
//! *real bytes* through an [`ecc_cluster::Cluster`], so recovery is
//! bit-exact by test, while [`timing`] produces deterministic simulated
//! durations for paper-scale configurations.
//!
//! # Examples
//!
//! ```
//! use ecc_checkpoint::{StateDict, Value};
//! use ecc_cluster::{Cluster, ClusterSpec};
//! use eccheck::{EcCheck, EcCheckConfig};
//!
//! let spec = ClusterSpec::tiny_test(4, 1);
//! let mut cluster = Cluster::new(spec);
//! let mut ecc = EcCheck::initialize(&spec, EcCheckConfig::paper_defaults())?;
//!
//! // Each worker checkpoints a (tiny) state_dict.
//! let dicts: Vec<StateDict> = (0..4)
//!     .map(|w| {
//!         let mut sd = StateDict::new();
//!         sd.insert("iteration", Value::Int(7));
//!         sd.insert("rank", Value::Int(w));
//!         sd
//!     })
//!     .collect();
//! ecc.save(&mut cluster, &dicts)?;
//!
//! // Two concurrent node failures -- replication pairs would be lost.
//! cluster.fail_node(0);
//! cluster.fail_node(1);
//! cluster.replace_node(0);
//! cluster.replace_node(1);
//! let (restored, _report) = ecc.load(&mut cluster)?;
//! assert_eq!(restored, dicts);
//! # Ok::<(), eccheck::EcCheckError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod error;
mod groups;
pub mod keys;
mod pipeline;
mod placement;
mod reduction;
mod report;
pub mod store;
pub mod timing;

pub use config::{EcCheckConfig, SaveMode};
pub use engine::EcCheck;
pub use error::EcCheckError;
pub use groups::{optimal_group_size, GroupSizeCost, GroupedEcCheck};
pub use pipeline::PipelineStats;
pub use placement::{data_p2p_packets, select_data_parity_nodes, Placement};
pub use reduction::{ReductionGroup, ReductionPlan, TrafficSummary};
pub use report::{DeltaReport, LoadReport, RecoveryWorkflow, SaveReport};
pub use store::{DrainHandle, Drainer, RetentionPolicy, VersionIndex, WorkerDirtySet};
