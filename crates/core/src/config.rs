use ecc_erasure::ScheduleKind;

use crate::EcCheckError;

/// How [`crate::EcCheck::save`] executes (paper §IV).
///
/// Both modes store byte-identical blobs — the differential suite in
/// `tests/pipeline_differential.rs` holds them to that — so the choice
/// only affects *how* the work is scheduled, never what lands on the
/// cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveMode {
    /// One monolithic pass: pack, build chunks, encode, then place. The
    /// oracle the pipelined executor is differentially tested against.
    Sequential,
    /// The paper's checkpoint coding pipeline: fixed-size stripes stream
    /// through encode → XOR-reduce → transfer stages on worker threads,
    /// with transfers gated into profiled network idle slots.
    Pipelined,
}

/// Tunables of the ECCheck system.
///
/// # Examples
///
/// ```
/// use eccheck::EcCheckConfig;
///
/// // The paper's settings (§V-B): k = 2, m = 2, GF(2^8), 64 MB buffers,
/// // 12 data + 24 encoding buffers per worker.
/// let cfg = EcCheckConfig::paper_defaults();
/// assert_eq!((cfg.k(), cfg.m()), (2, 2));
///
/// // Tests shrink the buffers.
/// let tiny = EcCheckConfig::paper_defaults().with_packet_size(256);
/// assert_eq!(tiny.packet_size(), 256);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EcCheckConfig {
    k: usize,
    m: usize,
    w: u8,
    packet_size: usize,
    data_buffers: usize,
    encoding_buffers: usize,
    coding_threads: usize,
    schedule: ScheduleKind,
    remote_flush_every: u64,
    use_idle_slots: bool,
    fetch_retries: usize,
    fetch_backoff_base_ns: u64,
    fetch_backoff_cap_ns: u64,
    save_mode: SaveMode,
    pipeline_buffer: usize,
    pipeline_depth: usize,
    retain_last: usize,
    retain_every: u64,
    fail_encode_task: Option<u64>,
}

impl EcCheckConfig {
    /// The paper's experimental settings (§V-B): `k = m = 2` over
    /// GF(2^8), 64 MB packets, 12 data and 24 encoding buffers per
    /// worker, idle-slot scheduling on, remote flush every 50 saves.
    pub fn paper_defaults() -> Self {
        Self {
            k: 2,
            m: 2,
            w: 8,
            packet_size: 64 << 20,
            data_buffers: 12,
            encoding_buffers: 24,
            coding_threads: 8,
            schedule: ScheduleKind::Smart,
            remote_flush_every: 50,
            use_idle_slots: true,
            fetch_retries: 2,
            fetch_backoff_base_ns: 200_000,
            fetch_backoff_cap_ns: 50_000_000,
            save_mode: SaveMode::Pipelined,
            pipeline_buffer: 4 << 20,
            pipeline_depth: 8,
            retain_last: 1,
            retain_every: 0,
            fail_encode_task: None,
        }
    }

    /// Fail point for chaos tests: the pipelined executor's encode
    /// worker that picks up global task `n` (0-based, in pick-up order)
    /// panics mid-steal, exercising the executor's clean-failure path.
    /// Applies to every pipelined save made with this config.
    #[doc(hidden)]
    pub fn with_fail_encode_task(mut self, n: u64) -> Self {
        self.fail_encode_task = Some(n);
        self
    }

    /// Disarms the encode-worker fail point.
    #[doc(hidden)]
    pub fn without_fail_encode_task(mut self) -> Self {
        self.fail_encode_task = None;
        self
    }

    /// The injected encode-worker fail point, if any.
    #[doc(hidden)]
    pub fn fail_encode_task(&self) -> Option<u64> {
        self.fail_encode_task
    }

    /// Overrides the data/parity split.
    pub fn with_km(mut self, k: usize, m: usize) -> Self {
        self.k = k;
        self.m = m;
        self
    }

    /// Overrides the field width.
    pub fn with_width(mut self, w: u8) -> Self {
        self.w = w;
        self
    }

    /// Overrides the packet (buffer) size in bytes.
    pub fn with_packet_size(mut self, bytes: usize) -> Self {
        self.packet_size = bytes;
        self
    }

    /// Overrides the buffer pool sizes (data, encoding).
    pub fn with_buffers(mut self, data: usize, encoding: usize) -> Self {
        self.data_buffers = data;
        self.encoding_buffers = encoding;
        self
    }

    /// Overrides the coding thread-pool size.
    pub fn with_coding_threads(mut self, threads: usize) -> Self {
        self.coding_threads = threads.max(1);
        self
    }

    /// Overrides the XOR schedule kind.
    pub fn with_schedule(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides how often (in saves) the checkpoint is also flushed to
    /// remote storage (step 4; 0 disables).
    pub fn with_remote_flush_every(mut self, every: u64) -> Self {
        self.remote_flush_every = every;
        self
    }

    /// Enables or disables idle-slot communication scheduling.
    pub fn with_idle_slots(mut self, on: bool) -> Self {
        self.use_idle_slots = on;
        self
    }

    /// Overrides how the save path executes (default: pipelined).
    pub fn with_save_mode(mut self, mode: SaveMode) -> Self {
        self.save_mode = mode;
        self
    }

    /// Overrides the pipeline stripe-buffer size in bytes: roughly how
    /// many bytes of one data chunk each encode task consumes. Rounded
    /// internally so stripe boundaries stay coding-aligned.
    pub fn with_pipeline_buffer(mut self, bytes: usize) -> Self {
        self.pipeline_buffer = bytes;
        self
    }

    /// Overrides the pipeline depth: how many stripes may be in flight
    /// between the encode and transfer stages at once. Deeper pipelines
    /// absorb more stage jitter at the cost of `depth` reusable
    /// stripe-sized reduction buffers.
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(2);
        self
    }

    /// Overrides how many sealed checkpoint versions the retention
    /// policy keeps in peer memory (the tier-0 EC group). The default
    /// of 1 reproduces the original rotate-on-save behavior: each save
    /// garbage-collects its predecessor. Clamped to at least 1 — the
    /// newest restorable version is never collectible.
    pub fn with_retain_last(mut self, n: usize) -> Self {
        self.retain_last = n.max(1);
        self
    }

    /// Additionally pins every version divisible by `every` (0 = off),
    /// so long-horizon restore points survive the keep-last-N window —
    /// the classic "keep every Kth" checkpoint ladder.
    pub fn with_retain_every(mut self, every: u64) -> Self {
        self.retain_every = every;
        self
    }

    /// Overrides how many times a recovery fetch is retried before the
    /// holding node is declared failed (0 = fail on the first miss).
    /// Retries absorb transient data-plane glitches — a blob that is
    /// momentarily unreadable is not the same as a dead node.
    pub fn with_fetch_retries(mut self, retries: usize) -> Self {
        self.fetch_retries = retries;
        self
    }

    /// Overrides the fetch-retry backoff policy: attempt `n` (0-based)
    /// waits `min(base << n, cap)` nanoseconds before retrying. Instant
    /// retries were correct against the in-memory plane but hot-spin
    /// against a real server; `base = 0` restores them for tests that
    /// must not sleep.
    pub fn with_fetch_backoff(mut self, base_ns: u64, cap_ns: u64) -> Self {
        self.fetch_backoff_base_ns = base_ns;
        self.fetch_backoff_cap_ns = cap_ns;
        self
    }

    /// Number of data nodes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity nodes.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Galois-field width.
    pub fn w(&self) -> u8 {
        self.w
    }

    /// Packet/buffer size in bytes.
    pub fn packet_size(&self) -> usize {
        self.packet_size
    }

    /// Reserved data buffers per worker.
    pub fn data_buffers(&self) -> usize {
        self.data_buffers
    }

    /// Reserved encoding buffers per worker.
    pub fn encoding_buffers(&self) -> usize {
        self.encoding_buffers
    }

    /// Coding thread-pool size.
    pub fn coding_threads(&self) -> usize {
        self.coding_threads
    }

    /// XOR schedule kind.
    pub fn schedule(&self) -> ScheduleKind {
        self.schedule
    }

    /// Remote-flush period in saves (0 = never).
    pub fn remote_flush_every(&self) -> u64 {
        self.remote_flush_every
    }

    /// Whether checkpoint communication defers to network idle slots.
    pub fn use_idle_slots(&self) -> bool {
        self.use_idle_slots
    }

    /// Bounded retry budget for recovery fetches.
    pub fn fetch_retries(&self) -> usize {
        self.fetch_retries
    }

    /// First-retry backoff delay in nanoseconds (0 = no backoff).
    pub fn fetch_backoff_base_ns(&self) -> u64 {
        self.fetch_backoff_base_ns
    }

    /// Ceiling on a single backoff delay in nanoseconds.
    pub fn fetch_backoff_cap_ns(&self) -> u64 {
        self.fetch_backoff_cap_ns
    }

    /// How the save path executes.
    pub fn save_mode(&self) -> SaveMode {
        self.save_mode
    }

    /// Pipeline stripe-buffer size in bytes.
    pub fn pipeline_buffer(&self) -> usize {
        self.pipeline_buffer
    }

    /// Pipeline depth (in-flight stripes between encode and transfer).
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth
    }

    /// How many newest sealed versions the tier-0 retention keeps.
    pub fn retain_last(&self) -> usize {
        self.retain_last
    }

    /// Keep-every-Kth pinning period for retention (0 = off).
    pub fn retain_every(&self) -> u64 {
        self.retain_every
    }

    /// Validates the configuration against a cluster size.
    ///
    /// # Errors
    ///
    /// Returns [`EcCheckError::Config`] when `k + m` does not equal the
    /// node count, the packet size is not coding-aligned, the buffer
    /// pools are empty, or the world size does not divide by `k`.
    pub fn validate(&self, nodes: usize, world_size: usize) -> Result<(), EcCheckError> {
        if self.k + self.m != nodes {
            return Err(EcCheckError::Config {
                detail: format!("k + m = {} must equal the node count {nodes}", self.k + self.m),
            });
        }
        if self.k == 0 || self.m == 0 {
            return Err(EcCheckError::Config {
                detail: "k and m must both be positive".to_string(),
            });
        }
        let align = self.w as usize * 8;
        if self.packet_size == 0 || !self.packet_size.is_multiple_of(align) {
            return Err(EcCheckError::Config {
                detail: format!(
                    "packet size {} must be a positive multiple of w*8 = {align}",
                    self.packet_size
                ),
            });
        }
        if self.data_buffers == 0 || self.encoding_buffers == 0 {
            return Err(EcCheckError::Config {
                detail: "buffer pools must be non-empty".to_string(),
            });
        }
        if self.pipeline_buffer == 0 {
            return Err(EcCheckError::Config {
                detail: "pipeline buffer size must be positive".to_string(),
            });
        }
        if !world_size.is_multiple_of(self.k) {
            return Err(EcCheckError::Config {
                detail: format!(
                    "world size {world_size} must divide evenly into k = {} data groups",
                    self.k
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_v_b() {
        let c = EcCheckConfig::paper_defaults();
        assert_eq!((c.k(), c.m(), c.w()), (2, 2, 8));
        assert_eq!(c.packet_size(), 64 << 20);
        assert_eq!((c.data_buffers(), c.encoding_buffers()), (12, 24));
        assert!(c.use_idle_slots());
    }

    #[test]
    fn validate_accepts_paper_testbed() {
        let c = EcCheckConfig::paper_defaults();
        assert!(c.validate(4, 16).is_ok());
    }

    #[test]
    fn validate_rejects_mismatched_nodes() {
        let c = EcCheckConfig::paper_defaults();
        assert!(c.validate(5, 20).is_err());
    }

    #[test]
    fn validate_rejects_misaligned_packets() {
        let c = EcCheckConfig::paper_defaults().with_packet_size(100);
        assert!(c.validate(4, 16).is_err());
    }

    #[test]
    fn validate_rejects_indivisible_world() {
        let c = EcCheckConfig::paper_defaults().with_km(3, 1);
        assert!(c.validate(4, 16).is_err()); // 16 % 3 != 0
    }

    #[test]
    fn validate_rejects_empty_pools() {
        let c = EcCheckConfig::paper_defaults().with_buffers(0, 4);
        assert!(c.validate(4, 16).is_err());
    }

    #[test]
    fn builders_chain() {
        let c = EcCheckConfig::paper_defaults()
            .with_km(3, 1)
            .with_width(4)
            .with_packet_size(320)
            .with_coding_threads(0)
            .with_remote_flush_every(10)
            .with_idle_slots(false)
            .with_fetch_retries(5)
            .with_fetch_backoff(1_000, 8_000)
            .with_save_mode(SaveMode::Sequential)
            .with_pipeline_buffer(1 << 16)
            .with_pipeline_depth(1);
        assert_eq!((c.k(), c.m(), c.w()), (3, 1, 4));
        assert_eq!(c.packet_size(), 320);
        assert_eq!(c.coding_threads(), 1);
        assert_eq!(c.remote_flush_every(), 10);
        assert!(!c.use_idle_slots());
        assert_eq!(c.fetch_retries(), 5);
        assert_eq!((c.fetch_backoff_base_ns(), c.fetch_backoff_cap_ns()), (1_000, 8_000));
        assert_eq!(c.save_mode(), SaveMode::Sequential);
        assert_eq!(c.pipeline_buffer(), 1 << 16);
        assert_eq!(c.pipeline_depth(), 2, "depth clamps to a working minimum");
    }

    #[test]
    fn default_save_mode_is_pipelined() {
        let c = EcCheckConfig::paper_defaults();
        assert_eq!(c.save_mode(), SaveMode::Pipelined);
        assert!(c.pipeline_buffer() > 0 && c.pipeline_depth() >= 2);
    }

    #[test]
    fn retention_defaults_reproduce_rotate_on_save() {
        let c = EcCheckConfig::paper_defaults();
        assert_eq!((c.retain_last(), c.retain_every()), (1, 0));
        let c = c.with_retain_last(0);
        assert_eq!(c.retain_last(), 1, "the newest version is never collectible");
        let c = c.with_retain_last(4).with_retain_every(10);
        assert_eq!((c.retain_last(), c.retain_every()), (4, 10));
    }

    #[test]
    fn validate_rejects_zero_pipeline_buffer() {
        let c = EcCheckConfig::paper_defaults().with_pipeline_buffer(0);
        assert!(c.validate(4, 16).is_err());
    }
}
