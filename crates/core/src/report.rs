use ecc_cluster::NodeId;

use crate::{PipelineStats, TrafficSummary};

/// What one [`crate::EcCheck::save`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveReport {
    /// Checkpoint version written.
    pub version: u64,
    /// Fixed packet size in bytes.
    pub packet_size: usize,
    /// Packets per worker after padding to a common count.
    pub packets_per_worker: usize,
    /// Bytes of parity produced by the encoder.
    pub encoded_bytes: u64,
    /// Communication accounting for the encode/XOR/P2P phases.
    pub traffic: TrafficSummary,
    /// Whether this save also flushed to remote storage (step 4).
    pub remote_flushed: bool,
    /// Stage accounting of the pipelined executor; `None` for
    /// sequential saves.
    pub pipeline: Option<PipelineStats>,
}

/// What one [`crate::EcCheck::save_delta`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaReport {
    /// Checkpoint version patched in place (delta saves do not bump the
    /// version; they evolve the newest one).
    pub version: u64,
    /// Dirty workers, ascending.
    pub workers: Vec<usize>,
    /// Data chunks touched (dirty workers grouped by chunk).
    pub chunks_patched: usize,
    /// Bytes of the dirty regions that actually differed from the
    /// stored checkpoint (zero means the delta was a no-op).
    pub changed_bytes: u64,
    /// Bytes of worker region payload re-encoded (dirty workers ×
    /// packets-per-worker × packet size).
    pub region_bytes: u64,
    /// Network traffic the patch cost: each dirty region moves once to
    /// its data node and once per parity node, `region × (1 + m)` —
    /// compare against a full save's `m·s·W` parity traffic.
    pub traffic_bytes: u64,
    /// Bytes of parity delta produced by the encoder.
    pub encoded_bytes: u64,
    /// Stage accounting of the pipelined executor; `None` for
    /// sequential delta saves.
    pub pipeline: Option<PipelineStats>,
}

/// Which recovery workflow [`crate::EcCheck::load`] executed (paper
/// §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryWorkflow {
    /// All data nodes survived: lost packets are re-sent and lost parity
    /// re-encoded; no decoding needed.
    Resend,
    /// At least one data chunk was lost: surviving chunks are decoded
    /// through the inverted survivor submatrix.
    Decode,
    /// Fewer than `k` chunks survived in memory; the checkpoint was
    /// reloaded from the low-frequency remote copy.
    Remote,
}

/// What one [`crate::EcCheck::load`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Checkpoint version restored.
    pub version: u64,
    /// The workflow that ran.
    pub workflow: RecoveryWorkflow,
    /// Nodes that had lost their chunk (dead, replaced, or holding a
    /// corrupted blob that was reclassified as an erasure).
    pub failed_nodes: Vec<NodeId>,
    /// Nodes whose chunk was present but failed its checksum — a
    /// subset of `failed_nodes`. Silent corruption the engine caught
    /// and treated as an erasure instead of decoding into garbage.
    pub corrupt_nodes: Vec<NodeId>,
    /// Chunks reconstructed by decoding or re-encoding.
    pub rebuilt_chunks: usize,
    /// Nodes that could not be re-seeded with their chunk during the
    /// restore-fault-tolerance phase (they died mid-recovery). The
    /// returned state is still correct; these nodes regain their chunk
    /// on the next save or load.
    pub restore_skipped: Vec<NodeId>,
    /// Total bytes of restored `state_dict` tensor data.
    pub restored_bytes: u64,
}
