//! Deterministic fault injection for the ECCheck data plane.
//!
//! The ECCheck engine promises that any `m` concurrent node failures
//! are survivable (paper §II-B, §III). This crate exists to *attack*
//! that promise, deterministically, so every violation is a
//! reproducible test failure rather than a flaky one:
//!
//! * [`ChaosPlane`] wraps any [`ecc_cluster::DataPlane`] and injects
//!   seeded faults at the blob-storage boundary: node crashes (including
//!   crashes scheduled to strike mid-`save` or mid-`load`), dropped and
//!   duplicated P2P transfers, bit-flip corruption of stored chunks and
//!   headers, and transiently-failing `get_local` reads. Every injected
//!   fault is logged as a [`FaultRecord`] and surfaced through telemetry
//!   counters and trace instants.
//! * [`scenario`] schedules faults over whole recovery rounds on top of
//!   `ecc_cluster::{FailureModel, FailureScenario}` — independent
//!   per-node failures, correlated group failures (a rack or a PDU
//!   taking its nodes down together), and failure-during-recovery.
//! * [`campaign`] runs seeded randomized save/fault/load rounds against
//!   a real engine and checks the paper's contract on every round:
//!   at most `m` chunk-class faults must round-trip **bit-exactly**;
//!   more than `m` must fail with a clean
//!   [`eccheck::EcCheckError::Unrecoverable`] — never garbage state.
//! * [`churn`] attacks the *elastic* half of the contract: rounds of
//!   node drains, crashes, and replacement joins driven through an
//!   `ecc_membership::PlacementController`, asserting that the m-fault
//!   guarantee holds at every instant, placement epochs stay strictly
//!   monotone, stale engines are fenced, and chunk migration traffic
//!   never exceeds the naive full-re-encode bound.
//!
//! # Examples
//!
//! ```
//! use ecc_chaos::{ChaosConfig, ChaosPlane};
//! use ecc_cluster::{Cluster, ClusterSpec, DataPlane};
//!
//! let inner = Cluster::new(ClusterSpec::tiny_test(4, 1));
//! let mut chaos = ChaosPlane::new(inner, ChaosConfig::quiet(7));
//! chaos.put_local(0, "blob", vec![1, 2, 3])?;
//!
//! // A chaos crash loses the node's (volatile) blobs, like a real
//! // power failure; the inner cluster itself is untouched.
//! chaos.crash_now(0);
//! assert!(!chaos.alive(0));
//! chaos.heal(0);
//! assert!(chaos.alive(0));
//! assert!(chaos.get_local(0, "blob").is_none());
//! # Ok::<(), ecc_cluster::ClusterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod churn;
mod plane;
pub mod scenario;

pub use campaign::{
    campaign_slos, run_campaign, run_campaign_observed, run_campaign_on_plane, run_tiered_campaign,
    CampaignConfig, CampaignReport, RoundOutcome, RoundResult,
};
pub use churn::{run_churn_campaign, ChurnConfig, ChurnReport, ChurnRound};
pub use plane::{ChaosConfig, ChaosPlane, FaultKind, FaultRecord, FetchRecord, Tier};
pub use scenario::{ChaosEvent, ScenarioSchedule};
