//! Seeded chaos campaigns: randomized save/fault/load rounds that
//! check the paper's recovery contract on every round.
//!
//! The contract under test (paper §II-B, §III-B):
//!
//! * **At most `m` chunk-class faults** (node crashes, lost or
//!   corrupted chunks) → `load` must return the checkpoint
//!   **bit-exactly**.
//! * **More than `m`**, or a worker's header lost from *every* node →
//!   `load` must fail with a clean
//!   [`eccheck::EcCheckError::Unrecoverable`] naming what was lost.
//! * **Never garbage**: whatever the fault mix — including faults that
//!   strike mid-recovery — a successful `load` must return exactly
//!   what was saved.

use std::collections::{BTreeMap, BTreeSet};

use ecc_checkpoint::{StateDict, Value};
use ecc_cluster::{Cluster, ClusterSpec, DataPlane, FailureModel, NodeId};
use ecc_obs::{ObsHub, SloSpec};
use eccheck::store::{self, WorkerDirtySet};
use eccheck::{keys, EcCheck, EcCheckConfig, EcCheckError, RecoveryWorkflow, SaveMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::plane::{ChaosConfig, ChaosPlane, FaultKind, FaultRecord, FetchRecord, Tier};
use crate::scenario::{ChaosEvent, ScenarioSchedule};

/// Shape and fault intensities of a chaos campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Cluster nodes (`k + m`).
    pub nodes: usize,
    /// GPUs (workers) per node; world size is `nodes * gpus_per_node`.
    pub gpus_per_node: usize,
    /// Data nodes.
    pub k: usize,
    /// Parity nodes — the failure budget under test.
    pub m: usize,
    /// Save/fault/load rounds per seed.
    pub rounds: usize,
    /// Engine packet size in bytes (multiple of 64).
    pub packet_size: usize,
    /// Per-node crash probability per round.
    pub p_node_fail: f64,
    /// Correlated failure-domain size (rack/PDU width).
    pub failure_domain: usize,
    /// Per-surviving-node at-rest chunk corruption probability.
    pub p_corrupt_chunk: f64,
    /// Probability that one crash strikes mid-load instead of before.
    pub p_midload_crash: f64,
    /// Probability of corrupting one worker's header on all nodes but
    /// one (recovery must fall back to the spared copy).
    pub p_header_attack: f64,
    /// Probability of destroying one worker's header on *every* node
    /// (recovery must refuse, naming the worker).
    pub p_header_total_loss: f64,
    /// In-flight drop probability per `put_local` during save/restore.
    pub p_drop_put: f64,
    /// In-flight corruption probability per `put_local`.
    pub p_corrupt_put: f64,
    /// Duplicate-delivery probability per `put_local`.
    pub p_duplicate_put: f64,
    /// Transient-outage probability per first `get_local` of a blob.
    pub p_transient_get: f64,
    /// Engine fetch retries (must cover one transient failure).
    pub fetch_retries: usize,
    /// How saves execute — the recovery contract must hold under both
    /// the sequential oracle and the pipelined executor.
    pub save_mode: SaveMode,
    /// Coding threads for the save path (the pipelined executor's
    /// worker count; faults must be mode- and thread-count-agnostic).
    pub coding_threads: usize,
}

impl CampaignConfig {
    /// The standard campaign: the paper's `k = m = 2` testbed (4
    /// nodes, 2 GPUs each) under a moderate mix of every fault kind —
    /// enough pressure that a typical seed exercises both recovery
    /// and refusal.
    pub fn standard() -> Self {
        Self {
            nodes: 4,
            gpus_per_node: 2,
            k: 2,
            m: 2,
            rounds: 8,
            packet_size: 256,
            p_node_fail: 0.2,
            failure_domain: 2,
            p_corrupt_chunk: 0.15,
            p_midload_crash: 0.2,
            p_header_attack: 0.2,
            p_header_total_loss: 0.05,
            p_drop_put: 0.02,
            p_corrupt_put: 0.02,
            p_duplicate_put: 0.05,
            p_transient_get: 0.1,
            fetch_retries: 2,
            save_mode: SaveMode::Pipelined,
            coding_threads: 2,
        }
    }

    /// The same campaign driven through the sequential save oracle.
    pub fn sequential() -> Self {
        Self { save_mode: SaveMode::Sequential, ..Self::standard() }
    }
}

/// How one campaign round ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundResult {
    /// `load` succeeded and the restored state was bit-exact.
    Recovered {
        /// Chunks the engine rebuilt (decoded or re-encoded).
        rebuilt_chunks: usize,
        /// Corrupted chunks the engine caught via checksums.
        corrupt_detected: usize,
    },
    /// `load` refused with a structured `Unrecoverable`.
    Refused {
        /// Intact chunks that survived.
        survivors: usize,
        /// Chunks that were needed (`k`).
        needed: usize,
        /// Worker states the engine reported as lost.
        lost_workers: Vec<usize>,
    },
}

/// One round's faults and verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Round index within the campaign.
    pub round: usize,
    /// Checkpoint version the round saved and attacked.
    pub version: u64,
    /// Nodes whose chunk was destroyed or tainted before the load
    /// (crashes, at-rest corruption, dropped/corrupted chunk puts).
    pub chunk_casualties: Vec<NodeId>,
    /// Whether some worker's header was damaged on every node.
    pub header_catastrophe: bool,
    /// Whether a crash was scheduled to strike mid-load. Ambiguous
    /// rounds only assert the never-garbage half of the contract.
    pub ambiguous: bool,
    /// The verdict.
    pub result: RoundResult,
}

/// Everything a campaign run produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign seed.
    pub seed: u64,
    /// Per-round outcomes, in order.
    pub outcomes: Vec<RoundOutcome>,
    /// Contract violations — **empty on a passing run**.
    pub violations: Vec<String>,
    /// Every fault the chaos plane injected, in firing order.
    pub fault_log: Vec<FaultRecord>,
    /// Every successful blob fetch with the tier that served it, in
    /// order — which restores were answered by the peer EC group and
    /// which fell back to the remote store. Like the fault log, this
    /// must be identical across save executors for a given seed.
    pub fetch_log: Vec<FetchRecord>,
    /// Final telemetry snapshot (engine + chaos counters), as JSON.
    pub telemetry_json: String,
}

impl CampaignReport {
    /// `true` when no contract violation was observed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Rounds that recovered bit-exactly.
    pub fn recovered(&self) -> usize {
        self.outcomes.iter().filter(|o| matches!(o.result, RoundResult::Recovered { .. })).count()
    }

    /// Rounds that cleanly refused.
    pub fn refused(&self) -> usize {
        self.outcomes.iter().filter(|o| matches!(o.result, RoundResult::Refused { .. })).count()
    }

    /// The fault log as a JSON array (one object per injected fault).
    pub fn fault_log_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, f) in self.fault_log.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"op\": {}, \"kind\": \"{}\", \"node\": {}, \"key\": \"{}\"}}",
                f.op,
                f.kind.label(),
                f.node,
                f.key
            ));
        }
        out.push_str("\n]\n");
        out
    }

    /// The fetch log as a JSON array: one object per served fetch with
    /// its tier provenance (`"peer"` or `"remote"`; remote fetches have
    /// a `null` node). Diffable across save executors the same way the
    /// fault log is.
    pub fn fetch_log_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, f) in self.fetch_log.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let tier = match f.tier {
                Tier::Peer => "peer",
                Tier::Remote => "remote",
            };
            let node = match f.node {
                Some(n) => n.to_string(),
                None => String::from("null"),
            };
            out.push_str(&format!(
                "  {{\"op\": {}, \"tier\": \"{}\", \"node\": {}, \"key\": \"{}\"}}",
                f.op, tier, node, f.key
            ));
        }
        out.push_str("\n]\n");
        out
    }

    /// A one-object JSON summary of the run.
    pub fn summary_json(&self) -> String {
        let violations = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"seed\": {}, \"rounds\": {}, \"recovered\": {}, \"refused\": {}, \
             \"faults\": {}, \"violations\": [{}]}}\n",
            self.seed,
            self.outcomes.len(),
            self.recovered(),
            self.refused(),
            self.fault_log.len(),
            violations
        )
    }
}

/// Runs one seeded campaign: `cfg.rounds` rounds of save → inject →
/// load against a real engine on a chaos-wrapped cluster, checking
/// the recovery contract after every round.
///
/// # Panics
///
/// Panics when `cfg` is not a valid engine configuration (e.g.
/// `k + m != nodes`) or a save fails outright — campaign setup bugs,
/// not contract violations.
pub fn run_campaign(cfg: &CampaignConfig, seed: u64) -> CampaignReport {
    run_campaign_observed(cfg, seed, None)
}

/// The default objectives a campaign exposes when observed: the
/// engine's headline SLOs (save stall, recovery latency) plus the
/// paper's traffic bound expressed over the campaign's `k`.
pub fn campaign_slos(cfg: &CampaignConfig) -> Vec<SloSpec> {
    vec![
        SloSpec::latency(
            "save_stall",
            "99% of saves stall training for at most 250ms",
            "ecc.save.ns",
            250_000_000,
            0.99,
        ),
        SloSpec::latency(
            "recovery",
            "99% of restores complete within 1s",
            "ecc.load.ns",
            1_000_000_000,
            0.99,
        ),
        SloSpec::ratio(
            "traffic",
            "per-save network traffic stays within the m*s*W bound",
            "ecc.save.traffic_bytes",
            "ecc.save.bytes_encoded",
            cfg.k as f64,
        ),
    ]
}

/// [`run_campaign`], optionally reporting into a live observability
/// hub: the engine adopts the hub's recorder (so `/metrics` scrapes
/// taken mid-campaign see every phase histogram and fault event), the
/// hub's health registry — if attached — receives heartbeats from
/// alive nodes each round and `mark_dead` on every injected crash.
///
/// With `obs = None` this is byte-for-byte the unobserved campaign:
/// same faults, same outcomes, same telemetry and fault-log artifacts.
///
/// # Panics
///
/// As [`run_campaign`].
pub fn run_campaign_observed(
    cfg: &CampaignConfig,
    seed: u64,
    obs: Option<&ObsHub>,
) -> CampaignReport {
    let spec = ClusterSpec::tiny_test(cfg.nodes, cfg.gpus_per_node);
    run_campaign_on_plane(cfg, seed, obs, Cluster::new(spec))
}

/// [`run_campaign_observed`] against an arbitrary inner data plane —
/// e.g. an `ecc-net` `RemotePlane`, so the identical fault campaign
/// runs over real sockets. The engine drives the same sequence of
/// data-plane operations whatever the transport, so a given (config,
/// seed) pair produces the identical fault log and outcomes on every
/// backend — a cross-plane differential the socket tests assert.
///
/// `inner` must expose exactly `cfg.nodes` all-alive nodes and start
/// with no blobs under the engine's key namespace.
///
/// # Panics
///
/// As [`run_campaign`], plus when `inner` has the wrong node count.
pub fn run_campaign_on_plane<P: DataPlane>(
    cfg: &CampaignConfig,
    seed: u64,
    obs: Option<&ObsHub>,
    inner: P,
) -> CampaignReport {
    assert_eq!(
        inner.nodes(),
        cfg.nodes,
        "inner plane has {} nodes, campaign wants {}",
        inner.nodes(),
        cfg.nodes
    );
    let world = cfg.nodes * cfg.gpus_per_node;
    let spec = ClusterSpec::tiny_test(cfg.nodes, cfg.gpus_per_node);
    let engine_cfg = EcCheckConfig::paper_defaults()
        .with_km(cfg.k, cfg.m)
        .with_packet_size(cfg.packet_size)
        .with_coding_threads(cfg.coding_threads)
        .with_save_mode(cfg.save_mode)
        .with_pipeline_buffer(64)
        .with_remote_flush_every(0)
        .with_fetch_retries(cfg.fetch_retries);
    let mut ecc = EcCheck::initialize(&spec, engine_cfg).expect("campaign config must be valid");
    if let Some(hub) = obs {
        // Report into the hub's recorder so live scrapes see the
        // campaign's histograms and fault events as they happen.
        ecc.set_recorder(hub.recorder().clone());
        heartbeat_all(hub, cfg.nodes);
    }

    let chaos_cfg = ChaosConfig {
        seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
        p_drop_put: cfg.p_drop_put,
        p_duplicate_put: cfg.p_duplicate_put,
        p_corrupt_put: cfg.p_corrupt_put,
        p_transient_get: cfg.p_transient_get,
        transient_get_failures: 1,
        max_bit_flips: 8,
    };
    let mut plane = ChaosPlane::new(inner, chaos_cfg);
    plane.set_recorder(ecc.recorder().clone());
    let tracer = ecc.attach_tracer();
    plane.set_tracer(&tracer);

    let model = FailureModel::new(cfg.p_node_fail).expect("probability is valid");
    let schedule = ScenarioSchedule::mixed(
        &model,
        cfg.nodes,
        cfg.failure_domain,
        cfg.p_corrupt_chunk,
        cfg.p_midload_crash,
        cfg.rounds,
        seed,
    );
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xC4A0));

    let mut outcomes = Vec::new();
    let mut violations = Vec::new();

    for (round, mut events) in schedule.rounds.into_iter().enumerate() {
        // Occasionally attack one worker's replicated header too.
        if rng.gen_bool(cfg.p_header_total_loss) {
            let worker = rng.gen_range(0..world);
            events
                .push(ChaosEvent::CorruptHeaderCopies { worker, nodes: (0..cfg.nodes).collect() });
        } else if rng.gen_bool(cfg.p_header_attack) {
            let worker = rng.gen_range(0..world);
            let spared = rng.gen_range(0..cfg.nodes);
            let nodes = (0..cfg.nodes).filter(|&n| n != spared).collect();
            events.push(ChaosEvent::CorruptHeaderCopies { worker, nodes });
        }

        let dicts = round_dicts(world, seed, round);
        let log_before_save = plane.fault_log().len();
        let report = ecc.save(&mut plane, &dicts).expect("save on an all-alive cluster succeeds");
        let version = report.version;

        // Fault accounting: which chunks are destroyed or tainted, and
        // which nodes' copy of each worker's header is damaged.
        let mut casualties: BTreeSet<NodeId> = BTreeSet::new();
        let mut header_damage: BTreeMap<usize, BTreeSet<NodeId>> = BTreeMap::new();
        for fault in &plane.fault_log()[log_before_save..] {
            if !matches!(fault.kind, FaultKind::DropPut | FaultKind::CorruptPut) {
                continue;
            }
            if keys::key_version(&fault.key) != Some(version) {
                continue;
            }
            if keys::is_chunk_class(&fault.key) {
                casualties.insert(fault.node);
            } else if let Some(worker) = keys::header_worker(&fault.key) {
                header_damage.entry(worker).or_default().insert(fault.node);
            }
        }

        let mut crashed: BTreeSet<NodeId> = BTreeSet::new();
        let mut ambiguous = false;
        for event in &events {
            match event {
                ChaosEvent::CrashNodes(nodes) => {
                    for &node in nodes {
                        plane.crash_now(node);
                        crashed.insert(node);
                        casualties.insert(node);
                        if let Some(hub) = obs {
                            if let Some(health) = hub.health() {
                                health.mark_dead(node, hub.recorder().now_ns());
                            }
                        }
                    }
                }
                ChaosEvent::CorruptChunks(nodes) => {
                    for &node in nodes {
                        if plane.corrupt_blob(node, &keys::chunk_key(version)) {
                            casualties.insert(node);
                        }
                    }
                }
                ChaosEvent::CorruptHeaderCopies { worker, nodes } => {
                    for &node in nodes {
                        if plane.corrupt_blob(node, &keys::header_key(version, *worker)) {
                            header_damage.entry(*worker).or_default().insert(node);
                        }
                    }
                }
                ChaosEvent::CrashDuringLoad { node, after_ops } => {
                    plane.schedule_crash_at_op(*node, plane.op() + after_ops);
                    ambiguous = true;
                }
            }
        }
        // A crashed node loses its copy of every worker's header.
        let header_catastrophe = (0..world).any(|w| {
            let mut damaged = crashed.clone();
            if let Some(extra) = header_damage.get(&w) {
                damaged.extend(extra.iter().copied());
            }
            damaged.len() == cfg.nodes
        });

        let faults = casualties.len();
        let result = match ecc.load(&mut plane) {
            Ok((restored, load_report)) => {
                if restored != dicts {
                    violations.push(format!(
                        "seed {seed} round {round}: load returned GARBAGE state \
                         ({faults} chunk faults, ambiguous={ambiguous})"
                    ));
                } else if !ambiguous && faults > cfg.m && !header_catastrophe {
                    violations.push(format!(
                        "seed {seed} round {round}: recovered despite {faults} > m = {} \
                         chunk faults — fault accounting or engine bug",
                        cfg.m
                    ));
                }
                RoundResult::Recovered {
                    rebuilt_chunks: load_report.rebuilt_chunks,
                    corrupt_detected: load_report.corrupt_nodes.len(),
                }
            }
            Err(EcCheckError::Unrecoverable { survivors, needed, lost_workers }) => {
                if !ambiguous && faults <= cfg.m && !header_catastrophe {
                    violations.push(format!(
                        "seed {seed} round {round}: refused a recoverable scenario \
                         ({faults} <= m = {} chunk faults, casualties {casualties:?})",
                        cfg.m
                    ));
                }
                RoundResult::Refused { survivors, needed, lost_workers }
            }
            Err(other) => {
                violations.push(format!(
                    "seed {seed} round {round}: unexpected error instead of a clean \
                     verdict: {other}"
                ));
                RoundResult::Refused { survivors: 0, needed: cfg.k, lost_workers: Vec::new() }
            }
        };

        outcomes.push(RoundOutcome {
            round,
            version,
            chunk_casualties: casualties.into_iter().collect(),
            header_catastrophe,
            ambiguous,
            result,
        });

        // Reset for the next round: revive everything and disarm any
        // mid-load crash that never fired.
        plane.cancel_scheduled_crashes();
        for node in 0..cfg.nodes {
            plane.heal(node);
        }
        if let Some(hub) = obs {
            heartbeat_all(hub, cfg.nodes);
        }
    }

    CampaignReport {
        seed,
        outcomes,
        violations,
        fault_log: plane.fault_log(),
        fetch_log: plane.fetch_log(),
        telemetry_json: ecc.recorder().snapshot().to_json(),
    }
}

/// Runs the tiered-store chaos campaign: `cfg.rounds` rounds cycling
/// through four fault legs that attack the tier-0 ↔ tier-1 boundary
/// the plain campaign never touches:
///
/// * **Mid-drain crash** — a node crash is armed to strike in the
///   middle of the tier-0 → tier-1 drain copy. The drain must skip the
///   dead node (never publish unverified bytes) and the next `load`
///   must still restore bit-exactly from the surviving peers.
/// * **Tier-1 loss, tier-0 intact** — the remote store is wiped after
///   a full drain and one node crashes. Recovery must be served
///   entirely by the peer tier: every fetch in the log says `Peer`.
/// * **Tier-0 heavy loss, tier-1 drained** — more than `m` nodes crash
///   after a full drain, so fewer than `k` chunks survive in memory.
///   Recovery must fall back to the drained copy: the load reports the
///   `Remote` workflow and the fetch log shows `Remote`-tier fetches.
/// * **Delta torn-update refusal** — a parity chunk is corrupted at
///   rest, then a delta save runs. The patch must refuse with
///   [`EcCheckError::CorruptChunk`] *before writing anything* (all
///   reads precede all stores), leaving the sealed version untouched,
///   and the next `load` must repair the corruption bit-exactly.
///
/// The legs are deterministic per seed, and — like
/// [`run_campaign`] — the whole report (outcomes, fault log, **and**
/// fetch log) must be identical under the sequential and pipelined
/// save executors.
///
/// # Panics
///
/// Panics when `cfg` is not a valid engine configuration or a
/// save/drain that must succeed fails outright — setup bugs, not
/// contract violations. Requires `cfg.nodes > cfg.m + 1` so the
/// heavy-loss leg leaves a survivor.
pub fn run_tiered_campaign(cfg: &CampaignConfig, seed: u64) -> CampaignReport {
    assert!(cfg.nodes > cfg.m + 1, "heavy-loss leg needs a surviving node");
    let world = cfg.nodes * cfg.gpus_per_node;
    let spec = ClusterSpec::tiny_test(cfg.nodes, cfg.gpus_per_node);
    let engine_cfg = EcCheckConfig::paper_defaults()
        .with_km(cfg.k, cfg.m)
        .with_packet_size(cfg.packet_size)
        .with_coding_threads(cfg.coding_threads)
        .with_save_mode(cfg.save_mode)
        .with_pipeline_buffer(64)
        .with_remote_flush_every(0)
        .with_fetch_retries(cfg.fetch_retries);
    let mut ecc = EcCheck::initialize(&spec, engine_cfg).expect("campaign config must be valid");
    // Quiet chaos: the tiered legs inject every fault explicitly, so
    // the tier that serves each fetch is the leg's doing alone.
    let chaos_cfg = ChaosConfig::quiet(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
    let mut plane = ChaosPlane::new(Cluster::new(spec), chaos_cfg);
    plane.set_recorder(ecc.recorder().clone());
    let tracer = ecc.attach_tracer();
    plane.set_tracer(&tracer);

    let mut outcomes = Vec::new();
    let mut violations = Vec::new();

    for round in 0..cfg.rounds {
        let leg = round % 4;
        let dicts = round_dicts(world, seed, round);
        let report = ecc.save(&mut plane, &dicts).expect("save on an all-alive cluster succeeds");
        let version = report.version;
        let victim = round % cfg.nodes;
        let mut casualties: BTreeSet<NodeId> = BTreeSet::new();

        match leg {
            0 => {
                // Leg A: crash strikes mid-drain. The drain's per-node
                // reads tick the op counter, so op+3 lands inside the
                // copy loop; the victim's blobs vanish underneath it.
                plane.schedule_crash_at_op(victim, plane.op() + 3);
                casualties.insert(victim);
                match store::drain_version(&mut plane, version, world, ecc.recorder()) {
                    Ok(outcome) => {
                        if outcome.chunks_copied < cfg.k {
                            violations.push(format!(
                                "seed {seed} round {round}: mid-drain crash left only {} \
                                 chunks in tier 1 (< k = {})",
                                outcome.chunks_copied, cfg.k
                            ));
                        }
                    }
                    Err(err) => violations.push(format!(
                        "seed {seed} round {round}: drain died on a one-node crash: {err}"
                    )),
                }
            }
            1 => {
                // Leg B: tier 1 lost after a full drain, one peer down
                // — recovery must be served entirely by tier 0.
                store::drain_version(&mut plane, version, world, ecc.recorder())
                    .expect("drain of a sealed version succeeds");
                plane.inner_mut().wipe_remote();
                plane.crash_now(victim);
                casualties.insert(victim);
            }
            2 => {
                // Leg C: tier 0 loses more than m nodes after a full
                // drain — recovery must fall back to tier 1.
                store::drain_version(&mut plane, version, world, ecc.recorder())
                    .expect("drain of a sealed version succeeds");
                for offset in 0..=cfg.m {
                    let node = (victim + offset) % cfg.nodes;
                    plane.crash_now(node);
                    casualties.insert(node);
                }
            }
            _ => {
                // Leg D: corrupt a parity chunk at rest, then attempt a
                // delta save. The patch reads every parity chunk before
                // writing anything, so it must refuse cleanly.
                let parity = ecc.placement().parity_nodes()[0];
                assert!(
                    plane.corrupt_blob(parity, &keys::chunk_key(version)),
                    "parity node must hold the sealed chunk"
                );
                casualties.insert(parity);
                let mut mutated = dicts[0].clone();
                mutated.insert("iteration", Value::Int(round as i64 + 0x7A57));
                let dirty = [WorkerDirtySet { worker: 0, state: &mutated }];
                match ecc.save_delta(&mut plane, &dirty) {
                    Err(EcCheckError::CorruptChunk { node }) => {
                        if node != parity {
                            violations.push(format!(
                                "seed {seed} round {round}: delta refusal blamed node \
                                 {node}, corrupted {parity}"
                            ));
                        }
                    }
                    Ok(_) => violations.push(format!(
                        "seed {seed} round {round}: delta save patched through a \
                         corrupt parity chunk"
                    )),
                    Err(other) => violations.push(format!(
                        "seed {seed} round {round}: delta refusal raised {other} \
                         instead of CorruptChunk"
                    )),
                }
            }
        }

        let fetches_before = plane.fetch_log().len();
        let result = match ecc.load(&mut plane) {
            Ok((restored, load_report)) => {
                if restored != dicts {
                    violations.push(format!(
                        "seed {seed} round {round} leg {leg}: load returned GARBAGE state"
                    ));
                }
                if leg == 2 && load_report.workflow != RecoveryWorkflow::Remote {
                    violations.push(format!(
                        "seed {seed} round {round}: {} crashed nodes but recovery ran \
                         {:?} instead of Remote",
                        casualties.len(),
                        load_report.workflow
                    ));
                }
                RoundResult::Recovered {
                    rebuilt_chunks: load_report.rebuilt_chunks,
                    corrupt_detected: load_report.corrupt_nodes.len(),
                }
            }
            Err(err) => {
                violations.push(format!(
                    "seed {seed} round {round} leg {leg}: tiered recovery failed: {err}"
                ));
                RoundResult::Refused { survivors: 0, needed: cfg.k, lost_workers: Vec::new() }
            }
        };

        // Tier provenance: leg B must never touch tier 1 (it is gone);
        // leg C must visibly lean on it.
        let fetches = plane.fetch_log();
        let round_fetches = &fetches[fetches_before..];
        let touched_remote = round_fetches.iter().any(|f| f.tier == Tier::Remote);
        match leg {
            1 if touched_remote => {
                violations.push(format!(
                    "seed {seed} round {round}: recovery read tier 1 after it was wiped"
                ));
            }
            2 if !touched_remote => {
                violations.push(format!(
                    "seed {seed} round {round}: remote-workflow recovery shows no \
                     tier-1 fetches"
                ));
            }
            _ => {}
        }

        outcomes.push(RoundOutcome {
            round,
            version,
            chunk_casualties: casualties.into_iter().collect(),
            header_catastrophe: false,
            ambiguous: false,
            result,
        });

        plane.cancel_scheduled_crashes();
        for node in 0..cfg.nodes {
            plane.heal(node);
        }
    }

    CampaignReport {
        seed,
        outcomes,
        violations,
        fault_log: plane.fault_log(),
        fetch_log: plane.fetch_log(),
        telemetry_json: ecc.recorder().snapshot().to_json(),
    }
}

/// Heartbeats every node on the hub's health registry at the current
/// clock (healed nodes revive; the next crash re-kills its target).
fn heartbeat_all(hub: &ObsHub, nodes: usize) {
    if let Some(health) = hub.health() {
        let now = hub.recorder().now_ns();
        for node in 0..nodes {
            health.record_heartbeat(node, now);
        }
    }
}

/// Deterministic per-round worker states: varying sizes so padding and
/// heterogeneous shards are exercised, plus scalars that make any
/// cross-round or cross-worker mixup visible.
fn round_dicts(world: usize, seed: u64, round: usize) -> Vec<StateDict> {
    let mut rng = StdRng::seed_from_u64(seed ^ ((round as u64) << 32) ^ 0x5EED);
    (0..world)
        .map(|w| {
            let mut sd = StateDict::new();
            sd.insert("iteration", Value::Int(round as i64));
            sd.insert("rank", Value::Int(w as i64));
            sd.insert("tag", Value::Str(format!("s{seed}-r{round}-w{w}")));
            let len = 32 + rng.gen_range(0..160usize);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
            sd.insert("payload", Value::Bytes(payload));
            sd
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_campaign_passes_and_mixes_outcomes() {
        let cfg = CampaignConfig::standard();
        let report = run_campaign(&cfg, 5);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.outcomes.len(), cfg.rounds);
        assert!(!report.fault_log.is_empty());
        assert!(!report.telemetry_json.is_empty());
    }

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        let cfg = CampaignConfig::standard();
        let a = run_campaign(&cfg, 11);
        let b = run_campaign(&cfg, 11);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.fault_log, b.fault_log);
    }

    #[test]
    fn seed_matrix_exercises_both_contract_halves() {
        let cfg = CampaignConfig::standard();
        let mut recovered = 0;
        let mut refused = 0;
        for seed in 0..4 {
            let report = run_campaign(&cfg, seed);
            assert!(report.passed(), "seed {seed} violations: {:?}", report.violations);
            recovered += report.recovered();
            refused += report.refused();
        }
        assert!(recovered > 0, "no round ever recovered — campaign too harsh");
        assert!(refused > 0, "no round ever refused — campaign too gentle");
    }

    #[test]
    fn pipelined_and_sequential_campaigns_agree_fault_for_fault() {
        // Both modes store byte-identical blobs through an identical
        // sequence of data-plane operations, so a seeded campaign must
        // produce the same faults and the same verdicts under either.
        let a = run_campaign(&CampaignConfig::standard(), 7);
        let b = run_campaign(&CampaignConfig::sequential(), 7);
        assert!(a.passed(), "pipelined violations: {:?}", a.violations);
        assert!(b.passed(), "sequential violations: {:?}", b.violations);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.fault_log, b.fault_log);
        assert_eq!(a.fetch_log, b.fetch_log);
    }

    #[test]
    fn tiered_campaign_passes_and_proves_tier_provenance() {
        let cfg = CampaignConfig::standard();
        let report = run_tiered_campaign(&cfg, 3);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.outcomes.len(), cfg.rounds);
        // Every leg recovers (leg D's refusal is the delta save's, not
        // the load's), and both tiers visibly served fetches.
        assert_eq!(report.recovered(), cfg.rounds);
        assert!(report.fetch_log.iter().any(|f| f.tier == Tier::Peer));
        assert!(report.fetch_log.iter().any(|f| f.tier == Tier::Remote));
    }

    #[test]
    fn tiered_campaign_is_executor_agnostic_fetch_for_fetch() {
        // The delta path and the drain issue the same plane-op
        // sequence under either save executor, so the tiered legs must
        // agree fault-for-fault AND fetch-for-fetch across modes.
        let a = run_tiered_campaign(&CampaignConfig::standard(), 9);
        let b = run_tiered_campaign(&CampaignConfig::sequential(), 9);
        assert!(a.passed(), "pipelined violations: {:?}", a.violations);
        assert!(b.passed(), "sequential violations: {:?}", b.violations);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.fault_log, b.fault_log);
        assert_eq!(a.fetch_log, b.fetch_log);
    }

    #[test]
    fn observed_campaign_matches_the_unobserved_one() {
        use ecc_cluster::{HealthConfig, HealthRegistry};
        use ecc_obs::ObsHubConfig;
        use ecc_telemetry::Recorder;

        let cfg = CampaignConfig::standard();
        let plain = run_campaign(&cfg, 5);

        let hub_cfg = ObsHubConfig { slos: campaign_slos(&cfg), ..ObsHubConfig::default() };
        let hub = ObsHub::new(Recorder::new(), hub_cfg)
            .with_health(HealthRegistry::new(cfg.nodes, HealthConfig::default()));
        let observed = run_campaign_observed(&cfg, 5, Some(&hub));

        assert_eq!(plain.outcomes, observed.outcomes, "observation must not steer the campaign");
        assert_eq!(plain.fault_log, observed.fault_log);

        // A scrape taken after the campaign sees the engine's phase
        // histograms, injected faults, health counters and SLO burn.
        let metrics = hub.render_metrics();
        let scrape = ecc_obs::parse_exposition(&metrics).expect("valid exposition");
        assert!(scrape.value("ecc_save_calls_total").is_some());
        assert!(metrics.contains("chaos_fault_"), "injected faults must surface as counters");
        assert!(scrape.labeled("ecc_slo_burn_rate", &[("slo", "traffic")]).is_some());
        assert!(
            scrape
                .labeled("ecc_health_transitions_total", &[("to", "dead")])
                .is_some_and(|s| s.value != ecc_obs::MetricValue::Int(0)),
            "campaign crashes must drive health transitions"
        );
        let events = hub.render_events_json();
        assert!(events.contains("chaos.fault."), "fault events must reach /events");
    }

    #[test]
    fn report_json_exports_are_well_formed() {
        let report = run_campaign(&CampaignConfig::standard(), 2);
        let log = report.fault_log_json();
        assert!(log.starts_with('[') && log.trim_end().ends_with(']'));
        let summary = report.summary_json();
        assert!(summary.contains("\"seed\": 2"));
        assert!(summary.contains("\"violations\": []"));
        let fetches = report.fetch_log_json();
        assert!(fetches.starts_with('[') && fetches.trim_end().ends_with(']'));
        assert!(fetches.contains("\"tier\": \"peer\""));
    }
}
