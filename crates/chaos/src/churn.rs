//! Seeded elastic-churn campaign: membership changes under fire.
//!
//! The [`campaign`](crate::campaign) module attacks the recovery
//! contract on a *fixed* membership. This module attacks the elastic
//! half of the story: rounds of checkpoint → churn (crashes and
//! graceful drains, up to `m` slots at once) → replacement joins →
//! [`PlacementController::rebalance`], asserting after **every**
//! instant that the paper's m-fault guarantee still holds:
//!
//! * while churned slots are down (before the rebalance), the
//!   checkpoint must still restore bit-exactly from the survivors;
//! * after the rebalance commits, *any* `m` further node failures
//!   must restore bit-exactly (every `C(n, m)` combination is
//!   drilled), and `m + 1` failures must be refused with a clean
//!   [`EcCheckError::Unrecoverable`] — never garbage state;
//! * placement epochs are strictly monotone (one bump per committed
//!   rebalance) and a stale engine is fenced with
//!   [`EcCheckError::StaleEpoch`] until it refreshes;
//! * chunk migration traffic stays under the naive full-re-encode
//!   bound — `chunk_bytes <= bound_bytes` on every
//!   [`ecc_membership::RebalanceReport`].
//!
//! Like the fixed-membership campaign, every round is seeded and
//! deterministic, violations are collected (not panicked) so one
//! failing seed reports everything it found, and the report renders
//! dependency-free JSON for CI artifacts ([`ChurnReport::summary_json`]
//! and [`ChurnReport::rounds_json`] — the latter feeds
//! `BENCH_PR9.json`).

use ecc_checkpoint::{StateDict, Value};
use ecc_cluster::{Cluster, ClusterSpec, NodeId};
use ecc_membership::PlacementController;
use eccheck::{EcCheck, EcCheckConfig, EcCheckError, SaveMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunables for a churn campaign.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Cluster size (`n = k + m` — the fixed-slot model).
    pub nodes: usize,
    /// GPUs per node; world size is `nodes * gpus_per_node`.
    pub gpus_per_node: usize,
    /// Data split of the erasure code.
    pub k: usize,
    /// Parity count — the fault budget under attack.
    pub m: usize,
    /// Engine packet size (small, to keep rounds fast).
    pub packet_size: usize,
    /// Churn rounds per campaign.
    pub rounds: usize,
    /// Probability a churned slot drains gracefully (staged copy)
    /// rather than crashing (erasure rebuild).
    pub p_graceful: f64,
    /// Probability a round churns two slots at once (capped at `m`).
    pub p_double_churn: f64,
    /// Engine save mode.
    pub save_mode: SaveMode,
}

impl ChurnConfig {
    /// The standard campaign: 4 nodes x 2 GPUs, k = m = 2, 6 rounds,
    /// a drain/crash mix, and occasional double churn.
    pub fn standard() -> Self {
        Self {
            nodes: 4,
            gpus_per_node: 2,
            k: 2,
            m: 2,
            packet_size: 256,
            rounds: 6,
            p_graceful: 0.4,
            p_double_churn: 0.3,
            save_mode: SaveMode::Pipelined,
        }
    }
}

/// What one churn round did, and what the drills around it proved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnRound {
    /// Round index (1-based; epoch after the round equals the index).
    pub round: usize,
    /// Slots churned this round.
    pub victims: Vec<NodeId>,
    /// How many of the victims drained gracefully (the rest crashed).
    pub graceful: usize,
    /// Placement epoch after the committed rebalance.
    pub epoch: u64,
    /// Moves served from staged drain bytes.
    pub moves_copied: usize,
    /// Moves served by erasure decode / parity patch.
    pub moves_rebuilt: usize,
    /// Rebuilds served by the GF-linearity parity patch.
    pub parity_patched: usize,
    /// Total bytes that crossed node boundaries for the migration.
    pub migrated_bytes: u64,
    /// Scheme-decided chunk payload bytes (vs `bound_bytes`).
    pub chunk_bytes: u64,
    /// Naive full-re-encode cost for the same churn.
    pub bound_bytes: u64,
    /// `C(n, m)` post-rebalance fault drills that restored bit-exactly.
    pub drills_survived: usize,
}

impl ChurnRound {
    /// One-object JSON rendering (no dependencies).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"round\":{},\"victims\":{:?},\"graceful\":{},\"epoch\":{},\
             \"moves_copied\":{},\"moves_rebuilt\":{},\"parity_patched\":{},\
             \"migrated_bytes\":{},\"chunk_bytes\":{},\"bound_bytes\":{},\
             \"drills_survived\":{}}}",
            self.round,
            self.victims,
            self.graceful,
            self.epoch,
            self.moves_copied,
            self.moves_rebuilt,
            self.parity_patched,
            self.migrated_bytes,
            self.chunk_bytes,
            self.bound_bytes,
            self.drills_survived
        )
    }
}

/// The outcome of one seeded churn campaign.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// The seed that produced it (reproduce with the same config).
    pub seed: u64,
    /// Per-round records.
    pub rounds: Vec<ChurnRound>,
    /// Contract violations; empty means the campaign passed.
    pub violations: Vec<String>,
    /// The controller's epoch when the campaign ended.
    pub final_epoch: u64,
}

impl ChurnReport {
    /// `true` when no round violated the membership or recovery
    /// contract.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total scheme-decided chunk migration bytes across all rounds.
    pub fn chunk_bytes_total(&self) -> u64 {
        self.rounds.iter().map(|r| r.chunk_bytes).sum()
    }

    /// Total naive full-re-encode bytes the same churn would have
    /// cost.
    pub fn bound_bytes_total(&self) -> u64 {
        self.rounds.iter().map(|r| r.bound_bytes).sum()
    }

    /// One-line JSON summary (artifact-friendly).
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"seed\":{},\"rounds\":{},\"violations\":{},\"final_epoch\":{},\
             \"chunk_bytes_total\":{},\"bound_bytes_total\":{}}}\n",
            self.seed,
            self.rounds.len(),
            self.violations.len(),
            self.final_epoch,
            self.chunk_bytes_total(),
            self.bound_bytes_total()
        )
    }

    /// JSON array of the per-round records — the placement-epoch /
    /// migration-traffic artifact CI uploads and `BENCH_PR9.json`
    /// embeds.
    pub fn rounds_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, round) in self.rounds.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            out.push_str(&round.to_json());
        }
        out.push_str("\n]\n");
        out
    }
}

/// Runs one seeded churn campaign. See the module docs for the
/// contract each round asserts.
///
/// # Panics
///
/// Panics only on setup errors (invalid `k`/`m` split for the node
/// count); contract violations are collected into the report instead.
pub fn run_churn_campaign(cfg: &ChurnConfig, seed: u64) -> ChurnReport {
    let spec = ClusterSpec::tiny_test(cfg.nodes, cfg.gpus_per_node);
    let engine_cfg = EcCheckConfig::paper_defaults()
        .with_km(cfg.k, cfg.m)
        .with_packet_size(cfg.packet_size)
        .with_save_mode(cfg.save_mode);
    let mut cluster = Cluster::new(spec);
    let mut ecc = EcCheck::initialize(&spec, engine_cfg).expect("valid churn config");
    let mut ctl = PlacementController::new(&spec, &engine_cfg).expect("valid churn config");
    let world = cfg.nodes * cfg.gpus_per_node;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(3));

    let mut rounds = Vec::new();
    let mut violations = Vec::new();
    let drill_combos = combinations(cfg.nodes, cfg.m);

    for round in 1..=cfg.rounds {
        let dicts = churn_dicts(world, seed, round);
        ecc.save(&mut cluster, &dicts).expect("save on a fully-active cluster succeeds");

        // Churn 1..=min(2, m) distinct slots: drain or crash, then a
        // fresh (empty) process takes each slot over and asks to join.
        let churned = if cfg.m >= 2 && rng.gen_bool(cfg.p_double_churn) { 2 } else { 1 };
        let mut victims: Vec<NodeId> = Vec::new();
        while victims.len() < churned {
            let v = rng.gen_range(0..cfg.nodes);
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        let mut graceful = 0usize;
        for &victim in &victims {
            if rng.gen_bool(cfg.p_graceful) {
                graceful += 1;
                ctl.leave(&cluster, victim).expect("alive active slots can drain");
            } else {
                ctl.force_dead(victim);
            }
            cluster.fail_node(victim);
        }

        // Instant 1: victims down, replacements not yet admitted. The
        // checkpoint must still restore bit-exactly from survivors.
        {
            let mut drill = cluster.clone();
            match ecc.load(&mut drill) {
                Ok((restored, _)) if restored == dicts => {}
                Ok(_) => violations.push(format!(
                    "seed {seed} round {round}: degraded-window load returned garbage \
                     (victims {victims:?})"
                )),
                Err(e) => violations.push(format!(
                    "seed {seed} round {round}: degraded-window load failed with {e} \
                     ({} <= m = {} slots down, victims {victims:?})",
                    victims.len(),
                    cfg.m
                )),
            }
        }

        for &victim in &victims {
            cluster.replace_node(victim);
            ctl.join(victim).expect("vacated slots admit replacements");
        }

        // Instant 2: the rebalance must migrate only the churned
        // chunks, stay under the naive full-re-encode bound, and
        // commit exactly one epoch.
        let report = match ctl.rebalance(&mut cluster) {
            Ok(report) => report,
            Err(e) => {
                violations.push(format!(
                    "seed {seed} round {round}: rebalance refused a completable churn: {e}"
                ));
                break;
            }
        };
        if report.epoch != round as u64 {
            violations.push(format!(
                "seed {seed} round {round}: epoch {} is not strictly monotone (expected {round})",
                report.epoch
            ));
        }
        if report.chunk_bytes > report.bound_bytes {
            violations.push(format!(
                "seed {seed} round {round}: chunk migration {} exceeds the full \
                 re-encode bound {}",
                report.chunk_bytes, report.bound_bytes
            ));
        }
        if !ctl.table().fully_active() {
            violations.push(format!(
                "seed {seed} round {round}: rebalance committed with non-active slots"
            ));
        }

        // Instant 3: the engine saved under the old epoch and must be
        // fenced until it adopts the committed placement.
        match ecc.save(&mut cluster, &dicts) {
            Err(EcCheckError::StaleEpoch { .. }) => {}
            other => violations.push(format!(
                "seed {seed} round {round}: stale engine was not fenced (save returned \
                 {})",
                match other {
                    Ok(_) => "Ok".to_string(),
                    Err(e) => format!("{e}"),
                }
            )),
        }
        ecc.apply_placement(ctl.epoch(), ctl.placement().clone())
            .expect("controller epochs only move forward");

        // Instant 4: with the new layout committed, any m further
        // faults must restore bit-exactly...
        let mut drills_survived = 0usize;
        for combo in &drill_combos {
            let mut drill = cluster.clone();
            for &node in combo {
                drill.fail_node(node);
            }
            match ecc.load(&mut drill) {
                Ok((restored, _)) if restored == dicts => drills_survived += 1,
                Ok(_) => violations
                    .push(format!("seed {seed} round {round}: drill {combo:?} restored garbage")),
                Err(e) => violations.push(format!(
                    "seed {seed} round {round}: drill {combo:?} failed with {e} \
                     (m = {} faults must be survivable)",
                    cfg.m
                )),
            }
        }
        // ... and m + 1 faults must be refused cleanly, never garbled.
        {
            let mut drill = cluster.clone();
            for node in 0..=cfg.m {
                drill.fail_node(node);
            }
            if !matches!(ecc.load(&mut drill), Err(EcCheckError::Unrecoverable { .. })) {
                violations.push(format!(
                    "seed {seed} round {round}: {} faults were not refused cleanly",
                    cfg.m + 1
                ));
            }
        }

        // Re-verify on the real cluster (also restores every replica
        // the engine keeps) before the next round saves over it.
        match ecc.load(&mut cluster) {
            Ok((restored, _)) if restored == dicts => {}
            _ => violations.push(format!(
                "seed {seed} round {round}: post-churn load on the healthy cluster \
                 is not bit-exact"
            )),
        }

        rounds.push(ChurnRound {
            round,
            victims,
            graceful,
            epoch: report.epoch,
            moves_copied: report.moves_copied,
            moves_rebuilt: report.moves_rebuilt,
            parity_patched: report.parity_patched,
            migrated_bytes: report.migrated_bytes,
            chunk_bytes: report.chunk_bytes,
            bound_bytes: report.bound_bytes,
            drills_survived,
        });
    }

    ChurnReport { seed, rounds, violations, final_epoch: ctl.epoch() }
}

/// All `C(n, m)` node subsets of size `m`, in lexicographic order.
fn combinations(n: usize, m: usize) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(m);
    fn recurse(
        start: usize,
        n: usize,
        m: usize,
        current: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if current.len() == m {
            out.push(current.clone());
            return;
        }
        for node in start..n {
            current.push(node);
            recurse(node + 1, n, m, current, out);
            current.pop();
        }
    }
    recurse(0, n, m, &mut current, &mut out);
    out
}

/// Deterministic per-round worker states — varying payload sizes so
/// padding and heterogeneous shards are exercised across churn.
fn churn_dicts(world: usize, seed: u64, round: usize) -> Vec<StateDict> {
    let mut rng = StdRng::seed_from_u64(seed ^ ((round as u64) << 32) ^ 0xC0DE);
    (0..world)
        .map(|w| {
            let mut sd = StateDict::new();
            sd.insert("iteration", Value::Int(round as i64));
            sd.insert("rank", Value::Int(w as i64));
            sd.insert("tag", Value::Str(format!("churn-s{seed}-r{round}-w{w}")));
            let len = 32 + rng.gen_range(0..160usize);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
            sd.insert("payload", Value::Bytes(payload));
            sd
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_churn_campaign_passes() {
        let cfg = ChurnConfig::standard();
        let report = run_churn_campaign(&cfg, 3);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.rounds.len(), cfg.rounds);
        assert_eq!(report.final_epoch, cfg.rounds as u64, "one epoch per round");
        let drills = combinations(cfg.nodes, cfg.m).len();
        assert!(report.rounds.iter().all(|r| r.drills_survived == drills));
        assert!(report.chunk_bytes_total() <= report.bound_bytes_total());
    }

    #[test]
    fn churn_campaigns_are_deterministic_per_seed() {
        let cfg = ChurnConfig::standard();
        let a = run_churn_campaign(&cfg, 9);
        let b = run_churn_campaign(&cfg, 9);
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn seed_matrix_mixes_drains_and_crashes() {
        let cfg = ChurnConfig::standard();
        let mut copied = 0;
        let mut rebuilt = 0;
        for seed in 0..4 {
            let report = run_churn_campaign(&cfg, seed);
            assert!(report.passed(), "seed {seed} violations: {:?}", report.violations);
            copied += report.rounds.iter().map(|r| r.moves_copied).sum::<usize>();
            rebuilt += report.rounds.iter().map(|r| r.moves_rebuilt).sum::<usize>();
        }
        assert!(copied > 0, "no graceful drain ever exercised the copy path");
        assert!(rebuilt > 0, "no crash ever exercised the rebuild path");
    }

    #[test]
    fn reports_render_valid_artifact_json() {
        let report = run_churn_campaign(&ChurnConfig::standard(), 1);
        let summary = report.summary_json();
        assert!(summary.contains("\"chunk_bytes_total\""));
        let rounds = report.rounds_json();
        assert!(rounds.starts_with("[\n"));
        assert!(rounds.trim_end().ends_with(']'));
        assert_eq!(rounds.matches("\"epoch\"").count(), report.rounds.len());
    }

    #[test]
    fn combinations_enumerate_all_subsets() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(5, 3).len(), 10);
        assert_eq!(combinations(3, 1), vec![vec![0], vec![1], vec![2]]);
    }
}
