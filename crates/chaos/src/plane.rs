use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use ecc_cluster::{ClusterError, DataPlane, NodeId};
use ecc_telemetry::Recorder;
use ecc_trace::{Tracer, TrackId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Trace pid for the chaos fault track, after the engine's
/// [`ecc_trace::DRIVER_PID`] and [`ecc_trace::CODING_PID`].
pub const CHAOS_PID: u64 = 1_000_002;

/// What a single injected fault was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A node crashed: it stops serving reads/writes and its volatile
    /// blobs are lost (host memory does not survive a power cycle).
    Crash,
    /// A `put_local` transfer was silently dropped — the sender saw
    /// success, the blob was never stored.
    DropPut,
    /// A `put_local` transfer was delivered twice (retransmission).
    /// The blob store is idempotent, so this must be harmless.
    DuplicatePut,
    /// A `put_local` payload had bits flipped in flight.
    CorruptPut,
    /// A stored blob had bits flipped at rest (memory corruption).
    CorruptAtRest,
    /// A `get_local` read transiently returned nothing for a blob that
    /// is actually present; later reads succeed.
    TransientGet,
}

impl FaultKind {
    /// Telemetry counter/event name for this fault kind.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Crash => "chaos.fault.crash",
            FaultKind::DropPut => "chaos.fault.drop_put",
            FaultKind::DuplicatePut => "chaos.fault.duplicate_put",
            FaultKind::CorruptPut => "chaos.fault.corrupt_put",
            FaultKind::CorruptAtRest => "chaos.fault.corrupt_at_rest",
            FaultKind::TransientGet => "chaos.fault.transient_get",
        }
    }
}

/// One injected fault, as recorded in the plane's fault log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Storage-op counter value when the fault fired (see
    /// [`ChaosPlane::op`]).
    pub op: u64,
    /// What happened.
    pub kind: FaultKind,
    /// The node it happened on.
    pub node: NodeId,
    /// The blob key involved (empty for [`FaultKind::Crash`]).
    pub key: String,
}

/// Which storage tier served a successful fetch (see
/// [`ChaosPlane::fetch_log`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Tier 0: a peer node's host memory (`get_local`).
    Peer,
    /// Tier 1: the remote store of last resort (`get_remote`).
    Remote,
}

impl Tier {
    /// Telemetry counter name for fetches served by this tier.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Peer => "chaos.fetch.peer",
            Tier::Remote => "chaos.fetch.remote",
        }
    }
}

/// One successful blob fetch, with the tier that served it — the
/// provenance record the tiered-store campaigns compare across save
/// modes (like the fault log, the sequence must be executor-agnostic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchRecord {
    /// Storage-op counter value at the fetch. Remote fetches do not
    /// tick the counter (tier 1 is outside the peer op clock), so
    /// theirs is the op of the last local operation before them.
    pub op: u64,
    /// The tier that served the bytes.
    pub tier: Tier,
    /// The serving node for [`Tier::Peer`]; `None` for remote fetches.
    pub node: Option<NodeId>,
    /// The blob key fetched.
    pub key: String,
}

/// Probabilities and knobs of a [`ChaosPlane`].
///
/// All randomness derives from `seed`, so a given (config, workload)
/// pair always injects the identical fault sequence.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// RNG seed for all probabilistic fault draws.
    pub seed: u64,
    /// Probability that a `put_local` is silently dropped.
    pub p_drop_put: f64,
    /// Probability that a `put_local` is delivered twice.
    pub p_duplicate_put: f64,
    /// Probability that a `put_local` payload is bit-flipped in flight.
    pub p_corrupt_put: f64,
    /// Probability that the first `get_local` of a given `(node, key)`
    /// starts a transient outage for that blob.
    pub p_transient_get: f64,
    /// How many consecutive `get_local` calls fail once a transient
    /// outage starts (the blob then reads fine forever).
    pub transient_get_failures: u32,
    /// Upper bound on bits flipped per corruption event (at least 1).
    pub max_bit_flips: usize,
}

impl ChaosConfig {
    /// A configuration that injects nothing on its own: all
    /// probabilities zero. Faults still happen when explicitly
    /// requested ([`ChaosPlane::crash_now`], [`ChaosPlane::corrupt_blob`],
    /// [`ChaosPlane::schedule_crash_at_op`]).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            p_drop_put: 0.0,
            p_duplicate_put: 0.0,
            p_corrupt_put: 0.0,
            p_transient_get: 0.0,
            transient_get_failures: 1,
            max_bit_flips: 8,
        }
    }

    /// Overrides the drop-put probability.
    pub fn with_drop_put(mut self, p: f64) -> Self {
        self.p_drop_put = p;
        self
    }

    /// Overrides the duplicate-put probability.
    pub fn with_duplicate_put(mut self, p: f64) -> Self {
        self.p_duplicate_put = p;
        self
    }

    /// Overrides the corrupt-put probability.
    pub fn with_corrupt_put(mut self, p: f64) -> Self {
        self.p_corrupt_put = p;
        self
    }

    /// Overrides the transient-get probability and outage length.
    pub fn with_transient_get(mut self, p: f64, failures: u32) -> Self {
        self.p_transient_get = p;
        self.transient_get_failures = failures;
        self
    }

    /// Overrides the per-event bit-flip budget.
    pub fn with_max_bit_flips(mut self, flips: usize) -> Self {
        self.max_bit_flips = flips.max(1);
        self
    }
}

/// Interior-mutable chaos state. `get_local` takes `&self` in the
/// [`DataPlane`] trait but must advance the op clock, the RNG, and the
/// transient-outage bookkeeping, hence the [`RefCell`].
#[derive(Debug)]
struct State {
    rng: StdRng,
    op: u64,
    /// Chaos-dead overlay; a node here refuses reads/writes even if
    /// the inner plane still considers it alive.
    dead: BTreeSet<NodeId>,
    /// Dead nodes whose volatile blobs still await deletion from the
    /// inner plane (a crash can fire inside `get_local`, which has no
    /// `&mut` access to the inner plane; the wipe runs at the next
    /// mutable entry point). Always a subset of `dead`.
    pending_wipe: BTreeSet<NodeId>,
    /// Keys written through this plane per node — the node's volatile
    /// contents, i.e. what a crash destroys.
    written: BTreeMap<NodeId, BTreeSet<String>>,
    /// Remaining transient failures per `(node, key)`. An entry at 0
    /// means the outage is over and the blob reads fine forever.
    transient: BTreeMap<(NodeId, String), u32>,
    /// Scheduled `(fire_at_op, node)` crashes, unordered.
    crashes_at: Vec<(u64, NodeId)>,
    log: Vec<FaultRecord>,
    fetches: Vec<FetchRecord>,
}

/// A deterministic fault-injecting wrapper around any [`DataPlane`].
///
/// Every `put_local`/`get_local`/`delete_local` call ticks an op
/// counter; scheduled crashes fire when the counter reaches their op,
/// which is how a test places a crash *between* the gather and restore
/// phases of a single `load` call. Probabilistic faults (drops,
/// duplicates, in-flight corruption, transient reads) draw from one
/// seeded RNG, so a fixed workload replays the identical fault
/// sequence. Remote storage (`put_remote`/`get_remote`) passes through
/// untouched: the paper models it as reliable, slow storage.
#[derive(Debug)]
pub struct ChaosPlane<P: DataPlane> {
    inner: P,
    cfg: ChaosConfig,
    state: RefCell<State>,
    recorder: Recorder,
    trace: Option<(Tracer, TrackId)>,
}

impl<P: DataPlane> ChaosPlane<P> {
    /// Wraps `inner` with the given chaos configuration.
    pub fn new(inner: P, cfg: ChaosConfig) -> Self {
        Self {
            inner,
            cfg,
            state: RefCell::new(State {
                rng: StdRng::seed_from_u64(cfg.seed),
                op: 0,
                dead: BTreeSet::new(),
                pending_wipe: BTreeSet::new(),
                written: BTreeMap::new(),
                transient: BTreeMap::new(),
                crashes_at: Vec::new(),
                log: Vec::new(),
                fetches: Vec::new(),
            }),
            recorder: Recorder::new(),
            trace: None,
        }
    }

    /// The wrapped plane.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped plane (e.g. to replace a node on
    /// the underlying [`ecc_cluster::Cluster`]).
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Unwraps the plane, discarding chaos state.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Routes fault counters and events to `recorder` (share the
    /// engine's recorder to interleave faults with recovery metrics).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Emits a trace instant per injected fault onto a dedicated
    /// "chaos" track of `tracer`.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        let track = tracer.track(CHAOS_PID, "chaos", "faults");
        self.trace = Some((tracer.clone(), track));
    }

    /// Current storage-op counter (ticks on every local read, write,
    /// and delete through this plane).
    pub fn op(&self) -> u64 {
        self.state.borrow().op
    }

    /// Everything injected so far, in firing order.
    pub fn fault_log(&self) -> Vec<FaultRecord> {
        self.state.borrow().log.clone()
    }

    /// Every successful fetch so far with its tier provenance, in
    /// serving order — which tier (peer memory vs remote store)
    /// produced each blob the workload read.
    pub fn fetch_log(&self) -> Vec<FetchRecord> {
        self.state.borrow().fetches.clone()
    }

    /// Appends a fetch-provenance record and mirrors it to telemetry.
    fn record_fetch(&self, tier: Tier, node: Option<NodeId>, key: &str) {
        let mut st = self.state.borrow_mut();
        let op = st.op;
        self.recorder.counter(tier.label()).incr();
        st.fetches.push(FetchRecord { op, tier, node, key: key.to_string() });
    }

    /// Crashes `node` immediately: it stops serving and its volatile
    /// blobs (everything written through this plane) are lost.
    pub fn crash_now(&mut self, node: NodeId) {
        let op = self.state.borrow().op;
        self.mark_crashed(node, op);
        self.wipe_pending();
    }

    /// Schedules a crash of `node` the moment the op counter reaches
    /// `at_op` — e.g. `plane.op() + 5` strikes five storage operations
    /// into whatever the engine does next.
    pub fn schedule_crash_at_op(&mut self, node: NodeId, at_op: u64) {
        self.state.borrow_mut().crashes_at.push((at_op, node));
    }

    /// Cancels any scheduled crashes that have not fired yet (a crash
    /// aimed mid-load never fires when the load refuses early; left
    /// armed, it would strike an unrelated later operation).
    pub fn cancel_scheduled_crashes(&mut self) {
        self.state.borrow_mut().crashes_at.clear();
    }

    /// Revives a chaos-crashed node. Its blobs stay lost — host memory
    /// is volatile — so it comes back empty, like a replacement node.
    pub fn heal(&mut self, node: NodeId) {
        self.wipe_pending();
        self.state.borrow_mut().dead.remove(&node);
    }

    /// Flips bits in a stored blob at rest. Returns `false` when the
    /// node is down or the blob does not exist (nothing was injected,
    /// nothing is logged).
    pub fn corrupt_blob(&mut self, node: NodeId, key: &str) -> bool {
        if self.state.borrow().dead.contains(&node) {
            return false;
        }
        let Some(mut blob) = self.inner.get_local(node, key) else {
            return false;
        };
        if blob.is_empty() {
            return false;
        }
        {
            let mut st = self.state.borrow_mut();
            Self::flip_bits(&mut st.rng, &mut blob, self.cfg.max_bit_flips);
            let op = st.op;
            self.record(
                &mut st,
                FaultRecord { op, kind: FaultKind::CorruptAtRest, node, key: key.to_string() },
            );
        }
        self.inner
            .put_local(node, key, blob)
            .expect("rewriting an existing blob in place cannot fail");
        true
    }

    fn flip_bits(rng: &mut StdRng, blob: &mut [u8], max_flips: usize) {
        let flips = rng.gen_range(1..=max_flips.max(1));
        for _ in 0..flips {
            let bit = rng.gen_range(0..blob.len() * 8);
            blob[bit / 8] ^= 1 << (bit % 8);
        }
    }

    /// Appends to the log and mirrors the fault to telemetry/trace.
    fn record(&self, st: &mut State, rec: FaultRecord) {
        self.recorder.counter(rec.kind.label()).incr();
        self.recorder
            .event(rec.kind.label(), format!("op={} node={} key={}", rec.op, rec.node, rec.key));
        if let Some((tracer, track)) = &self.trace {
            tracer.instant(*track, rec.kind.label(), format!("node={} key={}", rec.node, rec.key));
        }
        st.log.push(rec);
    }

    fn mark_crashed(&self, node: NodeId, op: u64) {
        let mut st = self.state.borrow_mut();
        if st.dead.contains(&node) {
            return;
        }
        st.dead.insert(node);
        st.pending_wipe.insert(node);
        self.record(&mut st, FaultRecord { op, kind: FaultKind::Crash, node, key: String::new() });
    }

    /// Deletes the volatile blobs of freshly-crashed nodes from the
    /// inner plane. Needs `&mut self`, so `&self` paths only queue the
    /// wipe; until it runs, the dead overlay already hides the blobs.
    fn wipe_pending(&mut self) {
        let pending: Vec<NodeId> = {
            let mut st = self.state.borrow_mut();
            std::mem::take(&mut st.pending_wipe).into_iter().collect()
        };
        for node in pending {
            let keys: Vec<String> = {
                let mut st = self.state.borrow_mut();
                st.written.remove(&node).unwrap_or_default().into_iter().collect()
            };
            for key in keys {
                self.inner.delete_local(node, &key);
            }
        }
    }

    /// Advances the op clock and fires any due scheduled crashes.
    fn tick(&self) {
        let due: Vec<(u64, NodeId)> = {
            let mut st = self.state.borrow_mut();
            st.op += 1;
            let op = st.op;
            let (due, rest) = st.crashes_at.iter().copied().partition(|&(at, _)| at <= op);
            st.crashes_at = rest;
            due
        };
        for (_, node) in due {
            let op = self.state.borrow().op;
            self.mark_crashed(node, op);
        }
    }
}

impl<P: DataPlane> DataPlane for ChaosPlane<P> {
    fn nodes(&self) -> usize {
        self.inner.nodes()
    }

    fn alive(&self, node: NodeId) -> bool {
        !self.state.borrow().dead.contains(&node) && self.inner.alive(node)
    }

    fn put_local(&mut self, node: NodeId, key: &str, bytes: Vec<u8>) -> Result<(), ClusterError> {
        self.tick();
        self.wipe_pending();
        if self.state.borrow().dead.contains(&node) {
            return Err(ClusterError::NodeDown { node });
        }
        let mut bytes = bytes;
        // Draw all three fault decisions unconditionally so the RNG
        // stream does not depend on which faults fire.
        let (dropped, duplicated) = {
            let mut st = self.state.borrow_mut();
            let dropped = st.rng.gen_bool(self.cfg.p_drop_put);
            let corrupt = st.rng.gen_bool(self.cfg.p_corrupt_put);
            let duplicated = st.rng.gen_bool(self.cfg.p_duplicate_put);
            let op = st.op;
            if dropped {
                self.record(
                    &mut st,
                    FaultRecord { op, kind: FaultKind::DropPut, node, key: key.to_string() },
                );
            } else {
                if corrupt && !bytes.is_empty() {
                    Self::flip_bits(&mut st.rng, &mut bytes, self.cfg.max_bit_flips);
                    self.record(
                        &mut st,
                        FaultRecord { op, kind: FaultKind::CorruptPut, node, key: key.to_string() },
                    );
                }
                if duplicated {
                    self.record(
                        &mut st,
                        FaultRecord {
                            op,
                            kind: FaultKind::DuplicatePut,
                            node,
                            key: key.to_string(),
                        },
                    );
                }
            }
            (dropped, duplicated)
        };
        if dropped {
            // The sender sees success; the blob never lands.
            return Ok(());
        }
        if duplicated {
            // Retransmission: deliver the same payload twice. The blob
            // store overwrites in place, which is exactly the
            // idempotency the engine relies on.
            self.inner.put_local(node, key, bytes.clone())?;
        }
        self.state.borrow_mut().written.entry(node).or_default().insert(key.to_string());
        self.inner.put_local(node, key, bytes)
    }

    fn get_local(&self, node: NodeId, key: &str) -> Option<Vec<u8>> {
        self.tick();
        {
            let mut st = self.state.borrow_mut();
            if st.dead.contains(&node) {
                return None;
            }
            if self.cfg.p_transient_get > 0.0 {
                let outage_key = (node, key.to_string());
                let op = st.op;
                match st.transient.get_mut(&outage_key) {
                    Some(0) => {} // outage over; reads fine forever
                    Some(remaining) => {
                        *remaining -= 1;
                        self.record(
                            &mut st,
                            FaultRecord {
                                op,
                                kind: FaultKind::TransientGet,
                                node,
                                key: key.to_string(),
                            },
                        );
                        return None;
                    }
                    None => {
                        if st.rng.gen_bool(self.cfg.p_transient_get) {
                            let remaining = self.cfg.transient_get_failures.saturating_sub(1);
                            st.transient.insert(outage_key, remaining);
                            self.record(
                                &mut st,
                                FaultRecord {
                                    op,
                                    kind: FaultKind::TransientGet,
                                    node,
                                    key: key.to_string(),
                                },
                            );
                            return None;
                        }
                        st.transient.insert(outage_key, 0);
                    }
                }
            }
        }
        let got = self.inner.get_local(node, key);
        if got.is_some() {
            self.record_fetch(Tier::Peer, Some(node), key);
        }
        got
    }

    fn delete_local(&mut self, node: NodeId, key: &str) {
        self.tick();
        self.wipe_pending();
        if self.state.borrow().dead.contains(&node) {
            return;
        }
        if let Some(keys) = self.state.borrow_mut().written.get_mut(&node) {
            keys.remove(key);
        }
        self.inner.delete_local(node, key);
    }

    fn put_remote(&mut self, key: &str, bytes: Vec<u8>) {
        self.inner.put_remote(key, bytes);
    }

    fn get_remote(&self, key: &str) -> Option<Vec<u8>> {
        // Remote passthrough stays untouched by faults, but its
        // provenance is recorded: a restore that was served by tier 1
        // must say so, identically under either save executor.
        let got = self.inner.get_remote(key);
        if got.is_some() {
            self.record_fetch(Tier::Remote, None, key);
        }
        got
    }

    fn local_keys(&self, node: NodeId) -> Vec<String> {
        // Key listing is a control-plane query, not a storage op: no
        // tick, no faults — but the dead overlay still hides the node.
        if self.state.borrow().dead.contains(&node) {
            return Vec::new();
        }
        self.inner.local_keys(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_cluster::{Cluster, ClusterSpec};

    fn plane(cfg: ChaosConfig) -> ChaosPlane<Cluster> {
        ChaosPlane::new(Cluster::new(ClusterSpec::tiny_test(4, 1)), cfg)
    }

    #[test]
    fn quiet_plane_is_transparent() {
        let mut p = plane(ChaosConfig::quiet(1));
        p.put_local(0, "a", vec![1, 2, 3]).unwrap();
        assert_eq!(p.get_local(0, "a"), Some(vec![1u8, 2, 3]));
        p.delete_local(0, "a");
        assert!(p.get_local(0, "a").is_none());
        assert!(p.fault_log().is_empty());
        assert_eq!(p.op(), 4);
    }

    #[test]
    fn crash_hides_and_wipes_written_blobs() {
        let mut p = plane(ChaosConfig::quiet(1));
        p.put_local(2, "a", vec![9; 16]).unwrap();
        p.crash_now(2);
        assert!(!p.alive(2));
        assert!(p.get_local(2, "a").is_none());
        assert!(matches!(p.put_local(2, "b", vec![1]), Err(ClusterError::NodeDown { node: 2 })));
        p.heal(2);
        assert!(p.alive(2));
        // Volatile memory did not survive the crash.
        assert!(p.get_local(2, "a").is_none());
        assert!(p.inner().get_local(2, "a").is_none());
        assert_eq!(p.fault_log().len(), 1);
        assert_eq!(p.fault_log()[0].kind, FaultKind::Crash);
    }

    #[test]
    fn scheduled_crash_fires_mid_sequence_even_from_reads() {
        let mut p = plane(ChaosConfig::quiet(1));
        p.put_local(1, "a", vec![7; 8]).unwrap();
        p.schedule_crash_at_op(1, p.op() + 2);
        assert_eq!(p.get_local(1, "a"), Some(vec![7u8; 8])); // op+1: alive
        assert!(p.get_local(1, "a").is_none()); // op+2: crash fires
        assert!(!p.alive(1));
        // The wipe was queued from the `&self` read path and runs at
        // the next mutable entry point.
        p.heal(1);
        assert!(p.inner().get_local(1, "a").is_none());
    }

    #[test]
    fn dropped_put_never_lands() {
        let mut p = plane(ChaosConfig::quiet(3).with_drop_put(1.0));
        p.put_local(0, "a", vec![1, 2, 3]).unwrap();
        assert!(p.get_local(0, "a").is_none());
        assert_eq!(p.fault_log().len(), 1);
        assert_eq!(p.fault_log()[0].kind, FaultKind::DropPut);
    }

    #[test]
    fn corrupt_put_flips_bits_in_flight() {
        let mut p = plane(ChaosConfig::quiet(3).with_corrupt_put(1.0));
        let original = vec![0u8; 64];
        p.put_local(0, "a", original.clone()).unwrap();
        let stored = p.get_local(0, "a").unwrap();
        assert_eq!(stored.len(), original.len());
        assert_ne!(stored, original);
        assert!(p.fault_log().iter().any(|f| f.kind == FaultKind::CorruptPut));
    }

    #[test]
    fn duplicated_put_is_idempotent() {
        let mut p = plane(ChaosConfig::quiet(3).with_duplicate_put(1.0));
        p.put_local(0, "a", vec![5; 32]).unwrap();
        assert_eq!(p.get_local(0, "a"), Some(vec![5u8; 32]));
        assert!(p.fault_log().iter().any(|f| f.kind == FaultKind::DuplicatePut));
    }

    #[test]
    fn transient_get_recovers_after_configured_failures() {
        let mut p = plane(ChaosConfig::quiet(3).with_transient_get(1.0, 2));
        p.put_local(0, "a", vec![1]).unwrap();
        assert!(p.get_local(0, "a").is_none());
        assert!(p.get_local(0, "a").is_none());
        assert_eq!(p.get_local(0, "a"), Some(vec![1u8]));
        assert_eq!(p.get_local(0, "a"), Some(vec![1u8]));
        let transients = p.fault_log().iter().filter(|f| f.kind == FaultKind::TransientGet).count();
        assert_eq!(transients, 2);
    }

    #[test]
    fn corrupt_blob_at_rest_changes_stored_bytes() {
        let mut p = plane(ChaosConfig::quiet(3));
        p.put_local(1, "a", vec![0xAA; 16]).unwrap();
        assert!(p.corrupt_blob(1, "a"));
        assert_ne!(p.get_local(1, "a").unwrap(), &[0xAA; 16][..]);
        assert!(!p.corrupt_blob(1, "missing"));
        p.crash_now(1);
        assert!(!p.corrupt_blob(1, "a"));
    }

    #[test]
    fn same_seed_same_workload_same_fault_log() {
        let run = || {
            let mut p = plane(
                ChaosConfig::quiet(42)
                    .with_drop_put(0.3)
                    .with_corrupt_put(0.3)
                    .with_transient_get(0.3, 1),
            );
            for i in 0..40u8 {
                let node = usize::from(i % 4);
                p.put_local(node, &format!("k{i}"), vec![i; 24]).unwrap();
                let _ = p.get_local(node, &format!("k{i}"));
            }
            p.fault_log()
        };
        let a = run();
        assert!(!a.is_empty());
        assert_eq!(a, run());
    }

    #[test]
    fn faults_reach_telemetry_and_trace() {
        let mut p = plane(ChaosConfig::quiet(1));
        let recorder = Recorder::new();
        let tracer = Tracer::for_recorder(&recorder);
        p.set_recorder(recorder.clone());
        p.set_tracer(&tracer);
        p.put_local(0, "a", vec![1; 8]).unwrap();
        p.corrupt_blob(0, "a");
        p.crash_now(3);
        assert_eq!(recorder.counter(FaultKind::CorruptAtRest.label()).get(), 1);
        assert_eq!(recorder.counter(FaultKind::Crash.label()).get(), 1);
        assert!(!tracer.is_empty());
    }
}
