//! Seeded churn-campaign runner producing the PR 9 migration-traffic
//! artifact.
//!
//! Runs the elastic-membership churn campaign over a seed matrix,
//! checks the migration-traffic gate (chunk migration bytes must stay
//! under the naive full-re-encode bound on every committed rebalance),
//! and writes a single JSON document — `BENCH_PR9.json` in CI — that
//! records per-round placement epochs, move taxonomy, and the measured
//! traffic next to the bound. Exits non-zero on any contract
//! violation or gate failure.
//!
//! ```text
//! churn-campaign [--seeds 0,1,2,3] [--rounds 6] [--out BENCH_PR9.json] \
//!     [--rounds-log churn_rounds.json]
//! ```

use std::process::ExitCode;

use ecc_chaos::{run_churn_campaign, ChurnConfig};

fn main() -> ExitCode {
    let mut seeds: Vec<u64> = (0..4).collect();
    let mut cfg = ChurnConfig::standard();
    let mut out_path: Option<String> = None;
    let mut rounds_log_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seeds" => {
                seeds = value("--seeds")
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("--seeds wants comma-separated integers, got {s:?}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--rounds" => {
                cfg.rounds = value("--rounds").parse().unwrap_or_else(|_| {
                    eprintln!("--rounds wants an integer");
                    std::process::exit(2);
                });
            }
            "--out" => out_path = Some(value("--out")),
            "--rounds-log" => rounds_log_path = Some(value("--rounds-log")),
            "--help" | "-h" => {
                println!(
                    "usage: churn-campaign [--seeds 0,1,2] [--rounds N] [--out FILE] \
                     [--rounds-log FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let mut all_passed = true;
    let mut under_bound = true;
    let mut epochs_monotone = true;
    let mut chunk_total = 0u64;
    let mut bound_total = 0u64;
    let mut copied = 0usize;
    let mut rebuilt = 0usize;
    let mut patched = 0usize;
    let mut seed_blocks = String::new();
    let mut rounds_log = String::from("[\n");

    for (i, &seed) in seeds.iter().enumerate() {
        let report = run_churn_campaign(&cfg, seed);
        print!("{}", report.summary_json());
        for violation in &report.violations {
            eprintln!("VIOLATION: {violation}");
            all_passed = false;
        }
        for round in &report.rounds {
            if round.chunk_bytes > round.bound_bytes {
                under_bound = false;
            }
            if round.epoch != round.round as u64 {
                epochs_monotone = false;
            }
            copied += round.moves_copied;
            rebuilt += round.moves_rebuilt;
            patched += round.parity_patched;
        }
        chunk_total += report.chunk_bytes_total();
        bound_total += report.bound_bytes_total();

        if i > 0 {
            seed_blocks.push_str(",\n");
            rounds_log.push_str(",\n");
        }
        seed_blocks.push_str(&format!(
            "    {{\"seed\": {seed}, \"final_epoch\": {}, \"violations\": {}, \
             \"chunk_bytes\": {}, \"bound_bytes\": {}, \"rounds\": {}}}",
            report.final_epoch,
            report.violations.len(),
            report.chunk_bytes_total(),
            report.bound_bytes_total(),
            indent(report.rounds_json().trim_end(), 4)
        ));
        rounds_log.push_str(&format!(
            "  {{\"seed\": {seed}, \"rounds\": {}}}",
            indent(report.rounds_json().trim_end(), 2)
        ));
    }
    rounds_log.push_str("\n]\n");

    // The migration-traffic gate of the elastic control plane: chunk
    // bytes moved per rebalance must undercut the naive full-re-encode
    // cost (k + m + d chunk transfers per churned version).
    let ratio = if bound_total > 0 { chunk_total as f64 / bound_total as f64 } else { 0.0 };
    let gates_ok = all_passed && under_bound && epochs_monotone;
    let doc = format!(
        "{{\n  \"bench\": \"churn_campaign\",\n  \"config\": {{\"nodes\": {}, \"gpus\": {}, \
         \"k\": {}, \"m\": {}, \"rounds\": {}, \"seeds\": {:?}}},\n  \"seeds\": [\n{}\n  ],\n  \
         \"totals\": {{\"chunk_bytes\": {}, \"bound_bytes\": {}, \"migration_ratio\": {:.4}, \
         \"moves_copied\": {}, \"moves_rebuilt\": {}, \"parity_patched\": {}}},\n  \
         \"gates\": {{\"campaign_passed\": {}, \"migration_under_bound\": {}, \
         \"epochs_monotone\": {}, \"gate_enforced\": true}}\n}}\n",
        cfg.nodes,
        cfg.gpus_per_node,
        cfg.k,
        cfg.m,
        cfg.rounds,
        seeds,
        seed_blocks,
        chunk_total,
        bound_total,
        ratio,
        copied,
        rebuilt,
        patched,
        all_passed,
        under_bound,
        epochs_monotone,
    );

    println!(
        "churn campaign: {} seeds x {} rounds, {copied} copied / {rebuilt} rebuilt \
         ({patched} parity-patched), migration {chunk_total} B vs bound {bound_total} B \
         (ratio {ratio:.3})",
        seeds.len(),
        cfg.rounds
    );

    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = rounds_log_path {
        if let Err(e) = std::fs::write(&path, &rounds_log) {
            eprintln!("failed to write rounds log {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if gates_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("churn gates failed — see VIOLATION lines above");
        ExitCode::FAILURE
    }
}

/// Re-indents a multi-line JSON fragment so it nests readably.
fn indent(json: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    json.lines()
        .enumerate()
        .map(|(i, line)| if i == 0 { line.to_string() } else { format!("{pad}{line}") })
        .collect::<Vec<_>>()
        .join("\n")
}
