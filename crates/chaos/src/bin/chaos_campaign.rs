//! Seeded chaos-campaign runner for CI and local debugging.
//!
//! Runs the standard campaign over a seed matrix and exits non-zero on
//! any recovery-contract violation. Optionally writes the fault log
//! and the final telemetry snapshot as JSON artifacts.
//!
//! ```text
//! chaos-campaign [--seeds 0,1,2,3] [--rounds 8] [--save-mode pipelined] \
//!     [--fault-log faults.json] [--telemetry telemetry.json]
//! ```

use std::process::ExitCode;

use ecc_chaos::{run_campaign, CampaignConfig};
use eccheck::SaveMode;

fn main() -> ExitCode {
    let mut seeds: Vec<u64> = (0..4).collect();
    let mut cfg = CampaignConfig::standard();
    let mut fault_log_path: Option<String> = None;
    let mut telemetry_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seeds" => {
                seeds = value("--seeds")
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("--seeds wants comma-separated integers, got {s:?}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--rounds" => {
                cfg.rounds = value("--rounds").parse().unwrap_or_else(|_| {
                    eprintln!("--rounds wants an integer");
                    std::process::exit(2);
                });
            }
            "--fault-log" => fault_log_path = Some(value("--fault-log")),
            "--telemetry" => telemetry_path = Some(value("--telemetry")),
            "--save-mode" => {
                cfg.save_mode = match value("--save-mode").as_str() {
                    "sequential" => SaveMode::Sequential,
                    "pipelined" => SaveMode::Pipelined,
                    other => {
                        eprintln!("--save-mode wants 'sequential' or 'pipelined', got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: chaos-campaign [--seeds 0,1,2] [--rounds N] \
                     [--save-mode sequential|pipelined] [--fault-log FILE] [--telemetry FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let mut all_passed = true;
    let mut recovered = 0;
    let mut refused = 0;
    let mut fault_logs = String::from("[\n");
    let mut telemetry = String::new();

    for (i, &seed) in seeds.iter().enumerate() {
        let report = run_campaign(&cfg, seed);
        recovered += report.recovered();
        refused += report.refused();
        print!("{}", report.summary_json());
        for violation in &report.violations {
            eprintln!("VIOLATION: {violation}");
            all_passed = false;
        }
        if i > 0 {
            fault_logs.push_str(",\n");
        }
        fault_logs.push_str(&format!(
            "{{\"seed\": {seed}, \"faults\": {}}}",
            report.fault_log_json().trim_end()
        ));
        telemetry = report.telemetry_json;
    }
    fault_logs.push_str("\n]\n");

    println!(
        "campaign ({:?} saves): {} seeds x {} rounds, {recovered} recovered, {refused} refused",
        cfg.save_mode,
        seeds.len(),
        cfg.rounds
    );

    if let Some(path) = fault_log_path {
        if let Err(e) = std::fs::write(&path, &fault_logs) {
            eprintln!("failed to write fault log {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = telemetry_path {
        if let Err(e) = std::fs::write(&path, &telemetry) {
            eprintln!("failed to write telemetry snapshot {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if all_passed {
        ExitCode::SUCCESS
    } else {
        eprintln!("recovery contract violated — see VIOLATION lines above");
        ExitCode::FAILURE
    }
}
