//! Seeded chaos-campaign runner for CI and local debugging.
//!
//! Runs the standard campaign over a seed matrix and exits non-zero on
//! any recovery-contract violation. Optionally writes the fault log
//! and the final telemetry snapshot as JSON artifacts.
//!
//! ```text
//! chaos-campaign [--seeds 0,1,2,3] [--rounds 8] [--save-mode pipelined] \
//!     [--tiered] [--fault-log faults.json] [--fetch-log fetches.json] \
//!     [--telemetry telemetry.json] \
//!     [--obs 127.0.0.1:9184] [--obs-hold-ms 2000]
//! ```
//!
//! `--tiered` swaps in the tiered-store campaign (mid-drain crashes,
//! tier-1 loss, tier-0 heavy loss, delta torn-update refusal);
//! `--fetch-log` writes each seed's tier-provenance fetch log, the
//! artifact CI diffs across save executors.
//!
//! With `--obs ADDR` the campaign serves the live observability plane
//! (`/metrics`, `/health`, `/ready`, `/events`) while it runs; the
//! engine reports into the exporter's recorder, crashes drive the
//! node-health registry, and `--obs-hold-ms` keeps the exporter up
//! after the last seed so a scraper can grab a final state.

use std::process::ExitCode;
use std::sync::Arc;

use ecc_chaos::{
    campaign_slos, run_campaign, run_campaign_observed, run_tiered_campaign, CampaignConfig,
};
use ecc_cluster::{HealthConfig, HealthRegistry};
use ecc_obs::{ObsHub, ObsHubConfig, ObsServer};
use ecc_telemetry::Recorder;
use eccheck::SaveMode;

fn main() -> ExitCode {
    let mut seeds: Vec<u64> = (0..4).collect();
    let mut cfg = CampaignConfig::standard();
    let mut fault_log_path: Option<String> = None;
    let mut fetch_log_path: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut tiered = false;
    let mut obs_addr: Option<String> = None;
    let mut obs_hold_ms: u64 = 0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seeds" => {
                seeds = value("--seeds")
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("--seeds wants comma-separated integers, got {s:?}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--rounds" => {
                cfg.rounds = value("--rounds").parse().unwrap_or_else(|_| {
                    eprintln!("--rounds wants an integer");
                    std::process::exit(2);
                });
            }
            "--fault-log" => fault_log_path = Some(value("--fault-log")),
            "--fetch-log" => fetch_log_path = Some(value("--fetch-log")),
            "--telemetry" => telemetry_path = Some(value("--telemetry")),
            "--tiered" => tiered = true,
            "--obs" => obs_addr = Some(value("--obs")),
            "--obs-hold-ms" => {
                obs_hold_ms = value("--obs-hold-ms").parse().unwrap_or_else(|_| {
                    eprintln!("--obs-hold-ms wants an integer");
                    std::process::exit(2);
                });
            }
            "--save-mode" => {
                cfg.save_mode = match value("--save-mode").as_str() {
                    "sequential" => SaveMode::Sequential,
                    "pipelined" => SaveMode::Pipelined,
                    other => {
                        eprintln!("--save-mode wants 'sequential' or 'pipelined', got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: chaos-campaign [--seeds 0,1,2] [--rounds N] \
                     [--save-mode sequential|pipelined] [--tiered] [--fault-log FILE] \
                     [--fetch-log FILE] [--telemetry FILE] \
                     [--obs HOST:PORT] [--obs-hold-ms N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let server = match &obs_addr {
        Some(addr) => {
            let hub_cfg = ObsHubConfig { slos: campaign_slos(&cfg), ..ObsHubConfig::default() };
            let hub = Arc::new(
                ObsHub::new(Recorder::new(), hub_cfg)
                    .with_health(HealthRegistry::new(cfg.nodes, HealthConfig::default())),
            );
            match ObsServer::serve(hub, addr) {
                Ok(server) => {
                    eprintln!(
                        "obs: serving /metrics /health /ready /events on {}",
                        server.local_addr()
                    );
                    Some(server)
                }
                Err(e) => {
                    eprintln!("obs: failed to bind {addr}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    let mut all_passed = true;
    let mut recovered = 0;
    let mut refused = 0;
    let mut fault_logs = String::from("[\n");
    let mut fetch_logs = String::from("[\n");
    let mut telemetry = String::new();

    for (i, &seed) in seeds.iter().enumerate() {
        let report = if tiered {
            // The tiered legs inject their faults explicitly, so the
            // run is unobserved (no health registry to drive).
            run_tiered_campaign(&cfg, seed)
        } else {
            match &server {
                Some(server) => run_campaign_observed(&cfg, seed, Some(server.hub())),
                None => run_campaign(&cfg, seed),
            }
        };
        recovered += report.recovered();
        refused += report.refused();
        print!("{}", report.summary_json());
        for violation in &report.violations {
            eprintln!("VIOLATION: {violation}");
            all_passed = false;
        }
        if i > 0 {
            fault_logs.push_str(",\n");
            fetch_logs.push_str(",\n");
        }
        fault_logs.push_str(&format!(
            "{{\"seed\": {seed}, \"faults\": {}}}",
            report.fault_log_json().trim_end()
        ));
        fetch_logs.push_str(&format!(
            "{{\"seed\": {seed}, \"fetches\": {}}}",
            report.fetch_log_json().trim_end()
        ));
        telemetry = report.telemetry_json;
    }
    fault_logs.push_str("\n]\n");
    fetch_logs.push_str("\n]\n");

    println!(
        "campaign ({:?} saves): {} seeds x {} rounds, {recovered} recovered, {refused} refused",
        cfg.save_mode,
        seeds.len(),
        cfg.rounds
    );

    if let Some(path) = fault_log_path {
        if let Err(e) = std::fs::write(&path, &fault_logs) {
            eprintln!("failed to write fault log {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = fetch_log_path {
        if let Err(e) = std::fs::write(&path, &fetch_logs) {
            eprintln!("failed to write fetch log {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = telemetry_path {
        if let Err(e) = std::fs::write(&path, &telemetry) {
            eprintln!("failed to write telemetry snapshot {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(server) = server {
        if obs_hold_ms > 0 {
            eprintln!("obs: holding exporter for {obs_hold_ms}ms");
            std::thread::sleep(std::time::Duration::from_millis(obs_hold_ms));
        }
        server.shutdown();
    }

    if all_passed {
        ExitCode::SUCCESS
    } else {
        eprintln!("recovery contract violated — see VIOLATION lines above");
        ExitCode::FAILURE
    }
}
