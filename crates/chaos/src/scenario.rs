//! Round-level fault scheduling on top of
//! [`ecc_cluster::FailureModel`] / [`ecc_cluster::FailureScenario`].
//!
//! A [`ChaosEvent`] is one fault the campaign applies to a recovery
//! round; a [`ScenarioSchedule`] is the per-round event list for a
//! whole campaign. Schedules are built deterministically from a seed,
//! so a failing round is re-run by number.

use ecc_cluster::{FailureModel, FailureScenario, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fault applied to a recovery round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Crash these nodes after the save completes (their volatile
    /// blobs are lost before the load begins).
    CrashNodes(Vec<NodeId>),
    /// Flip bits in the stored erasure-code chunk of each listed node
    /// (silent at-rest corruption; no crash).
    CorruptChunks(Vec<NodeId>),
    /// Flip bits in `worker`'s replicated header copy on each listed
    /// node. With at least one intact copy left, recovery must
    /// fall back to it.
    CorruptHeaderCopies {
        /// The worker whose header is attacked.
        worker: usize,
        /// Nodes whose copy is damaged.
        nodes: Vec<NodeId>,
    },
    /// Crash `node` once the plane's op counter advances `after_ops`
    /// storage operations into the load — failure *during* recovery.
    CrashDuringLoad {
        /// The node that dies mid-load.
        node: NodeId,
        /// Storage ops into the load at which it dies.
        after_ops: u64,
    },
}

impl ChaosEvent {
    /// Nodes whose erasure-code chunk this event destroys or taints —
    /// the faults that consume the code's `m`-failure budget.
    pub fn chunk_casualties(&self) -> &[NodeId] {
        match self {
            ChaosEvent::CrashNodes(nodes) | ChaosEvent::CorruptChunks(nodes) => nodes,
            _ => &[],
        }
    }
}

/// A deterministic per-round fault plan for a chaos campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSchedule {
    /// `rounds[i]` is applied to campaign round `i`.
    pub rounds: Vec<Vec<ChaosEvent>>,
}

impl ScenarioSchedule {
    /// Samples `rounds` rounds of independent per-node crashes from
    /// `model` (paper §II-B: i.i.d. node failures with probability
    /// `p`).
    ///
    /// # Panics
    ///
    /// Panics when `nodes == 0`.
    pub fn independent(model: &FailureModel, nodes: usize, rounds: usize, seed: u64) -> Self {
        assert!(nodes > 0, "cannot schedule failures over zero nodes");
        let rounds = (0..rounds)
            .map(|r| {
                let scenario = model.sample(nodes, seed.wrapping_add(r as u64));
                Self::crash_events(scenario)
            })
            .collect();
        Self { rounds }
    }

    /// Samples `rounds` rounds of *correlated* group failures from
    /// `model`: nodes sharing a failure domain of `group_size` (a
    /// rack, a PDU) crash together. This is the failure mode that
    /// breaks replication pairs and motivates spreading parity across
    /// domains.
    ///
    /// # Panics
    ///
    /// Panics when `nodes == 0` or `group_size == 0`.
    pub fn correlated(
        model: &FailureModel,
        nodes: usize,
        group_size: usize,
        rounds: usize,
        seed: u64,
    ) -> Self {
        assert!(nodes > 0, "cannot schedule failures over zero nodes");
        let rounds = (0..rounds)
            .map(|r| {
                let scenario =
                    model.sample_correlated(nodes, group_size, seed.wrapping_add(r as u64));
                Self::crash_events(scenario)
            })
            .collect();
        Self { rounds }
    }

    /// A single round in which `node` dies `after_ops` storage
    /// operations into the load — the failure-during-recovery case.
    pub fn failure_during_recovery(node: NodeId, after_ops: u64) -> Self {
        Self { rounds: vec![vec![ChaosEvent::CrashDuringLoad { node, after_ops }]] }
    }

    /// Samples a mixed schedule: each round draws independent or
    /// correlated crashes from `model`, adds at-rest chunk corruption
    /// with probability `p_corrupt` per surviving node, and
    /// occasionally (probability `p_midload`) turns one crash into a
    /// mid-load crash.
    ///
    /// # Panics
    ///
    /// Panics when `nodes == 0` or `group_size == 0`, or when a
    /// probability is outside `[0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn mixed(
        model: &FailureModel,
        nodes: usize,
        group_size: usize,
        p_corrupt: f64,
        p_midload: f64,
        rounds: usize,
        seed: u64,
    ) -> Self {
        assert!(nodes > 0, "cannot schedule failures over zero nodes");
        let mut rng = StdRng::seed_from_u64(seed);
        let rounds = (0..rounds)
            .map(|r| {
                let round_seed = seed.wrapping_add(1 + r as u64);
                let correlated = rng.gen_bool(0.5);
                let scenario = if correlated {
                    model.sample_correlated(nodes, group_size, round_seed)
                } else {
                    model.sample(nodes, round_seed)
                };
                let mut crashed = scenario.failed().to_vec();
                let mut events = Vec::new();
                // Sometimes one of the crashes strikes mid-load
                // instead of before it.
                if !crashed.is_empty() && rng.gen_bool(p_midload) {
                    let node = crashed.pop().expect("non-empty");
                    // The gather phase reads two blobs per node, so
                    // any offset below 2*nodes lands inside it.
                    let after_ops = rng.gen_range(1..(2 * nodes) as u64);
                    events.push(ChaosEvent::CrashDuringLoad { node, after_ops });
                }
                if !crashed.is_empty() {
                    events.push(ChaosEvent::CrashNodes(crashed.clone()));
                }
                let corrupt: Vec<NodeId> = (0..nodes)
                    .filter(|n| !crashed.contains(n))
                    .filter(|_| rng.gen_bool(p_corrupt))
                    .collect();
                if !corrupt.is_empty() {
                    events.push(ChaosEvent::CorruptChunks(corrupt));
                }
                events
            })
            .collect();
        Self { rounds }
    }

    fn crash_events(scenario: FailureScenario) -> Vec<ChaosEvent> {
        if scenario.count() == 0 {
            Vec::new()
        } else {
            vec![ChaosEvent::CrashNodes(scenario.failed().to_vec())]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_schedule_is_deterministic() {
        let model = FailureModel::new(0.4).unwrap();
        let a = ScenarioSchedule::independent(&model, 8, 6, 99);
        let b = ScenarioSchedule::independent(&model, 8, 6, 99);
        assert_eq!(a, b);
        assert_eq!(a.rounds.len(), 6);
    }

    #[test]
    fn correlated_schedule_fails_whole_groups() {
        let model = FailureModel::new(0.5).unwrap();
        let sched = ScenarioSchedule::correlated(&model, 8, 4, 20, 7);
        for round in &sched.rounds {
            for event in round {
                if let ChaosEvent::CrashNodes(nodes) = event {
                    // Each failure domain of 4 fails atomically.
                    for domain in [0usize, 4] {
                        let in_domain =
                            nodes.iter().filter(|&&n| n >= domain && n < domain + 4).count();
                        assert!(in_domain == 0 || in_domain == 4, "partial domain: {nodes:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn mixed_schedule_covers_all_fault_kinds() {
        let model = FailureModel::new(0.5).unwrap();
        let sched = ScenarioSchedule::mixed(&model, 4, 2, 0.4, 0.5, 64, 3);
        let all: Vec<&ChaosEvent> = sched.rounds.iter().flatten().collect();
        assert!(all.iter().any(|e| matches!(e, ChaosEvent::CrashNodes(_))));
        assert!(all.iter().any(|e| matches!(e, ChaosEvent::CorruptChunks(_))));
        assert!(all.iter().any(|e| matches!(e, ChaosEvent::CrashDuringLoad { .. })));
        assert_eq!(sched, ScenarioSchedule::mixed(&model, 4, 2, 0.4, 0.5, 64, 3));
    }

    #[test]
    fn chunk_casualties_classify_events() {
        assert_eq!(ChaosEvent::CrashNodes(vec![1, 2]).chunk_casualties(), &[1, 2]);
        assert_eq!(ChaosEvent::CorruptChunks(vec![0]).chunk_casualties(), &[0]);
        assert!(ChaosEvent::CrashDuringLoad { node: 0, after_ops: 3 }
            .chunk_casualties()
            .is_empty());
        assert!(ChaosEvent::CorruptHeaderCopies { worker: 1, nodes: vec![0] }
            .chunk_casualties()
            .is_empty());
    }

    #[test]
    fn failure_during_recovery_is_single_round() {
        let s = ScenarioSchedule::failure_during_recovery(2, 5);
        assert_eq!(s.rounds, vec![vec![ChaosEvent::CrashDuringLoad { node: 2, after_ops: 5 }]]);
    }
}
