//! Time sources for the telemetry recorder.
//!
//! The recorder never calls `Instant::now` directly; it asks a [`Clock`]
//! for a monotonic nanosecond reading. That indirection lets production
//! code run on wall-clock time while the simulator and deterministic
//! tests drive a [`ManualClock`] whose readings are fully reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond time source.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since the clock's origin.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time, anchored at the moment the clock was created so the
/// readings start near zero and fit comfortably in a `u64`.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A clock advanced explicitly by the caller.
///
/// Clones share the same underlying cell, so a simulation can hold one
/// handle and the recorder another; advancing either advances both.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the absolute reading in nanoseconds.
    pub fn set_ns(&self, ns: u64) {
        self.now.store(ns, Ordering::Relaxed);
    }

    /// Advances the reading by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_shares_state_across_clones() {
        let clock = ManualClock::new();
        let other = clock.clone();
        clock.set_ns(10);
        other.advance_ns(5);
        assert_eq!(clock.now_ns(), 15);
        assert_eq!(other.now_ns(), 15);
    }
}
