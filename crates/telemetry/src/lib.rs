//! Lightweight telemetry for the ECCheck coding pipeline.
//!
//! The crate provides a [`Recorder`]: a cheaply cloneable handle to a
//! shared set of monotonic [`Counter`]s, fixed-bucket (power-of-two)
//! latency [`Histogram`]s, and a bounded structured event log. Scoped
//! [`Timer`]s record elapsed time into a histogram when dropped, using
//! a pluggable [`Clock`] so both wall-clock runs and simulated virtual
//! time produce meaningful (and, for [`ManualClock`], byte-identical)
//! reports. [`Recorder::snapshot`] freezes everything into a
//! deterministic [`Snapshot`] that serializes to JSON or renders as a
//! text report.
//!
//! Design constraints, in order: no dependencies, no `unsafe`, and a
//! hot path that is a single relaxed atomic add once handles have been
//! looked up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod snapshot;

pub use clock::{Clock, ManualClock, WallClock};
pub use snapshot::{fmt_ns, fmt_rate, Event, HistogramSnapshot, Snapshot};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Maximum number of buffered events before new ones are dropped (the
/// drop count is reported in the snapshot).
const EVENT_CAPACITY: usize = 4096;

const BUCKETS: usize = 64;

/// A monotonic counter handle. Clones share the same cell; updates are
/// a single relaxed atomic add.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A detached counter not registered with any recorder (useful as a
    /// default for optionally-instrumented code).
    pub fn detached() -> Self {
        Self { cell: Arc::new(AtomicU64::new(0)) }
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCore {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistCore {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        let bucket = (64 - value.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u8, n))
                })
                .collect(),
        }
    }
}

/// A histogram handle with power-of-two buckets: bucket `i` counts
/// values in `[2^i, 2^(i+1))`, bucket 0 counts 0 and 1. Clones share
/// the same cells.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistCore>,
}

impl Histogram {
    /// A detached histogram not registered with any recorder.
    pub fn detached() -> Self {
        Self { core: Arc::new(HistCore::new()) }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.core.record(value);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of samples recorded so far.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct EventLog {
    events: Vec<Event>,
    dropped: u64,
}

#[derive(Debug)]
struct Inner {
    clock: Arc<dyn Clock>,
    counters: Mutex<BTreeMap<String, Counter>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    events: Mutex<EventLog>,
}

/// The telemetry hub: a cheaply cloneable handle to shared metric
/// state. All clones observe the same counters, histograms and events.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder on wall-clock time.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// A recorder reading time from the given clock.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            inner: Arc::new(Inner {
                clock,
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                events: Mutex::new(EventLog::default()),
            }),
        }
    }

    /// A recorder plus the [`ManualClock`] that drives it; advance the
    /// clock to move recorded timestamps and timer readings.
    pub fn with_manual_clock() -> (Self, ManualClock) {
        let clock = ManualClock::new();
        (Self::with_clock(Arc::new(clock.clone())), clock)
    }

    /// The current clock reading in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.now_ns()
    }

    /// The clock this recorder stamps timestamps with. Layered tooling
    /// (e.g. the `ecc-trace` span tracer) must read time through this
    /// handle so its timestamps and the recorder's event log share one
    /// epoch and can be cross-referenced sample-for-sample.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.inner.clock)
    }

    /// Looks up (registering on first use) the named counter. The
    /// returned handle is cheap to clone and update; cache it outside
    /// hot loops.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock().expect("telemetry counters poisoned");
        counters.entry(name.to_string()).or_insert_with(Counter::detached).clone()
    }

    /// Looks up (registering on first use) the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut hists = self.inner.histograms.lock().expect("telemetry histograms poisoned");
        hists.entry(name.to_string()).or_insert_with(Histogram::detached).clone()
    }

    /// Records one sample into the named histogram.
    pub fn record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    /// Starts a scoped timer that records elapsed nanoseconds into the
    /// named histogram when dropped (or stopped).
    pub fn timer(&self, name: &str) -> Timer {
        Timer {
            hist: Some(self.histogram(name)),
            clock: Arc::clone(&self.inner.clock),
            start: self.inner.clock.now_ns(),
        }
    }

    /// Times a closure, recording its elapsed nanoseconds into the
    /// named histogram, and returns the closure's value.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _timer = self.timer(name);
        f()
    }

    /// Appends a structured event stamped with the current clock
    /// reading. Events beyond the buffer capacity are counted and
    /// dropped.
    pub fn event(&self, name: &str, detail: impl Into<String>) {
        let at_ns = self.inner.clock.now_ns();
        let mut log = self.inner.events.lock().expect("telemetry events poisoned");
        if log.events.len() >= EVENT_CAPACITY {
            log.dropped += 1;
        } else {
            log.events.push(Event { at_ns, name: name.to_string(), detail: detail.into() });
        }
    }

    /// Freezes the current state into a deterministic [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("telemetry counters poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("telemetry histograms poisoned")
            .iter()
            .filter_map(|(name, h)| {
                let snap = h.core.snapshot();
                (snap.count > 0).then(|| (name.clone(), snap))
            })
            .collect();
        let log = self.inner.events.lock().expect("telemetry events poisoned");
        Snapshot { counters, histograms, events: log.events.clone(), dropped_events: log.dropped }
    }
}

/// A scoped timer; records elapsed time into its histogram on drop.
#[derive(Debug)]
pub struct Timer {
    hist: Option<Histogram>,
    clock: Arc<dyn Clock>,
    start: u64,
}

impl Timer {
    /// Stops the timer now, recording and returning the elapsed
    /// nanoseconds (instead of waiting for drop).
    pub fn stop(mut self) -> u64 {
        let elapsed = self.clock.now_ns().saturating_sub(self.start);
        if let Some(hist) = self.hist.take() {
            hist.record(elapsed);
        }
        elapsed
    }

    /// Abandons the timer without recording anything.
    pub fn discard(mut self) {
        self.hist = None;
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(hist) = self.hist.take() {
            hist.record(self.clock.now_ns().saturating_sub(self.start));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_across_clones() {
        let rec = Recorder::new();
        let a = rec.counter("hits");
        let b = rec.clone().counter("hits");
        a.add(2);
        b.incr();
        assert_eq!(rec.snapshot().counter("hits"), 3);
    }

    #[test]
    fn timer_records_manual_clock_elapsed() {
        let (rec, clock) = Recorder::with_manual_clock();
        {
            let _t = rec.timer("op.ns");
            clock.advance_ns(1_500);
        }
        let timer = rec.timer("op.ns");
        clock.advance_ns(500);
        assert_eq!(timer.stop(), 500);
        let snap = rec.snapshot();
        let hist = snap.histogram("op.ns").expect("histogram");
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 2_000);
        assert_eq!(hist.min, 500);
        assert_eq!(hist.max, 1_500);
    }

    #[test]
    fn discarded_timer_records_nothing() {
        let (rec, clock) = Recorder::with_manual_clock();
        let timer = rec.timer("op.ns");
        clock.advance_ns(100);
        timer.discard();
        assert!(rec.snapshot().histogram("op.ns").is_none());
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let hist = Histogram::detached();
        hist.record(0);
        hist.record(1);
        hist.record(2);
        hist.record(3);
        hist.record(1024);
        let snap = hist.core.snapshot();
        assert_eq!(snap.buckets, vec![(0, 2), (1, 2), (10, 1)]);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1024);
    }

    #[test]
    fn events_are_bounded() {
        let (rec, clock) = Recorder::with_manual_clock();
        for i in 0..(EVENT_CAPACITY as u64 + 10) {
            clock.set_ns(i);
            rec.event("tick", i.to_string());
        }
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), EVENT_CAPACITY);
        assert_eq!(snap.dropped_events, 10);
        assert_eq!(snap.events[0].at_ns, 0);
    }

    #[test]
    fn identical_manual_runs_snapshot_identically() {
        let run = || {
            let (rec, clock) = Recorder::with_manual_clock();
            for round in 0..5u64 {
                let t = rec.timer("save.ns");
                clock.advance_ns(100 + round);
                drop(t);
                rec.counter("save.bytes").add(4096);
                rec.event("save", format!("round {round}"));
            }
            rec.snapshot().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn recorder_clock_is_the_recording_clock() {
        let (rec, clock) = Recorder::with_manual_clock();
        clock.set_ns(1234);
        assert_eq!(rec.clock().now_ns(), 1234);
        assert_eq!(rec.now_ns(), 1234);
        // Events stamped through either handle agree on the epoch.
        rec.event("tick", "");
        assert_eq!(rec.snapshot().events[0].at_ns, 1234);
    }

    #[test]
    fn histogram_bucket_boundaries_are_exact_powers_of_two() {
        // Bucket i must hold exactly [2^i, 2^(i+1)) for i >= 1, with
        // bucket 0 holding 0 and 1; probe both edges of several buckets.
        for i in 1..=62u8 {
            let hist = Histogram::detached();
            let lo = 1u64 << i;
            hist.record(lo); // lowest value of bucket i
            hist.record(lo - 1); // highest value of bucket i-1
            hist.record((lo << 1) - 1); // highest value of bucket i
            let snap = hist.core.snapshot();
            assert_eq!(snap.buckets, vec![(i - 1, 1), (i, 2)], "boundary at 2^{i}");
        }
        // u64::MAX lands in the final bucket rather than out of range.
        let hist = Histogram::detached();
        hist.record(u64::MAX);
        assert_eq!(hist.core.snapshot().buckets, vec![(63, 1)]);
    }

    #[test]
    fn event_overflow_reports_every_drop() {
        let (rec, clock) = Recorder::with_manual_clock();
        let extra = 1_000u64;
        for i in 0..(EVENT_CAPACITY as u64 + extra) {
            clock.set_ns(i);
            rec.event("tick", "");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), EVENT_CAPACITY);
        assert_eq!(snap.dropped_events, extra);
        // The retained events are the oldest ones, still in order.
        assert_eq!(snap.events.last().expect("full buffer").at_ns, EVENT_CAPACITY as u64 - 1);
        // The drop count survives serialization.
        assert!(snap.to_json().ends_with(&format!("\"dropped_events\":{extra}}}")));
    }

    #[test]
    fn time_returns_closure_value() {
        let rec = Recorder::new();
        let out = rec.time("f.ns", || 42);
        assert_eq!(out, 42);
        assert_eq!(rec.snapshot().histogram("f.ns").expect("hist").count, 1);
    }
}
