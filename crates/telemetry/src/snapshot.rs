//! Point-in-time views of a recorder's state.
//!
//! A [`Snapshot`] is a plain value: counters and histogram summaries in
//! `BTreeMap`s (so iteration order — and therefore serialized output —
//! is deterministic) plus the buffered event log. It serializes to JSON
//! with a hand-rolled writer that emits only integers and strings, so
//! two identical runs produce byte-identical documents.

use std::collections::BTreeMap;

/// Summary statistics for one latency/size histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Sparse `(bucket_index, count)` pairs; bucket `i` holds values
    /// whose highest set bit is `i` (i.e. `[2^i, 2^(i+1))`, with bucket
    /// 0 holding 0 and 1).
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Number of buckets a histogram can populate (`u64` has 64 bit
    /// positions, and bucket index = highest set bit of the sample).
    pub const BUCKET_COUNT: usize = 64;

    /// Arithmetic mean of the recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The explicit inclusive value range `[lo, hi]` covered by bucket
    /// `index`. Bucket 0 holds `{0, 1}`; bucket `i >= 1` holds
    /// `[2^i, 2^(i+1) - 1]`; the final bucket saturates at `u64::MAX`.
    /// Exporters that re-render the power-of-two layout (e.g. the
    /// Prometheus text exposition) must read the bounds from here
    /// rather than re-deriving them.
    ///
    /// # Panics
    ///
    /// Panics when `index >= Self::BUCKET_COUNT`.
    pub fn bucket_bounds(index: u8) -> (u64, u64) {
        assert!(
            (index as usize) < Self::BUCKET_COUNT,
            "bucket index {index} out of range 0..{}",
            Self::BUCKET_COUNT
        );
        match index {
            0 => (0, 1),
            63 => (1 << 63, u64::MAX),
            i => (1 << i, (1 << (i + 1)) - 1),
        }
    }

    /// The inclusive upper bound of bucket `index` — the `le` boundary
    /// a cumulative exposition format needs.
    ///
    /// # Panics
    ///
    /// Panics when `index >= Self::BUCKET_COUNT`.
    pub fn bucket_upper_bound(index: u8) -> u64 {
        Self::bucket_bounds(index).1
    }

    /// Number of recorded samples `<= bound`, derived from the bucket
    /// layout: buckets entirely at or below `bound` count fully; the
    /// bucket straddling `bound` contributes a linear interpolation of
    /// its population. Exact when `bound` is a bucket upper bound.
    pub fn count_le(&self, bound: u64) -> f64 {
        let mut total = 0.0;
        for &(index, n) in &self.buckets {
            let (lo, hi) = Self::bucket_bounds(index);
            if hi <= bound {
                total += n as f64;
            } else if lo <= bound {
                let width = (hi - lo + 1) as f64;
                total += n as f64 * ((bound - lo + 1) as f64 / width);
            }
        }
        total
    }
}

/// One entry from the structured event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Clock reading when the event was recorded, in nanoseconds.
    pub at_ns: u64,
    /// Event name, dotted-path style (e.g. `ecc.save.phase`).
    pub name: String,
    /// Free-form detail string.
    pub detail: String,
}

/// A deterministic point-in-time view of all recorded telemetry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Buffered events, oldest first.
    pub events: Vec<Event>,
    /// Events discarded because the buffer was full.
    pub dropped_events: u64,
}

impl Snapshot {
    /// The value of a counter, or 0 when it was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The summary for a histogram, if it recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Rate in units/second derived from a counter (units) and a
    /// histogram of elapsed nanoseconds. `None` when either side is
    /// missing or the elapsed time is zero.
    pub fn rate_per_sec(&self, units_counter: &str, elapsed_ns_histogram: &str) -> Option<f64> {
        let units = self.counters.get(units_counter).copied()?;
        let elapsed = self.histograms.get(elapsed_ns_histogram)?.sum;
        if elapsed == 0 {
            return None;
        }
        Some(units as f64 * 1e9 / elapsed as f64)
    }

    /// Serializes the snapshot to a deterministic JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                hist.count, hist.sum, hist.min, hist.max
            ));
            for (j, (bucket, count)) in hist.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{bucket},{count}]"));
            }
            out.push_str("]}");
        }
        out.push_str("},\"events\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"at_ns\":{},\"name\":", event.at_ns));
            push_json_string(&mut out, &event.name);
            out.push_str(",\"detail\":");
            push_json_string(&mut out, &event.detail);
            out.push('}');
        }
        out.push_str(&format!("],\"dropped_events\":{}}}", self.dropped_events));
        out
    }

    /// Renders a human-readable report, one metric per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== telemetry report ==\n");
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<40} {value}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("timers/histograms:\n");
            for (name, hist) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<40} n={} mean={} min={} max={}\n",
                    hist.count,
                    fmt_ns(hist.mean()),
                    fmt_ns(hist.min as f64),
                    fmt_ns(hist.max as f64),
                ));
            }
        }
        if self.dropped_events > 0 {
            out.push_str(&format!("events dropped: {}\n", self.dropped_events));
        }
        out
    }
}

/// Formats a nanosecond quantity with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Formats a bytes/second rate with an adaptive binary unit.
pub fn fmt_rate(bytes_per_sec: f64) -> String {
    const UNITS: [&str; 5] = ["B/s", "KiB/s", "MiB/s", "GiB/s", "TiB/s"];
    let mut value = bytes_per_sec;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_ordered() {
        let mut snap = Snapshot::default();
        snap.counters.insert("b.second".into(), 2);
        snap.counters.insert("a.first".into(), 1);
        snap.histograms.insert(
            "lat".into(),
            HistogramSnapshot {
                count: 2,
                sum: 30,
                min: 10,
                max: 20,
                buckets: vec![(3, 1), (4, 1)],
            },
        );
        snap.events.push(Event { at_ns: 5, name: "e".into(), detail: "d\"x\"".into() });
        let a = snap.to_json();
        let b = snap.clone().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"counters\":{\"a.first\":1,\"b.second\":2}"));
        assert!(a.contains("\\\"x\\\""));
    }

    #[test]
    fn rate_divides_units_by_elapsed() {
        let mut snap = Snapshot::default();
        snap.counters.insert("bytes".into(), 1_000);
        snap.histograms.insert(
            "ns".into(),
            HistogramSnapshot { count: 1, sum: 500_000_000, min: 0, max: 0, buckets: vec![] },
        );
        let rate = snap.rate_per_sec("bytes", "ns").expect("rate");
        assert!((rate - 2_000.0).abs() < 1e-9);
        assert_eq!(snap.rate_per_sec("bytes", "missing"), None);
    }

    #[test]
    fn formatting_picks_units() {
        assert_eq!(fmt_ns(2.5e9), "2.500s");
        assert_eq!(fmt_ns(2.5e6), "2.500ms");
        assert_eq!(fmt_ns(2.5e3), "2.500us");
        assert_eq!(fmt_ns(250.0), "250ns");
        assert_eq!(fmt_rate(2048.0), "2.00 KiB/s");
    }

    #[test]
    fn fmt_ns_unit_boundaries_are_inclusive_upward() {
        // Exactly 1e3/1e6/1e9 promote to the larger unit.
        assert_eq!(fmt_ns(1e3), "1.000us");
        assert_eq!(fmt_ns(1e6), "1.000ms");
        assert_eq!(fmt_ns(1e9), "1.000s");
        // Just below each boundary stays in the smaller unit.
        assert_eq!(fmt_ns(999.0), "999ns");
        assert_eq!(fmt_ns(999.999e3), "999.999us");
        // Degenerate inputs render without panicking.
        assert_eq!(fmt_ns(0.0), "0ns");
        assert_eq!(fmt_ns(0.4), "0ns");
    }

    #[test]
    fn fmt_rate_clamps_at_largest_unit() {
        assert_eq!(fmt_rate(0.0), "0.00 B/s");
        assert_eq!(fmt_rate(1023.0), "1023.00 B/s");
        assert_eq!(fmt_rate(1024.0), "1.00 KiB/s");
        assert_eq!(fmt_rate(1024.0 * 1024.0 * 1024.0), "1.00 GiB/s");
        // Beyond TiB/s the unit saturates instead of indexing out of range.
        let huge = 1024f64.powi(5) * 3.0;
        assert_eq!(fmt_rate(huge), "3072.00 TiB/s");
    }

    #[test]
    fn bucket_bounds_match_recording_layout() {
        // The accessor must agree with where `Histogram::record` puts
        // samples: both edges of every bucket land inside the bounds.
        for i in 0..HistogramSnapshot::BUCKET_COUNT as u8 {
            let (lo, hi) = HistogramSnapshot::bucket_bounds(i);
            assert!(lo <= hi, "bucket {i} bounds inverted");
            let expect_index = |v: u64| (64 - v.leading_zeros()).saturating_sub(1) as u8;
            assert_eq!(expect_index(lo.max(1)), i, "lower edge of bucket {i}");
            assert_eq!(expect_index(hi), i, "upper edge of bucket {i}");
            if i > 0 {
                let (_, prev_hi) = HistogramSnapshot::bucket_bounds(i - 1);
                assert_eq!(prev_hi + 1, lo, "buckets {i} and {} must tile", i - 1);
            }
        }
        assert_eq!(HistogramSnapshot::bucket_bounds(0), (0, 1));
        assert_eq!(HistogramSnapshot::bucket_bounds(63).1, u64::MAX);
        assert_eq!(HistogramSnapshot::bucket_upper_bound(10), 2047);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bucket_bounds_reject_out_of_range() {
        let _ = HistogramSnapshot::bucket_bounds(64);
    }

    #[test]
    fn count_le_interpolates_within_buckets() {
        let hist = HistogramSnapshot {
            count: 4,
            sum: 0,
            min: 0,
            max: 1024,
            buckets: vec![(0, 2), (10, 2)], // {0,1} x2 and [1024,2047] x2
        };
        assert_eq!(hist.count_le(1), 2.0);
        assert_eq!(hist.count_le(2047), 4.0);
        assert_eq!(hist.count_le(1023), 2.0);
        // Halfway through bucket 10 attributes half its population.
        let mid = hist.count_le(1024 + 511);
        assert!(mid > 2.9 && mid < 3.1, "linear interpolation, got {mid}");
        assert_eq!(hist.count_le(u64::MAX), 4.0);
    }

    #[test]
    fn empty_snapshot_serializes_minimally() {
        let snap = Snapshot::default();
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{},\"histograms\":{},\"events\":[],\"dropped_events\":0}"
        );
        assert_eq!(snap.counter("missing"), 0);
        assert!(snap.histogram("missing").is_none());
    }
}
