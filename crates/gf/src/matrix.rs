use crate::{GaloisField, GfError};

/// A dense `rows × cols` matrix over GF(2^w).
///
/// Elements are stored row-major as `u16`. All arithmetic methods take the
/// [`GaloisField`] explicitly so that one matrix type serves every supported
/// width; callers are responsible for using the same field consistently.
///
/// # Examples
///
/// ```
/// use ecc_gf::{GaloisField, Matrix};
///
/// let gf = GaloisField::new(8)?;
/// let m = Matrix::from_rows(2, 2, &[1, 2, 3, 4])?;
/// let inv = m.inverted(&gf)?;
/// assert_eq!(m.mul(&inv, &gf)?, Matrix::identity(2));
/// # Ok::<(), ecc_gf::GfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u16>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates a matrix from a row-major element slice.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DimensionMismatch`] when `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[u16]) -> Result<Self, GfError> {
        if data.len() != rows * cols {
            return Err(GfError::DimensionMismatch {
                detail: format!(
                    "expected {} elements for a {rows}x{cols} matrix, got {}",
                    rows * cols,
                    data.len()
                ),
            });
        }
        Ok(Self { rows, cols, data: data.to_vec() })
    }

    /// Creates a matrix whose element at `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> u16) -> Self {
        let mut m = Self::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at row `r`, column `c`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u16 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at row `r`, column `c`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u16) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[u16] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs` over the given field.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DimensionMismatch`] when the inner dimensions differ.
    pub fn mul(&self, rhs: &Matrix, gf: &GaloisField) -> Result<Matrix, GfError> {
        if self.cols != rhs.rows {
            return Err(GfError::DimensionMismatch {
                detail: format!(
                    "cannot multiply {}x{} by {}x{}",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
            });
        }
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for c in 0..rhs.cols {
                let mut acc = 0u16;
                for i in 0..self.cols {
                    acc ^= gf.mul(self.get(r, i), rhs.get(i, c));
                }
                out.set(r, c, acc);
            }
        }
        Ok(out)
    }

    /// Multiplies this matrix by a column vector.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DimensionMismatch`] when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[u16], gf: &GaloisField) -> Result<Vec<u16>, GfError> {
        if v.len() != self.cols {
            return Err(GfError::DimensionMismatch {
                detail: format!("vector length {} != column count {}", v.len(), self.cols),
            });
        }
        let mut out = vec![0u16; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = 0u16;
            for (c, &vc) in v.iter().enumerate() {
                acc ^= gf.mul(self.get(r, c), vc);
            }
            *slot = acc;
        }
        Ok(out)
    }

    /// Returns a new matrix made of the given rows of `self`, in order.
    ///
    /// # Panics
    ///
    /// Panics when any index in `rows` is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            assert!(r < self.rows, "row index {r} out of bounds");
            for c in 0..self.cols {
                out.set(i, c, self.get(r, c));
            }
        }
        out
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DimensionMismatch`] when the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, GfError> {
        if self.cols != other.cols {
            return Err(GfError::DimensionMismatch {
                detail: format!("cannot stack {} columns on {} columns", other.cols, self.cols),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix { rows: self.rows + other.rows, cols: self.cols, data })
    }

    /// Inverts a square matrix by Gauss–Jordan elimination over the field.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DimensionMismatch`] for non-square matrices and
    /// [`GfError::SingularMatrix`] when no inverse exists.
    pub fn inverted(&self, gf: &GaloisField) -> Result<Matrix, GfError> {
        if self.rows != self.cols {
            return Err(GfError::DimensionMismatch {
                detail: format!("cannot invert non-square {}x{} matrix", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0).ok_or(GfError::SingularMatrix)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalise the pivot row.
            let p = a.get(col, col);
            let p_inv = gf.inv(p).expect("pivot is non-zero");
            a.scale_row(col, p_inv, gf);
            inv.scale_row(col, p_inv, gf);
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor != 0 {
                    a.add_scaled_row(r, col, factor, gf);
                    inv.add_scaled_row(r, col, factor, gf);
                }
            }
        }
        Ok(inv)
    }

    /// Rank of the matrix over the field.
    pub fn rank(&self, gf: &GaloisField) -> usize {
        let mut a = self.clone();
        let mut rank = 0usize;
        let mut row = 0usize;
        for col in 0..a.cols {
            let Some(pivot) = (row..a.rows).find(|&r| a.get(r, col) != 0) else {
                continue;
            };
            a.swap_rows(pivot, row);
            let p_inv = gf.inv(a.get(row, col)).expect("pivot is non-zero");
            a.scale_row(row, p_inv, gf);
            for r in 0..a.rows {
                if r != row {
                    let factor = a.get(r, col);
                    if factor != 0 {
                        a.add_scaled_row(r, row, factor, gf);
                    }
                }
            }
            rank += 1;
            row += 1;
            if row == a.rows {
                break;
            }
        }
        rank
    }

    /// Checks the MDS property of a systematic generator matrix: every
    /// square submatrix formed by any `cols()` rows must be invertible.
    ///
    /// This is exponential in the worst case and intended for tests and
    /// small matrices only.
    pub fn is_mds_generator(&self, gf: &GaloisField) -> bool {
        let k = self.cols;
        if self.rows < k {
            return false;
        }
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            if self.select_rows(&combo).inverted(gf).is_err() {
                return false;
            }
            if !next_combination(&mut combo, self.rows) {
                return true;
            }
        }
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, factor: u16, gf: &GaloisField) {
        for c in 0..self.cols {
            let v = self.get(r, c);
            self.set(r, c, gf.mul(v, factor));
        }
    }

    /// `row[dst] ^= factor * row[src]`.
    fn add_scaled_row(&mut self, dst: usize, src: usize, factor: u16, gf: &GaloisField) {
        for c in 0..self.cols {
            let v = gf.mul(self.get(src, c), factor);
            let cur = self.get(dst, c);
            self.set(dst, c, cur ^ v);
        }
    }
}

/// Advances `combo` to the next k-combination of `0..n` in lexicographic
/// order, returning `false` when `combo` was already the last one.
fn next_combination(combo: &mut [usize], n: usize) -> bool {
    let k = combo.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if combo[i] < n - k + i {
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gf8() -> GaloisField {
        GaloisField::new(8).unwrap()
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let gf = gf8();
        let m = Matrix::from_rows(3, 3, &[1, 2, 3, 4, 5, 6, 7, 9, 11]).unwrap();
        let id = Matrix::identity(3);
        assert_eq!(m.mul(&id, &gf).unwrap(), m);
        assert_eq!(id.mul(&m, &gf).unwrap(), m);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let gf = gf8();
        let m = Matrix::from_rows(3, 3, &[1, 2, 3, 4, 5, 6, 7, 9, 11]).unwrap();
        let inv = m.inverted(&gf).unwrap();
        assert_eq!(m.mul(&inv, &gf).unwrap(), Matrix::identity(3));
        assert_eq!(inv.mul(&m, &gf).unwrap(), Matrix::identity(3));
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let gf = gf8();
        // Two identical rows.
        let m = Matrix::from_rows(2, 2, &[3, 5, 3, 5]).unwrap();
        assert_eq!(m.inverted(&gf), Err(GfError::SingularMatrix));
        assert_eq!(m.rank(&gf), 1);
    }

    #[test]
    fn non_square_inversion_is_rejected() {
        let gf = gf8();
        let m = Matrix::zero(2, 3);
        assert!(matches!(m.inverted(&gf), Err(GfError::DimensionMismatch { .. })));
    }

    #[test]
    fn mul_dimension_mismatch() {
        let gf = gf8();
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        assert!(matches!(a.mul(&b, &gf), Err(GfError::DimensionMismatch { .. })));
    }

    #[test]
    fn select_rows_picks_in_order() {
        let m = Matrix::from_rows(3, 2, &[1, 2, 3, 4, 5, 6]).unwrap();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5, 6]);
        assert_eq!(s.row(1), &[1, 2]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_rows(1, 2, &[1, 2]).unwrap();
        let b = Matrix::from_rows(2, 2, &[3, 4, 5, 6]).unwrap();
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(2), &[5, 6]);
    }

    #[test]
    fn rank_of_identity_is_full() {
        let gf = gf8();
        assert_eq!(Matrix::identity(5).rank(&gf), 5);
    }

    #[test]
    fn mul_vec_matches_matrix_mul() {
        let gf = gf8();
        let m = Matrix::from_rows(2, 3, &[1, 2, 3, 4, 5, 6]).unwrap();
        let v = [7u16, 8, 9];
        let as_col = Matrix::from_rows(3, 1, &v).unwrap();
        let prod = m.mul(&as_col, &gf).unwrap();
        let direct = m.mul_vec(&v, &gf).unwrap();
        assert_eq!(direct, vec![prod.get(0, 0), prod.get(1, 0)]);
    }

    fn arb_invertible(n: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(0u16..256, n * n).prop_filter_map(
            "must be invertible",
            move |data| {
                let m = Matrix::from_rows(n, n, &data).unwrap();
                m.inverted(&gf8()).ok().map(|_| m)
            },
        )
    }

    proptest! {
        #[test]
        fn prop_inverse_round_trip(m in arb_invertible(4)) {
            let gf = gf8();
            let inv = m.inverted(&gf).unwrap();
            prop_assert_eq!(m.mul(&inv, &gf).unwrap(), Matrix::identity(4));
        }

        #[test]
        fn prop_rank_bounded(data in proptest::collection::vec(0u16..256, 12)) {
            let gf = gf8();
            let m = Matrix::from_rows(3, 4, &data).unwrap();
            prop_assert!(m.rank(&gf) <= 3);
        }

        #[test]
        fn prop_mul_vec_linear(
            data in proptest::collection::vec(0u16..256, 9),
            v in proptest::collection::vec(0u16..256, 3),
            w in proptest::collection::vec(0u16..256, 3),
        ) {
            let gf = gf8();
            let m = Matrix::from_rows(3, 3, &data).unwrap();
            let sum: Vec<u16> = v.iter().zip(&w).map(|(a, b)| a ^ b).collect();
            let lhs = m.mul_vec(&sum, &gf).unwrap();
            let mv = m.mul_vec(&v, &gf).unwrap();
            let mw = m.mul_vec(&w, &gf).unwrap();
            let rhs: Vec<u16> = mv.iter().zip(&mw).map(|(a, b)| a ^ b).collect();
            prop_assert_eq!(lhs, rhs);
        }
    }
}
