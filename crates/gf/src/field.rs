use crate::GfError;

/// Word widths for which [`GaloisField::new`] succeeds.
pub const SUPPORTED_WIDTHS: [u8; 3] = [4, 8, 16];

/// Primitive polynomial for each supported width, with the leading term
/// included (e.g. `0x11D` = x^8 + x^4 + x^3 + x^2 + 1). These match the
/// defaults used by Jerasure, which the paper builds on.
fn primitive_poly(w: u8) -> Option<u32> {
    match w {
        4 => Some(0x13),
        8 => Some(0x11D),
        16 => Some(0x1100B),
        _ => None,
    }
}

/// Arithmetic over the finite field GF(2^w).
///
/// Addition is bitwise XOR; multiplication and division go through log/exp
/// tables generated from a primitive polynomial, exactly as in classic
/// Reed–Solomon implementations. Elements are carried in `u16` (the largest
/// supported field is GF(2^16)).
///
/// # Examples
///
/// ```
/// use ecc_gf::GaloisField;
///
/// let gf = GaloisField::new(8)?;
/// // Multiplication distributes over XOR-addition.
/// let (a, b, c) = (17, 42, 99);
/// assert_eq!(gf.mul(a, b ^ c), gf.mul(a, b) ^ gf.mul(a, c));
/// # Ok::<(), ecc_gf::GfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GaloisField {
    w: u8,
    size: usize,
    log: Vec<u16>,
    exp: Vec<u16>,
}

impl GaloisField {
    /// Builds the field GF(2^w).
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedWidth`] unless `w` is 4, 8 or 16.
    pub fn new(w: u8) -> Result<Self, GfError> {
        let poly = primitive_poly(w).ok_or(GfError::UnsupportedWidth { w })?;
        let size = 1usize << w;
        let mut log = vec![0u16; size];
        // exp is doubled so that `exp[log a + log b]` never needs a modulo.
        let mut exp = vec![0u16; 2 * size];
        let mut x: u32 = 1;
        for i in 0..(size - 1) {
            exp[i] = x as u16;
            exp[i + size - 1] = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & (1 << w) != 0 {
                x ^= poly;
            }
        }
        Ok(Self { w, size, log, exp })
    }

    /// The field's word width `w`.
    pub fn w(&self) -> u8 {
        self.w
    }

    /// The number of elements in the field, `2^w`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The largest valid element, `2^w - 1`.
    pub fn max_element(&self) -> u16 {
        (self.size - 1) as u16
    }

    /// Returns `true` when `a` is a valid element of this field.
    pub fn contains(&self, a: u16) -> bool {
        (a as usize) < self.size
    }

    /// Field addition (and subtraction): bitwise XOR.
    #[inline]
    pub fn add(a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// Field multiplication.
    ///
    /// # Panics
    ///
    /// Debug-asserts that both operands are in range; in release builds an
    /// out-of-range operand produces an unspecified (but memory-safe) value.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        debug_assert!(self.contains(a) && self.contains(b));
        if a == 0 || b == 0 {
            return 0;
        }
        let idx = self.log[a as usize] as usize + self.log[b as usize] as usize;
        self.exp[idx]
    }

    /// Field division `a / b`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DivisionByZero`] when `b == 0`.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> Result<u16, GfError> {
        debug_assert!(self.contains(a) && self.contains(b));
        if b == 0 {
            return Err(GfError::DivisionByZero);
        }
        if a == 0 {
            return Ok(0);
        }
        let order = self.size - 1;
        let idx = self.log[a as usize] as usize + order - self.log[b as usize] as usize;
        Ok(self.exp[idx])
    }

    /// Multiplicative inverse of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DivisionByZero`] when `a == 0`.
    #[inline]
    pub fn inv(&self, a: u16) -> Result<u16, GfError> {
        self.div(1, a)
    }

    /// Raises `a` to the `e`-th power (with `a^0 == 1`, including `0^0`).
    pub fn pow(&self, a: u16, e: u32) -> u16 {
        if e == 0 {
            return 1;
        }
        if a == 0 {
            return 0;
        }
        let order = (self.size - 1) as u64;
        let idx = (self.log[a as usize] as u64 * e as u64) % order;
        self.exp[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fields() -> Vec<GaloisField> {
        SUPPORTED_WIDTHS.iter().map(|&w| GaloisField::new(w).unwrap()).collect()
    }

    #[test]
    fn rejects_unsupported_width() {
        for w in [0u8, 1, 2, 3, 5, 7, 9, 15, 17, 32] {
            assert!(matches!(GaloisField::new(w), Err(GfError::UnsupportedWidth { .. })));
        }
    }

    #[test]
    fn table_is_a_permutation() {
        for gf in fields() {
            let mut seen = vec![false; gf.size()];
            seen[0] = true; // zero never appears in exp
            for i in 0..(gf.size() - 1) {
                let v = gf.exp[i] as usize;
                assert!(!seen[v], "w={} exp repeats {v}", gf.w());
                seen[v] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn one_is_multiplicative_identity() {
        for gf in fields() {
            for a in 0..gf.size().min(1 << 8) as u16 {
                assert_eq!(gf.mul(a, 1), a);
                assert_eq!(gf.mul(1, a), a);
            }
        }
    }

    #[test]
    fn zero_annihilates() {
        for gf in fields() {
            for a in 0..gf.size().min(1 << 8) as u16 {
                assert_eq!(gf.mul(a, 0), 0);
                assert_eq!(gf.mul(0, a), 0);
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        for gf in fields() {
            for a in 1..gf.size().min(1 << 10) as u16 {
                let inv = gf.inv(a).unwrap();
                assert_eq!(gf.mul(a, inv), 1, "w={} a={a}", gf.w());
            }
        }
    }

    #[test]
    fn division_by_zero_errors() {
        for gf in fields() {
            assert_eq!(gf.div(5, 0), Err(GfError::DivisionByZero));
            assert_eq!(gf.inv(0), Err(GfError::DivisionByZero));
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for gf in fields() {
            for a in [0u16, 1, 2, 3, 7, gf.max_element()] {
                let mut acc = 1u16;
                for e in 0..12u32 {
                    assert_eq!(gf.pow(a, e), acc, "w={} a={a} e={e}", gf.w());
                    acc = gf.mul(acc, a);
                }
            }
        }
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        for gf in fields() {
            assert_eq!(gf.pow(0, 0), 1);
            assert_eq!(gf.pow(gf.max_element(), 0), 1);
        }
    }

    proptest! {
        #[test]
        fn mul_commutes_gf8(a in 0u16..256, b in 0u16..256) {
            let gf = GaloisField::new(8).unwrap();
            prop_assert_eq!(gf.mul(a, b), gf.mul(b, a));
        }

        #[test]
        fn mul_associates_gf8(a in 0u16..256, b in 0u16..256, c in 0u16..256) {
            let gf = GaloisField::new(8).unwrap();
            prop_assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
        }

        #[test]
        fn mul_distributes_gf8(a in 0u16..256, b in 0u16..256, c in 0u16..256) {
            let gf = GaloisField::new(8).unwrap();
            prop_assert_eq!(gf.mul(a, b ^ c), gf.mul(a, b) ^ gf.mul(a, c));
        }

        #[test]
        fn div_inverts_mul_gf16(a in 0u16.., b in 1u16..) {
            let gf = GaloisField::new(16).unwrap();
            let p = gf.mul(a, b);
            prop_assert_eq!(gf.div(p, b).unwrap(), a);
        }

        #[test]
        fn mul_closed_gf4(a in 0u16..16, b in 0u16..16) {
            let gf = GaloisField::new(4).unwrap();
            prop_assert!(gf.contains(gf.mul(a, b)));
        }
    }
}
