//! Runtime-dispatched SIMD kernels for the coding hot path.
//!
//! ECCheck's checkpoint pipeline is CPU-bound on two inner loops (paper
//! §IV-A): the wide XOR that executes bit-matrix schedules, and the
//! GF(2^8) region multiplication a worker applies to its packet
//! (`e_ij · d`, paper Fig. 6). This module provides both as a [`Kernel`]
//! trait with one implementation per instruction set:
//!
//! * **scalar** — portable fallback: an unrolled 4×`u64` XOR block loop
//!   and a 256-entry lookup-table multiply. Always available and the
//!   bit-exact reference for every other kernel.
//! * **ssse3** / **avx2** (`x86_64`) — the ISA-L "split-table" layout:
//!   GF(2^8) multiplication via two 16-entry nibble tables looked up with
//!   `pshufb` / `vpshufb`, 16 (SSSE3) or 32 (AVX2) products per
//!   instruction, plus 128/256-bit wide XOR.
//! * **avx512** (`x86_64`) — the same split-table trick at 512-bit width
//!   (64 products per `vpshufb`), plus 512-bit wide XOR.
//! * **gfni** (`x86_64`) — GF(2^8) multiplication as a single
//!   `vgf2p8affineqb` bit-matrix transform per 64 bytes (works for any
//!   field polynomial, because multiply-by-constant is GF(2)-linear),
//!   and a GF(2^16) fast path that multiplies the lo/hi byte planes with
//!   four 8×8 affine blocks. See [`Split8::affine_matrix`] and
//!   [`Split16`].
//! * **neon** (`aarch64`) — the same split-table trick via `vqtbl1q_u8`.
//!
//! Besides the three classic region ops (`xor_into`, `mul`, `mul_xor`),
//! every kernel executes fused multi-source chains
//! ([`Kernel::xor_chain`]): the destination block stays in registers
//! while every source is folded in, so a fused XOR schedule reads each
//! source once per parity *set* instead of once per schedule op.
//!
//! The active kernel is selected **once**, at first use, from CPU feature
//! detection (`std::arch`), and every region operation in `ecc-erasure`
//! routes through it. Selection order is
//! gfni → avx512 → avx2 → ssse3 → neon → scalar.
//!
//! # Forcing a kernel
//!
//! For debugging and benchmarking, the choice can be overridden:
//!
//! * Set the `ECC_KERNEL` environment variable (`scalar`, `ssse3`,
//!   `avx2`, `avx512`, `gfni`, `neon` or `auto`) before the first coding
//!   operation. An unknown or unavailable name falls back to
//!   auto-detection.
//! * Call [`force_kernel`] at any time (used by `kernel-bench` to sweep
//!   every kernel in one process).
//!
//! # Examples
//!
//! ```
//! use ecc_gf::kernel::{active_kernel, available_kernels, Split8};
//! use ecc_gf::GaloisField;
//!
//! let gf = GaloisField::new(8)?;
//! let t = Split8::new(&gf, 0x53)?;
//! let src = [1u8, 2, 3, 250];
//! let mut dst = [0u8; 4];
//! active_kernel().mul(&t, &src, &mut dst);
//! for (s, d) in src.iter().zip(dst) {
//!     assert_eq!(d as u16, gf.mul(0x53, *s as u16));
//! }
//! // The scalar reference kernel is always in the available set.
//! assert!(available_kernels().iter().any(|k| k.name() == "scalar"));
//! # Ok::<(), ecc_gf::GfError>(())
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{GaloisField, GfError};

/// Environment variable consulted on first dispatch to pick a kernel
/// (`scalar`, `ssse3`, `avx2`, `neon` or `auto`).
pub const KERNEL_ENV: &str = "ECC_KERNEL";

/// Split multiplication tables for one GF(2^8) coefficient.
///
/// The ISA-L ("screaming fast Galois field arithmetic") layout: because
/// `x = hi·16 ⊕ lo` and multiplication distributes over XOR-addition,
/// `coef · x = lo_table[x & 0xF] ⊕ hi_table[x >> 4]` where each table has
/// only 16 entries — exactly the shape a 128-bit byte shuffle
/// (`pshufb` / `vqtbl1q_u8`) can look up 16-at-a-time. A flat 256-entry
/// product table is kept alongside for the scalar path and tail bytes.
///
/// # Examples
///
/// ```
/// use ecc_gf::{kernel::Split8, GaloisField};
///
/// let gf = GaloisField::new(8)?;
/// let t = Split8::new(&gf, 7)?;
/// assert_eq!(t.mul_byte(0xA5) as u16, gf.mul(7, 0xA5));
/// # Ok::<(), ecc_gf::GfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Split8 {
    coef: u8,
    lo: [u8; 16],
    hi: [u8; 16],
    full: [u8; 256],
    affine: u64,
}

/// Builds the 8×8 GF(2) bit-matrix (in `vgf2p8affineqb` layout) that
/// maps one source byte plane onto one destination byte plane of the
/// multiply-by-`coef` map.
///
/// Multiplication by a constant is GF(2)-linear, so
/// `bit_i(c·x) = ⊕_j x_j · bit_i(c·2^j)`; the instruction computes
/// `dst.bit[i] = parity(A.byte[7−i] & x)`, hence
/// `A.byte[7−i].bit[j] = bit_i(c·2^j)`. `src_hi`/`dst_hi` select the
/// high byte plane of a GF(2^16) element (always `false` for GF(2^8)).
fn affine_block(gf: &GaloisField, coef: u16, dst_hi: bool, src_hi: bool) -> u64 {
    let src_shift = if src_hi { 8 } else { 0 };
    let dst_shift = if dst_hi { 8 } else { 0 };
    let mut matrix = 0u64;
    for j in 0..8u32 {
        let col = (gf.mul(coef, 1u16 << (j + src_shift)) >> dst_shift) as u8;
        for i in 0..8u32 {
            if (col >> i) & 1 == 1 {
                matrix |= 1u64 << (8 * (7 - i) + j);
            }
        }
    }
    matrix
}

impl Split8 {
    /// Builds the nibble tables (and flat table) for `coef` in GF(2^8).
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedWidth`] when the field is not
    /// GF(2^8) and [`GfError::ElementOutOfRange`] when `coef` is not a
    /// field element.
    pub fn new(gf: &GaloisField, coef: u16) -> Result<Self, GfError> {
        if gf.w() != 8 {
            return Err(GfError::UnsupportedWidth { w: gf.w() });
        }
        if !gf.contains(coef) {
            return Err(GfError::ElementOutOfRange { element: coef, w: gf.w() });
        }
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for n in 0..16u16 {
            lo[n as usize] = gf.mul(coef, n) as u8;
            hi[n as usize] = gf.mul(coef, n << 4) as u8;
        }
        let mut full = [0u8; 256];
        for (b, entry) in full.iter_mut().enumerate() {
            *entry = lo[b & 0xF] ^ hi[b >> 4];
        }
        let affine = affine_block(gf, coef, false, false);
        Ok(Self { coef: coef as u8, lo, hi, full, affine })
    }

    /// The coefficient these tables multiply by.
    pub fn coef(&self) -> u8 {
        self.coef
    }

    /// The 16-entry low-nibble product table (`lo[n] = coef · n`).
    pub fn lo(&self) -> &[u8; 16] {
        &self.lo
    }

    /// The 16-entry high-nibble product table (`hi[n] = coef · (n << 4)`).
    pub fn hi(&self) -> &[u8; 16] {
        &self.hi
    }

    /// The flat 256-entry product table (`full[b] = coef · b`).
    pub fn full_table(&self) -> &[u8; 256] {
        &self.full
    }

    /// Multiplies a single byte: `coef · b` in GF(2^8).
    #[inline]
    pub fn mul_byte(&self, b: u8) -> u8 {
        self.full[b as usize]
    }

    /// The 8×8 GF(2) bit-matrix of the multiply-by-`coef` map, in the
    /// `vgf2p8affineqb` operand layout: the instruction computes
    /// `dst.bit[i] = parity(A.byte[7−i] & x)`, so byte `7−i` bit `j`
    /// holds `bit_i(coef·2^j)`. Valid for *any* GF(2^8) polynomial, not
    /// just the instruction's built-in reduction — the reduction is
    /// baked into the matrix.
    pub fn affine_matrix(&self) -> u64 {
        self.affine
    }
}

/// Split multiplication tables for one GF(2^16) coefficient — the w=16
/// fast-path analogue of [`Split8`].
///
/// Elements are 2-byte **little-endian** lanes. The scalar path uses two
/// 256-entry product tables (`coef·x = low[x & 0xFF] ⊕ high[x >> 8]`,
/// multiplication distributing over the XOR-decomposition of `x`); the
/// GFNI path views the 16×16 bit-matrix of the multiply map as four 8×8
/// blocks applied to the lo/hi byte planes:
/// `lo' = A_ll·lo ⊕ A_lh·hi`, `hi' = A_hl·lo ⊕ A_hh·hi`.
///
/// # Examples
///
/// ```
/// use ecc_gf::{kernel::Split16, GaloisField};
///
/// let gf = GaloisField::new(16)?;
/// let t = Split16::new(&gf, 0x1234)?;
/// assert_eq!(t.mul_element(0xA5C3), gf.mul(0x1234, 0xA5C3));
/// # Ok::<(), ecc_gf::GfError>(())
/// ```
#[derive(Clone)]
pub struct Split16 {
    coef: u16,
    low: [u16; 256],
    high: [u16; 256],
    blocks: [u64; 4],
}

impl fmt::Debug for Split16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Split16").field("coef", &self.coef).field("blocks", &self.blocks).finish()
    }
}

impl Split16 {
    /// Builds the byte tables and affine blocks for `coef` in GF(2^16).
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedWidth`] when the field is not
    /// GF(2^16) and [`GfError::ElementOutOfRange`] when `coef` is not a
    /// field element.
    pub fn new(gf: &GaloisField, coef: u16) -> Result<Self, GfError> {
        if gf.w() != 16 {
            return Err(GfError::UnsupportedWidth { w: gf.w() });
        }
        if !gf.contains(coef) {
            return Err(GfError::ElementOutOfRange { element: coef, w: gf.w() });
        }
        let mut low = [0u16; 256];
        let mut high = [0u16; 256];
        for b in 0..256u16 {
            low[b as usize] = gf.mul(coef, b);
            high[b as usize] = gf.mul(coef, b << 8);
        }
        let blocks = [
            affine_block(gf, coef, false, false),
            affine_block(gf, coef, false, true),
            affine_block(gf, coef, true, false),
            affine_block(gf, coef, true, true),
        ];
        Ok(Self { coef, low, high, blocks })
    }

    /// The coefficient these tables multiply by.
    pub fn coef(&self) -> u16 {
        self.coef
    }

    /// The 256-entry low-byte product table (`low[b] = coef · b`).
    pub fn low(&self) -> &[u16; 256] {
        &self.low
    }

    /// The 256-entry high-byte product table
    /// (`high[b] = coef · (b << 8)`).
    pub fn high(&self) -> &[u16; 256] {
        &self.high
    }

    /// The four 8×8 affine blocks `[A_ll, A_lh, A_hl, A_hh]` of the
    /// 16×16 multiply bit-matrix, each in `vgf2p8affineqb` layout.
    pub fn blocks(&self) -> &[u64; 4] {
        &self.blocks
    }

    /// Multiplies a single element: `coef · x` in GF(2^16).
    #[inline]
    pub fn mul_element(&self, x: u16) -> u16 {
        self.low[(x & 0xFF) as usize] ^ self.high[(x >> 8) as usize]
    }
}

/// Portable fused XOR chain: fold every source into `dst` with the
/// accumulator held in four `u64` lanes per 32-byte block. Shared by the
/// scalar kernel and the trait's default method.
fn xor_chain_scalar(dst: &mut [u8], srcs: &[&[u8]], assign: bool) {
    let len = dst.len();
    for s in srcs {
        assert_eq!(len, s.len(), "xor_chain requires equal-length slices");
    }
    let mut i = 0;
    while i + 32 <= len {
        let mut acc = [0u64; 4];
        if !assign {
            for (lane, a) in acc.iter_mut().enumerate() {
                let r = i + lane * 8..i + lane * 8 + 8;
                *a = u64::from_ne_bytes(dst[r].try_into().expect("8-byte lane"));
            }
        }
        for s in srcs {
            for (lane, a) in acc.iter_mut().enumerate() {
                let r = i + lane * 8..i + lane * 8 + 8;
                *a ^= u64::from_ne_bytes(s[r].try_into().expect("8-byte lane"));
            }
        }
        for (lane, a) in acc.iter().enumerate() {
            dst[i + lane * 8..i + lane * 8 + 8].copy_from_slice(&a.to_ne_bytes());
        }
        i += 32;
    }
    for j in i..len {
        let mut b = if assign { 0 } else { dst[j] };
        for s in srcs {
            b ^= s[j];
        }
        dst[j] = b;
    }
}

/// Portable GF(2^16) region multiply over 2-byte little-endian lanes.
/// Shared by the scalar kernel and the trait's default methods.
fn mul16_scalar(t: &Split16, src: &[u8], dst: &mut [u8], accumulate: bool) {
    assert_eq!(dst.len(), src.len(), "mul16 requires equal-length slices");
    assert_eq!(dst.len() % 2, 0, "mul16 regions hold 2-byte elements");
    for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
        let x = u16::from_le_bytes([s[0], s[1]]);
        let p = t.mul_element(x).to_le_bytes();
        if accumulate {
            d[0] ^= p[0];
            d[1] ^= p[1];
        } else {
            d[0] = p[0];
            d[1] = p[1];
        }
    }
}

/// One instruction-set-specific implementation of the coding inner loops.
///
/// All implementations are bit-exact: for any inputs, every method
/// produces output identical to the `scalar` kernel (property-tested in
/// `tests/kernel_equiv.rs`). Regions may have any length and alignment;
/// kernels handle unaligned heads/tails internally.
pub trait Kernel: Send + Sync {
    /// Short stable name (`"scalar"`, `"ssse3"`, `"avx2"`, `"neon"`) —
    /// used by the `ECC_KERNEL` override, telemetry counters and
    /// `kernel-bench` reports.
    fn name(&self) -> &'static str;

    /// `dst[i] ^= src[i]` over the whole region.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    fn xor_into(&self, dst: &mut [u8], src: &[u8]);

    /// `dst[i] = coef · src[i]` in GF(2^8), per [`Split8`] tables.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    fn mul(&self, t: &Split8, src: &[u8], dst: &mut [u8]);

    /// `dst[i] ^= coef · src[i]` — the multiply-accumulate inner loop of
    /// table-based Reed–Solomon encoding.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    fn mul_xor(&self, t: &Split8, src: &[u8], dst: &mut [u8]);

    /// Fused multi-source XOR: `dst = srcs[0] ⊕ srcs[1] ⊕ …` when
    /// `assign`, else `dst ⊕= srcs[0] ⊕ srcs[1] ⊕ …` — the inner loop of
    /// a fused XOR schedule. The destination block stays in registers
    /// while every source is folded in, so each `dst` byte is written
    /// once per chain instead of once per source. With `assign` and an
    /// empty chain, `dst` is zeroed.
    ///
    /// # Panics
    ///
    /// Panics when any source's length differs from `dst`'s.
    fn xor_chain(&self, dst: &mut [u8], srcs: &[&[u8]], assign: bool) {
        xor_chain_scalar(dst, srcs, assign);
    }

    /// `dst = coef · src` over 2-byte little-endian GF(2^16) elements,
    /// per [`Split16`] tables — the w=16 fast path.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths or an odd length.
    fn mul16(&self, t: &Split16, src: &[u8], dst: &mut [u8]) {
        mul16_scalar(t, src, dst, false);
    }

    /// `dst ⊕= coef · src` over 2-byte little-endian GF(2^16) elements.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths or an odd length.
    fn mul16_xor(&self, t: &Split16, src: &[u8], dst: &mut [u8]) {
        mul16_scalar(t, src, dst, true);
    }
}

impl fmt::Debug for dyn Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kernel({})", self.name())
    }
}

/// The portable reference kernel: unrolled 4×`u64` XOR and flat-table
/// multiply. Always available on every architecture.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernel;

impl Kernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn xor_into(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "xor_into requires equal-length slices");
        // 32-byte blocks: four independent u64 lanes per iteration keep
        // the ALU ports busy without SIMD.
        let mut dst_blocks = dst.chunks_exact_mut(32);
        let mut src_blocks = src.chunks_exact(32);
        for (d, s) in dst_blocks.by_ref().zip(src_blocks.by_ref()) {
            for lane in 0..4 {
                let r = lane * 8..lane * 8 + 8;
                let v = u64::from_ne_bytes(d[r.clone()].try_into().expect("8-byte lane"))
                    ^ u64::from_ne_bytes(s[r.clone()].try_into().expect("8-byte lane"));
                d[r].copy_from_slice(&v.to_ne_bytes());
            }
        }
        for (d, s) in dst_blocks.into_remainder().iter_mut().zip(src_blocks.remainder()) {
            *d ^= *s;
        }
    }

    fn mul(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "mul requires equal-length slices");
        let table = t.full_table();
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = table[s as usize];
        }
    }

    fn mul_xor(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "mul_xor requires equal-length slices");
        let table = t.full_table();
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= table[s as usize];
        }
    }
}

/// SSSE3 (`pshufb`) and AVX2 (`vpshufb`) kernels.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::{xor_chain_scalar, Kernel, ScalarKernel, Split16, Split8};
    use std::arch::x86_64::*;

    /// 16 bytes per step via `pshufb` nibble lookups and `pxor`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Ssse3Kernel;

    /// 32 bytes per step via `vpshufb` nibble lookups and `vpxor`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Avx2Kernel;

    // SAFETY for everything below: callers (the safe trait methods) have
    // verified the required CPU feature at dispatch time, slice lengths
    // are asserted equal, and every pointer arithmetic stays inside the
    // checked `i + LANES <= len` prefix. All loads/stores use the
    // unaligned variants, so alignment is irrelevant.

    #[target_feature(enable = "ssse3")]
    unsafe fn xor_into_ssse3(dst: &mut [u8], src: &[u8]) {
        let len = dst.len();
        let mut i = 0;
        while i + 32 <= len {
            let d0 = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let d1 = _mm_loadu_si128(dst.as_ptr().add(i + 16).cast());
            let s0 = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let s1 = _mm_loadu_si128(src.as_ptr().add(i + 16).cast());
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d0, s0));
            _mm_storeu_si128(dst.as_mut_ptr().add(i + 16).cast(), _mm_xor_si128(d1, s1));
            i += 32;
        }
        ScalarKernel.xor_into(&mut dst[i..], &src[i..]);
    }

    /// One 16-byte GF(2^8) multiply: split each byte into nibbles, look
    /// both up with `pshufb`, XOR the halves (`coef·x = lo[x&15] ^
    /// hi[x>>4]`).
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn mul16(lo: __m128i, hi: __m128i, mask: __m128i, x: __m128i) -> __m128i {
        let lo_n = _mm_and_si128(x, mask);
        // srli works on 64-bit lanes; the cross-byte bits it drags in are
        // cleared by the nibble mask.
        let hi_n = _mm_and_si128(_mm_srli_epi64::<4>(x), mask);
        _mm_xor_si128(_mm_shuffle_epi8(lo, lo_n), _mm_shuffle_epi8(hi, hi_n))
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn mul_ssse3(t: &Split8, src: &[u8], dst: &mut [u8], accumulate: bool) {
        let lo = _mm_loadu_si128(t.lo().as_ptr().cast());
        let hi = _mm_loadu_si128(t.hi().as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let len = src.len();
        let mut i = 0;
        while i + 16 <= len {
            let x = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let mut p = mul16(lo, hi, mask, x);
            if accumulate {
                p = _mm_xor_si128(p, _mm_loadu_si128(dst.as_ptr().add(i).cast()));
            }
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), p);
            i += 16;
        }
        if accumulate {
            ScalarKernel.mul_xor(t, &src[i..], &mut dst[i..]);
        } else {
            ScalarKernel.mul(t, &src[i..], &mut dst[i..]);
        }
    }

    impl Kernel for Ssse3Kernel {
        fn name(&self) -> &'static str {
            "ssse3"
        }

        fn xor_into(&self, dst: &mut [u8], src: &[u8]) {
            assert_eq!(dst.len(), src.len(), "xor_into requires equal-length slices");
            // SAFETY: ssse3 verified at kernel selection; lengths equal.
            unsafe { xor_into_ssse3(dst, src) }
        }

        fn mul(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul requires equal-length slices");
            // SAFETY: ssse3 verified at kernel selection; lengths equal.
            unsafe { mul_ssse3(t, src, dst, false) }
        }

        fn mul_xor(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul_xor requires equal-length slices");
            // SAFETY: ssse3 verified at kernel selection; lengths equal.
            unsafe { mul_ssse3(t, src, dst, true) }
        }

        fn xor_chain(&self, dst: &mut [u8], srcs: &[&[u8]], assign: bool) {
            for s in srcs {
                assert_eq!(dst.len(), s.len(), "xor_chain requires equal-length slices");
            }
            // SAFETY: ssse3 verified at kernel selection; lengths equal.
            unsafe { xor_chain_ssse3(dst, srcs, assign) }
        }
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn xor_chain_ssse3(dst: &mut [u8], srcs: &[&[u8]], assign: bool) {
        let len = dst.len();
        let mut i = 0;
        while i + 32 <= len {
            let (mut a0, mut a1) = if assign {
                (_mm_setzero_si128(), _mm_setzero_si128())
            } else {
                (
                    _mm_loadu_si128(dst.as_ptr().add(i).cast()),
                    _mm_loadu_si128(dst.as_ptr().add(i + 16).cast()),
                )
            };
            for s in srcs {
                a0 = _mm_xor_si128(a0, _mm_loadu_si128(s.as_ptr().add(i).cast()));
                a1 = _mm_xor_si128(a1, _mm_loadu_si128(s.as_ptr().add(i + 16).cast()));
            }
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), a0);
            _mm_storeu_si128(dst.as_mut_ptr().add(i + 16).cast(), a1);
            i += 32;
        }
        let tails: Vec<&[u8]> = srcs.iter().map(|s| &s[i..]).collect();
        xor_chain_scalar(&mut dst[i..], &tails, assign);
    }

    #[target_feature(enable = "avx2")]
    unsafe fn xor_into_avx2(dst: &mut [u8], src: &[u8]) {
        let len = dst.len();
        let mut i = 0;
        while i + 64 <= len {
            let d0 = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let d1 = _mm256_loadu_si256(dst.as_ptr().add(i + 32).cast());
            let s0 = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let s1 = _mm256_loadu_si256(src.as_ptr().add(i + 32).cast());
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d0, s0));
            _mm256_storeu_si256(dst.as_mut_ptr().add(i + 32).cast(), _mm256_xor_si256(d1, s1));
            i += 64;
        }
        while i + 32 <= len {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, s));
            i += 32;
        }
        ScalarKernel.xor_into(&mut dst[i..], &src[i..]);
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mul_avx2(t: &Split8, src: &[u8], dst: &mut [u8], accumulate: bool) {
        // The 16-entry tables are broadcast into both 128-bit lanes:
        // vpshufb shuffles within each lane, so each lane sees the full
        // nibble table.
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo().as_ptr().cast()));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi().as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let len = src.len();
        let mut i = 0;
        while i + 32 <= len {
            let x = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let lo_n = _mm256_and_si256(x, mask);
            let hi_n = _mm256_and_si256(_mm256_srli_epi64::<4>(x), mask);
            let mut p =
                _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_n), _mm256_shuffle_epi8(hi, hi_n));
            if accumulate {
                p = _mm256_xor_si256(p, _mm256_loadu_si256(dst.as_ptr().add(i).cast()));
            }
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), p);
            i += 32;
        }
        if accumulate {
            ScalarKernel.mul_xor(t, &src[i..], &mut dst[i..]);
        } else {
            ScalarKernel.mul(t, &src[i..], &mut dst[i..]);
        }
    }

    impl Kernel for Avx2Kernel {
        fn name(&self) -> &'static str {
            "avx2"
        }

        fn xor_into(&self, dst: &mut [u8], src: &[u8]) {
            assert_eq!(dst.len(), src.len(), "xor_into requires equal-length slices");
            // SAFETY: avx2 verified at kernel selection; lengths equal.
            unsafe { xor_into_avx2(dst, src) }
        }

        fn mul(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul requires equal-length slices");
            // SAFETY: avx2 verified at kernel selection; lengths equal.
            unsafe { mul_avx2(t, src, dst, false) }
        }

        fn mul_xor(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul_xor requires equal-length slices");
            // SAFETY: avx2 verified at kernel selection; lengths equal.
            unsafe { mul_avx2(t, src, dst, true) }
        }

        fn xor_chain(&self, dst: &mut [u8], srcs: &[&[u8]], assign: bool) {
            for s in srcs {
                assert_eq!(dst.len(), s.len(), "xor_chain requires equal-length slices");
            }
            // SAFETY: avx2 verified at kernel selection; lengths equal.
            unsafe { xor_chain_avx2(dst, srcs, assign) }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn xor_chain_avx2(dst: &mut [u8], srcs: &[&[u8]], assign: bool) {
        let len = dst.len();
        let mut i = 0;
        while i + 64 <= len {
            let (mut a0, mut a1) = if assign {
                (_mm256_setzero_si256(), _mm256_setzero_si256())
            } else {
                (
                    _mm256_loadu_si256(dst.as_ptr().add(i).cast()),
                    _mm256_loadu_si256(dst.as_ptr().add(i + 32).cast()),
                )
            };
            for s in srcs {
                a0 = _mm256_xor_si256(a0, _mm256_loadu_si256(s.as_ptr().add(i).cast()));
                a1 = _mm256_xor_si256(a1, _mm256_loadu_si256(s.as_ptr().add(i + 32).cast()));
            }
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), a0);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i + 32).cast(), a1);
            i += 64;
        }
        let tails: Vec<&[u8]> = srcs.iter().map(|s| &s[i..]).collect();
        xor_chain_scalar(&mut dst[i..], &tails, assign);
    }

    /// 64 bytes per step via 512-bit `vpshufb` nibble lookups and
    /// `vpxorq`. Requires AVX-512 F + BW.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Avx512Kernel;

    /// GF(2^8) multiply as one `vgf2p8affineqb` per 64 bytes, plus the
    /// GF(2^16) byte-plane fast path. Requires AVX-512 F + BW + GFNI.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct GfniKernel;

    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn xor_into_avx512(dst: &mut [u8], src: &[u8]) {
        let len = dst.len();
        let mut i = 0;
        while i + 128 <= len {
            let d0 = _mm512_loadu_si512(dst.as_ptr().add(i).cast());
            let d1 = _mm512_loadu_si512(dst.as_ptr().add(i + 64).cast());
            let s0 = _mm512_loadu_si512(src.as_ptr().add(i).cast());
            let s1 = _mm512_loadu_si512(src.as_ptr().add(i + 64).cast());
            _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), _mm512_xor_si512(d0, s0));
            _mm512_storeu_si512(dst.as_mut_ptr().add(i + 64).cast(), _mm512_xor_si512(d1, s1));
            i += 128;
        }
        while i + 64 <= len {
            let d = _mm512_loadu_si512(dst.as_ptr().add(i).cast());
            let s = _mm512_loadu_si512(src.as_ptr().add(i).cast());
            _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), _mm512_xor_si512(d, s));
            i += 64;
        }
        ScalarKernel.xor_into(&mut dst[i..], &src[i..]);
    }

    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn xor_chain_avx512(dst: &mut [u8], srcs: &[&[u8]], assign: bool) {
        let len = dst.len();
        let mut i = 0;
        while i + 64 <= len {
            let mut acc = if assign {
                _mm512_setzero_si512()
            } else {
                _mm512_loadu_si512(dst.as_ptr().add(i).cast())
            };
            for s in srcs {
                acc = _mm512_xor_si512(acc, _mm512_loadu_si512(s.as_ptr().add(i).cast()));
            }
            _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), acc);
            i += 64;
        }
        let tails: Vec<&[u8]> = srcs.iter().map(|s| &s[i..]).collect();
        xor_chain_scalar(&mut dst[i..], &tails, assign);
    }

    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn mul_avx512(t: &Split8, src: &[u8], dst: &mut [u8], accumulate: bool) {
        let lo = _mm512_broadcast_i32x4(_mm_loadu_si128(t.lo().as_ptr().cast()));
        let hi = _mm512_broadcast_i32x4(_mm_loadu_si128(t.hi().as_ptr().cast()));
        let mask = _mm512_set1_epi8(0x0F);
        let len = src.len();
        let mut i = 0;
        while i + 64 <= len {
            let x = _mm512_loadu_si512(src.as_ptr().add(i).cast());
            let lo_n = _mm512_and_si512(x, mask);
            let hi_n = _mm512_and_si512(_mm512_srli_epi64::<4>(x), mask);
            let mut p =
                _mm512_xor_si512(_mm512_shuffle_epi8(lo, lo_n), _mm512_shuffle_epi8(hi, hi_n));
            if accumulate {
                p = _mm512_xor_si512(p, _mm512_loadu_si512(dst.as_ptr().add(i).cast()));
            }
            _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), p);
            i += 64;
        }
        if accumulate {
            ScalarKernel.mul_xor(t, &src[i..], &mut dst[i..]);
        } else {
            ScalarKernel.mul(t, &src[i..], &mut dst[i..]);
        }
    }

    impl Kernel for Avx512Kernel {
        fn name(&self) -> &'static str {
            "avx512"
        }

        fn xor_into(&self, dst: &mut [u8], src: &[u8]) {
            assert_eq!(dst.len(), src.len(), "xor_into requires equal-length slices");
            // SAFETY: avx512f+bw verified at kernel selection; lengths equal.
            unsafe { xor_into_avx512(dst, src) }
        }

        fn mul(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul requires equal-length slices");
            // SAFETY: avx512f+bw verified at kernel selection; lengths equal.
            unsafe { mul_avx512(t, src, dst, false) }
        }

        fn mul_xor(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul_xor requires equal-length slices");
            // SAFETY: avx512f+bw verified at kernel selection; lengths equal.
            unsafe { mul_avx512(t, src, dst, true) }
        }

        fn xor_chain(&self, dst: &mut [u8], srcs: &[&[u8]], assign: bool) {
            for s in srcs {
                assert_eq!(dst.len(), s.len(), "xor_chain requires equal-length slices");
            }
            // SAFETY: avx512f+bw verified at kernel selection; lengths equal.
            unsafe { xor_chain_avx512(dst, srcs, assign) }
        }
    }

    #[target_feature(enable = "gfni,avx512f,avx512bw")]
    unsafe fn mul_gfni(t: &Split8, src: &[u8], dst: &mut [u8], accumulate: bool) {
        let matrix = _mm512_set1_epi64(t.affine_matrix() as i64);
        let len = src.len();
        let mut i = 0;
        while i + 64 <= len {
            let x = _mm512_loadu_si512(src.as_ptr().add(i).cast());
            let mut p = _mm512_gf2p8affine_epi64_epi8::<0>(x, matrix);
            if accumulate {
                p = _mm512_xor_si512(p, _mm512_loadu_si512(dst.as_ptr().add(i).cast()));
            }
            _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), p);
            i += 64;
        }
        if accumulate {
            ScalarKernel.mul_xor(t, &src[i..], &mut dst[i..]);
        } else {
            ScalarKernel.mul(t, &src[i..], &mut dst[i..]);
        }
    }

    /// GF(2^16) multiply over interleaved little-endian lanes: split the
    /// vector into its lo/hi byte planes with 16-bit shifts (the other
    /// plane's byte position holds zero, and an affine transform of zero
    /// is zero), push each plane through the four 8×8 affine blocks, and
    /// re-interleave with a 16-bit shift-OR.
    #[target_feature(enable = "gfni,avx512f,avx512bw")]
    unsafe fn mul16_gfni(t: &Split16, src: &[u8], dst: &mut [u8], accumulate: bool) {
        let [a_ll, a_lh, a_hl, a_hh] = *t.blocks();
        let m_ll = _mm512_set1_epi64(a_ll as i64);
        let m_lh = _mm512_set1_epi64(a_lh as i64);
        let m_hl = _mm512_set1_epi64(a_hl as i64);
        let m_hh = _mm512_set1_epi64(a_hh as i64);
        let lo_mask = _mm512_set1_epi16(0x00FF);
        let len = src.len();
        let mut i = 0;
        while i + 64 <= len {
            let x = _mm512_loadu_si512(src.as_ptr().add(i).cast());
            let lo = _mm512_and_si512(x, lo_mask);
            let hi = _mm512_srli_epi16::<8>(x);
            let out_lo = _mm512_xor_si512(
                _mm512_gf2p8affine_epi64_epi8::<0>(lo, m_ll),
                _mm512_gf2p8affine_epi64_epi8::<0>(hi, m_lh),
            );
            let out_hi = _mm512_xor_si512(
                _mm512_gf2p8affine_epi64_epi8::<0>(lo, m_hl),
                _mm512_gf2p8affine_epi64_epi8::<0>(hi, m_hh),
            );
            let mut p = _mm512_or_si512(out_lo, _mm512_slli_epi16::<8>(out_hi));
            if accumulate {
                p = _mm512_xor_si512(p, _mm512_loadu_si512(dst.as_ptr().add(i).cast()));
            }
            _mm512_storeu_si512(dst.as_mut_ptr().add(i).cast(), p);
            i += 64;
        }
        super::mul16_scalar(t, &src[i..], &mut dst[i..], accumulate);
    }

    impl Kernel for GfniKernel {
        fn name(&self) -> &'static str {
            "gfni"
        }

        fn xor_into(&self, dst: &mut [u8], src: &[u8]) {
            assert_eq!(dst.len(), src.len(), "xor_into requires equal-length slices");
            // SAFETY: avx512f+bw verified at kernel selection; lengths equal.
            unsafe { xor_into_avx512(dst, src) }
        }

        fn mul(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul requires equal-length slices");
            // SAFETY: gfni+avx512f+bw verified at kernel selection; lengths equal.
            unsafe { mul_gfni(t, src, dst, false) }
        }

        fn mul_xor(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul_xor requires equal-length slices");
            // SAFETY: gfni+avx512f+bw verified at kernel selection; lengths equal.
            unsafe { mul_gfni(t, src, dst, true) }
        }

        fn xor_chain(&self, dst: &mut [u8], srcs: &[&[u8]], assign: bool) {
            for s in srcs {
                assert_eq!(dst.len(), s.len(), "xor_chain requires equal-length slices");
            }
            // SAFETY: avx512f+bw verified at kernel selection; lengths equal.
            unsafe { xor_chain_avx512(dst, srcs, assign) }
        }

        fn mul16(&self, t: &Split16, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul16 requires equal-length slices");
            assert_eq!(dst.len() % 2, 0, "mul16 regions hold 2-byte elements");
            // SAFETY: gfni+avx512f+bw verified at kernel selection;
            // lengths equal and even.
            unsafe { mul16_gfni(t, src, dst, false) }
        }

        fn mul16_xor(&self, t: &Split16, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul16 requires equal-length slices");
            assert_eq!(dst.len() % 2, 0, "mul16 regions hold 2-byte elements");
            // SAFETY: gfni+avx512f+bw verified at kernel selection;
            // lengths equal and even.
            unsafe { mul16_gfni(t, src, dst, true) }
        }
    }
}

/// NEON kernel (`vqtbl1q_u8` nibble lookups, 128-bit XOR).
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod arm {
    use super::{xor_chain_scalar, Kernel, ScalarKernel, Split8};
    use std::arch::aarch64::*;

    /// 16 bytes per step via `vqtbl1q_u8` nibble lookups and `veorq`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct NeonKernel;

    // SAFETY for everything below: NEON is verified at kernel selection
    // (and is baseline on aarch64), lengths are asserted equal by the
    // trait methods, and pointer arithmetic stays inside the checked
    // `i + 16 <= len` prefix. NEON loads/stores are alignment-free.

    #[target_feature(enable = "neon")]
    unsafe fn xor_into_neon(dst: &mut [u8], src: &[u8]) {
        let len = dst.len();
        let mut i = 0;
        while i + 16 <= len {
            let d = vld1q_u8(dst.as_ptr().add(i));
            let s = vld1q_u8(src.as_ptr().add(i));
            vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(d, s));
            i += 16;
        }
        ScalarKernel.xor_into(&mut dst[i..], &src[i..]);
    }

    #[target_feature(enable = "neon")]
    unsafe fn mul_neon(t: &Split8, src: &[u8], dst: &mut [u8], accumulate: bool) {
        let lo = vld1q_u8(t.lo().as_ptr());
        let hi = vld1q_u8(t.hi().as_ptr());
        let mask = vdupq_n_u8(0x0F);
        let len = src.len();
        let mut i = 0;
        while i + 16 <= len {
            let x = vld1q_u8(src.as_ptr().add(i));
            let lo_n = vandq_u8(x, mask);
            let hi_n = vshrq_n_u8::<4>(x);
            let mut p = veorq_u8(vqtbl1q_u8(lo, lo_n), vqtbl1q_u8(hi, hi_n));
            if accumulate {
                p = veorq_u8(p, vld1q_u8(dst.as_ptr().add(i)));
            }
            vst1q_u8(dst.as_mut_ptr().add(i), p);
            i += 16;
        }
        if accumulate {
            ScalarKernel.mul_xor(t, &src[i..], &mut dst[i..]);
        } else {
            ScalarKernel.mul(t, &src[i..], &mut dst[i..]);
        }
    }

    impl Kernel for NeonKernel {
        fn name(&self) -> &'static str {
            "neon"
        }

        fn xor_into(&self, dst: &mut [u8], src: &[u8]) {
            assert_eq!(dst.len(), src.len(), "xor_into requires equal-length slices");
            // SAFETY: neon verified at kernel selection; lengths equal.
            unsafe { xor_into_neon(dst, src) }
        }

        fn mul(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul requires equal-length slices");
            // SAFETY: neon verified at kernel selection; lengths equal.
            unsafe { mul_neon(t, src, dst, false) }
        }

        fn mul_xor(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul_xor requires equal-length slices");
            // SAFETY: neon verified at kernel selection; lengths equal.
            unsafe { mul_neon(t, src, dst, true) }
        }

        fn xor_chain(&self, dst: &mut [u8], srcs: &[&[u8]], assign: bool) {
            for s in srcs {
                assert_eq!(dst.len(), s.len(), "xor_chain requires equal-length slices");
            }
            // SAFETY: neon verified at kernel selection; lengths equal.
            unsafe { xor_chain_neon(dst, srcs, assign) }
        }
    }

    #[target_feature(enable = "neon")]
    unsafe fn xor_chain_neon(dst: &mut [u8], srcs: &[&[u8]], assign: bool) {
        let len = dst.len();
        let mut i = 0;
        while i + 16 <= len {
            let mut acc = if assign { vdupq_n_u8(0) } else { vld1q_u8(dst.as_ptr().add(i)) };
            for s in srcs {
                acc = veorq_u8(acc, vld1q_u8(s.as_ptr().add(i)));
            }
            vst1q_u8(dst.as_mut_ptr().add(i), acc);
            i += 16;
        }
        let tails: Vec<&[u8]> = srcs.iter().map(|s| &s[i..]).collect();
        xor_chain_scalar(&mut dst[i..], &tails, assign);
    }
}

static SCALAR: ScalarKernel = ScalarKernel;
#[cfg(target_arch = "x86_64")]
static SSSE3: x86::Ssse3Kernel = x86::Ssse3Kernel;
#[cfg(target_arch = "x86_64")]
static AVX2: x86::Avx2Kernel = x86::Avx2Kernel;
#[cfg(target_arch = "x86_64")]
static AVX512: x86::Avx512Kernel = x86::Avx512Kernel;
#[cfg(target_arch = "x86_64")]
static GFNI: x86::GfniKernel = x86::GfniKernel;
#[cfg(target_arch = "aarch64")]
static NEON: arm::NeonKernel = arm::NeonKernel;

/// Every kernel compiled into this binary, **best first**, whether or not
/// the CPU supports it; `scalar` is always the last-resort tail.
#[cfg(target_arch = "x86_64")]
static COMPILED: [&dyn Kernel; 5] = [&GFNI, &AVX512, &AVX2, &SSSE3, &SCALAR];
#[cfg(target_arch = "aarch64")]
static COMPILED: [&dyn Kernel; 2] = [&NEON, &SCALAR];
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
static COMPILED: [&dyn Kernel; 1] = [&SCALAR];

fn compiled_kernels() -> &'static [&'static dyn Kernel] {
    &COMPILED
}

/// `true` when the running CPU can execute the named kernel.
fn cpu_supports(name: &str) -> bool {
    match name {
        "scalar" => true,
        #[cfg(target_arch = "x86_64")]
        "ssse3" => std::arch::is_x86_feature_detected!("ssse3"),
        #[cfg(target_arch = "x86_64")]
        "avx2" => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "x86_64")]
        "avx512" => {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
        }
        #[cfg(target_arch = "x86_64")]
        "gfni" => {
            std::arch::is_x86_feature_detected!("gfni")
                && std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
        }
        #[cfg(target_arch = "aarch64")]
        "neon" => std::arch::is_aarch64_feature_detected!("neon"),
        _ => false,
    }
}

/// The kernels this CPU can actually run, best first. `scalar` is always
/// present and always last.
pub fn available_kernels() -> Vec<&'static dyn Kernel> {
    compiled_kernels().iter().copied().filter(|k| cpu_supports(k.name())).collect()
}

/// Best available kernel by the fixed preference order
/// (gfni → avx512 → avx2 → ssse3 → neon → scalar).
fn auto_select() -> &'static dyn Kernel {
    *available_kernels().first().expect("scalar kernel is always available")
}

/// Index+1 into [`compiled_kernels`]; 0 means "not yet selected".
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn store_active(kernel: &'static dyn Kernel) {
    let idx = compiled_kernels()
        .iter()
        .position(|k| k.name() == kernel.name())
        .expect("kernel comes from the compiled set");
    ACTIVE.store(idx + 1, Ordering::Relaxed);
}

/// The dispatched kernel all coding region operations route through.
///
/// Selected on first call: an explicit [`force_kernel`] wins, then a
/// valid [`KERNEL_ENV`] override, then CPU auto-detection. The result is
/// cached in an atomic, so steady-state dispatch is one relaxed load.
pub fn active_kernel() -> &'static dyn Kernel {
    let idx = ACTIVE.load(Ordering::Relaxed);
    if idx != 0 {
        return compiled_kernels()[idx - 1];
    }
    let kernel = match std::env::var(KERNEL_ENV) {
        Ok(name) if name != "auto" => force_kernel(&name).unwrap_or_else(|_| auto_select()),
        _ => auto_select(),
    };
    store_active(kernel);
    kernel
}

/// Overrides the dispatched kernel by name (for benchmarking and
/// debugging; takes effect immediately, also over a previous selection).
///
/// # Errors
///
/// Returns [`GfError::UnknownKernel`] when no kernel has that name or
/// the CPU cannot execute it; the active kernel is left unchanged.
///
/// # Examples
///
/// ```
/// use ecc_gf::kernel::{active_kernel, force_kernel};
///
/// force_kernel("scalar")?;
/// assert_eq!(active_kernel().name(), "scalar");
/// assert!(force_kernel("not-a-kernel").is_err());
/// # Ok::<(), ecc_gf::GfError>(())
/// ```
pub fn force_kernel(name: &str) -> Result<&'static dyn Kernel, GfError> {
    let kernel = compiled_kernels()
        .iter()
        .copied()
        .find(|k| k.name() == name && cpu_supports(name))
        .ok_or_else(|| GfError::UnknownKernel { name: name.to_string() })?;
    store_active(kernel);
    Ok(kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gf8() -> GaloisField {
        GaloisField::new(8).unwrap()
    }

    #[test]
    fn split8_tables_agree_with_field_mul() {
        let gf = gf8();
        for coef in [0u16, 1, 2, 0x53, 0xFF] {
            let t = Split8::new(&gf, coef).unwrap();
            for b in 0..=255u16 {
                assert_eq!(t.mul_byte(b as u8) as u16, gf.mul(coef, b), "coef={coef} b={b}");
                let split = t.lo()[(b & 0xF) as usize] ^ t.hi()[(b >> 4) as usize];
                assert_eq!(split as u16, gf.mul(coef, b), "split coef={coef} b={b}");
            }
        }
    }

    #[test]
    fn split8_rejects_bad_inputs() {
        let gf16 = GaloisField::new(16).unwrap();
        assert!(matches!(Split8::new(&gf16, 2), Err(GfError::UnsupportedWidth { w: 16 })));
        assert!(matches!(Split8::new(&gf8(), 256), Err(GfError::ElementOutOfRange { .. })));
    }

    /// Software model of `vgf2p8affineqb`:
    /// `dst.bit[i] = parity(A.byte[7−i] & x)`.
    fn affine_apply(matrix: u64, x: u8) -> u8 {
        let mut out = 0u8;
        for i in 0..8u32 {
            let row = ((matrix >> (8 * (7 - i))) & 0xFF) as u8;
            if (row & x).count_ones() & 1 == 1 {
                out |= 1 << i;
            }
        }
        out
    }

    #[test]
    fn split8_affine_matrix_models_field_mul() {
        let gf = gf8();
        for coef in [0u16, 1, 2, 0x53, 0xB7, 0xFF] {
            let t = Split8::new(&gf, coef).unwrap();
            for b in 0..=255u16 {
                assert_eq!(
                    affine_apply(t.affine_matrix(), b as u8) as u16,
                    gf.mul(coef, b),
                    "coef={coef} b={b}"
                );
            }
        }
    }

    #[test]
    fn split16_tables_and_blocks_agree_with_field_mul() {
        let gf = GaloisField::new(16).unwrap();
        for coef in [0u16, 1, 2, 0x1234, 0xABCD, 0xFFFF] {
            let t = Split16::new(&gf, coef).unwrap();
            for x in [0u16, 1, 0xFF, 0x100, 0xA5C3, 0xFFFF, 0x8001, 12345] {
                assert_eq!(t.mul_element(x), gf.mul(coef, x), "coef={coef} x={x}");
                // Byte-plane affine blocks: lo' = A_ll·lo ⊕ A_lh·hi,
                // hi' = A_hl·lo ⊕ A_hh·hi.
                let [a_ll, a_lh, a_hl, a_hh] = *t.blocks();
                let (lo, hi) = ((x & 0xFF) as u8, (x >> 8) as u8);
                let lo2 = affine_apply(a_ll, lo) ^ affine_apply(a_lh, hi);
                let hi2 = affine_apply(a_hl, lo) ^ affine_apply(a_hh, hi);
                let got = u16::from(lo2) | (u16::from(hi2) << 8);
                assert_eq!(got, gf.mul(coef, x), "blocks coef={coef} x={x}");
            }
        }
    }

    #[test]
    fn split16_rejects_bad_inputs() {
        assert!(matches!(Split16::new(&gf8(), 2), Err(GfError::UnsupportedWidth { w: 8 })));
        let gf4 = GaloisField::new(4).unwrap();
        assert!(matches!(Split16::new(&gf4, 2), Err(GfError::UnsupportedWidth { w: 4 })));
    }

    #[test]
    fn scalar_is_always_available_and_last() {
        let kernels = available_kernels();
        assert!(!kernels.is_empty());
        assert_eq!(kernels.last().unwrap().name(), "scalar");
    }

    #[test]
    fn every_available_kernel_matches_scalar() {
        let gf = gf8();
        let t = Split8::new(&gf, 0xB7).unwrap();
        // Lengths straddling every block boundary: empty, sub-word, one
        // SIMD lane, odd tails, multi-block.
        for len in [0usize, 1, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 255, 1024, 1031] {
            let src: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(37)).collect();
            let acc: Vec<u8> =
                (0..len).map(|i| (i as u8).wrapping_mul(11).wrapping_add(5)).collect();
            let mut want_xor = acc.clone();
            ScalarKernel.xor_into(&mut want_xor, &src);
            let mut want_mul = vec![0u8; len];
            ScalarKernel.mul(&t, &src, &mut want_mul);
            let mut want_mul_xor = acc.clone();
            ScalarKernel.mul_xor(&t, &src, &mut want_mul_xor);
            for k in available_kernels() {
                let mut got = acc.clone();
                k.xor_into(&mut got, &src);
                assert_eq!(got, want_xor, "{} xor len={len}", k.name());
                let mut got = vec![0u8; len];
                k.mul(&t, &src, &mut got);
                assert_eq!(got, want_mul, "{} mul len={len}", k.name());
                let mut got = acc.clone();
                k.mul_xor(&t, &src, &mut got);
                assert_eq!(got, want_mul_xor, "{} mul_xor len={len}", k.name());
            }
        }
    }

    #[test]
    fn every_available_kernel_chains_like_scalar() {
        for len in [0usize, 1, 17, 31, 32, 33, 63, 64, 65, 100, 255, 1024, 1031] {
            let acc: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(29)).collect();
            for nsrcs in [0usize, 1, 2, 3, 5, 9] {
                let srcs_owned: Vec<Vec<u8>> = (0..nsrcs)
                    .map(|s| {
                        (0..len).map(|i| (i as u8).wrapping_mul(7).wrapping_add(s as u8)).collect()
                    })
                    .collect();
                let srcs: Vec<&[u8]> = srcs_owned.iter().map(|s| s.as_slice()).collect();
                for assign in [false, true] {
                    // Oracle: the op-at-a-time unfused equivalent.
                    let mut want = if assign { vec![0u8; len] } else { acc.clone() };
                    for s in &srcs {
                        ScalarKernel.xor_into(&mut want, s);
                    }
                    for k in available_kernels() {
                        let mut got = acc.clone();
                        k.xor_chain(&mut got, &srcs, assign);
                        assert_eq!(
                            got,
                            want,
                            "{} xor_chain len={len} nsrcs={nsrcs} assign={assign}",
                            k.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_available_kernel_mul16s_like_scalar() {
        let gf = GaloisField::new(16).unwrap();
        for coef in [1u16, 2, 0x1234, 0xABCD] {
            let t = Split16::new(&gf, coef).unwrap();
            for len in [0usize, 2, 16, 30, 62, 64, 66, 126, 128, 130, 1024, 1030] {
                let src: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(53)).collect();
                let acc: Vec<u8> =
                    (0..len).map(|i| (i as u8).wrapping_mul(17).wrapping_add(3)).collect();
                let mut want_mul = vec![0u8; len];
                mul16_scalar(&t, &src, &mut want_mul, false);
                let mut want_mul_xor = acc.clone();
                mul16_scalar(&t, &src, &mut want_mul_xor, true);
                for k in available_kernels() {
                    let mut got = vec![0u8; len];
                    k.mul16(&t, &src, &mut got);
                    assert_eq!(got, want_mul, "{} mul16 coef={coef} len={len}", k.name());
                    let mut got = acc.clone();
                    k.mul16_xor(&t, &src, &mut got);
                    assert_eq!(got, want_mul_xor, "{} mul16_xor coef={coef} len={len}", k.name());
                }
            }
        }
    }

    #[test]
    fn force_kernel_round_trips() {
        let before = active_kernel().name();
        for k in available_kernels() {
            let forced = force_kernel(k.name()).unwrap();
            assert_eq!(forced.name(), k.name());
            assert_eq!(active_kernel().name(), k.name());
        }
        assert!(force_kernel("does-not-exist").is_err());
        force_kernel(before).unwrap();
    }
}
