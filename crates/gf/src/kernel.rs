//! Runtime-dispatched SIMD kernels for the coding hot path.
//!
//! ECCheck's checkpoint pipeline is CPU-bound on two inner loops (paper
//! §IV-A): the wide XOR that executes bit-matrix schedules, and the
//! GF(2^8) region multiplication a worker applies to its packet
//! (`e_ij · d`, paper Fig. 6). This module provides both as a [`Kernel`]
//! trait with one implementation per instruction set:
//!
//! * **scalar** — portable fallback: an unrolled 4×`u64` XOR block loop
//!   and a 256-entry lookup-table multiply. Always available and the
//!   bit-exact reference for every other kernel.
//! * **ssse3** / **avx2** (`x86_64`) — the ISA-L "split-table" layout:
//!   GF(2^8) multiplication via two 16-entry nibble tables looked up with
//!   `pshufb` / `vpshufb`, 16 (SSSE3) or 32 (AVX2) products per
//!   instruction, plus 128/256-bit wide XOR.
//! * **neon** (`aarch64`) — the same split-table trick via `vqtbl1q_u8`.
//!
//! The active kernel is selected **once**, at first use, from CPU feature
//! detection (`std::arch`), and every region operation in `ecc-erasure`
//! routes through it. Selection order is avx2 → ssse3 → neon → scalar.
//!
//! # Forcing a kernel
//!
//! For debugging and benchmarking, the choice can be overridden:
//!
//! * Set the `ECC_KERNEL` environment variable (`scalar`, `ssse3`,
//!   `avx2`, `neon` or `auto`) before the first coding operation. An
//!   unknown or unavailable name falls back to auto-detection.
//! * Call [`force_kernel`] at any time (used by `kernel-bench` to sweep
//!   every kernel in one process).
//!
//! # Examples
//!
//! ```
//! use ecc_gf::kernel::{active_kernel, available_kernels, Split8};
//! use ecc_gf::GaloisField;
//!
//! let gf = GaloisField::new(8)?;
//! let t = Split8::new(&gf, 0x53)?;
//! let src = [1u8, 2, 3, 250];
//! let mut dst = [0u8; 4];
//! active_kernel().mul(&t, &src, &mut dst);
//! for (s, d) in src.iter().zip(dst) {
//!     assert_eq!(d as u16, gf.mul(0x53, *s as u16));
//! }
//! // The scalar reference kernel is always in the available set.
//! assert!(available_kernels().iter().any(|k| k.name() == "scalar"));
//! # Ok::<(), ecc_gf::GfError>(())
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{GaloisField, GfError};

/// Environment variable consulted on first dispatch to pick a kernel
/// (`scalar`, `ssse3`, `avx2`, `neon` or `auto`).
pub const KERNEL_ENV: &str = "ECC_KERNEL";

/// Split multiplication tables for one GF(2^8) coefficient.
///
/// The ISA-L ("screaming fast Galois field arithmetic") layout: because
/// `x = hi·16 ⊕ lo` and multiplication distributes over XOR-addition,
/// `coef · x = lo_table[x & 0xF] ⊕ hi_table[x >> 4]` where each table has
/// only 16 entries — exactly the shape a 128-bit byte shuffle
/// (`pshufb` / `vqtbl1q_u8`) can look up 16-at-a-time. A flat 256-entry
/// product table is kept alongside for the scalar path and tail bytes.
///
/// # Examples
///
/// ```
/// use ecc_gf::{kernel::Split8, GaloisField};
///
/// let gf = GaloisField::new(8)?;
/// let t = Split8::new(&gf, 7)?;
/// assert_eq!(t.mul_byte(0xA5) as u16, gf.mul(7, 0xA5));
/// # Ok::<(), ecc_gf::GfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Split8 {
    coef: u8,
    lo: [u8; 16],
    hi: [u8; 16],
    full: [u8; 256],
}

impl Split8 {
    /// Builds the nibble tables (and flat table) for `coef` in GF(2^8).
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedWidth`] when the field is not
    /// GF(2^8) and [`GfError::ElementOutOfRange`] when `coef` is not a
    /// field element.
    pub fn new(gf: &GaloisField, coef: u16) -> Result<Self, GfError> {
        if gf.w() != 8 {
            return Err(GfError::UnsupportedWidth { w: gf.w() });
        }
        if !gf.contains(coef) {
            return Err(GfError::ElementOutOfRange { element: coef, w: gf.w() });
        }
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for n in 0..16u16 {
            lo[n as usize] = gf.mul(coef, n) as u8;
            hi[n as usize] = gf.mul(coef, n << 4) as u8;
        }
        let mut full = [0u8; 256];
        for (b, entry) in full.iter_mut().enumerate() {
            *entry = lo[b & 0xF] ^ hi[b >> 4];
        }
        Ok(Self { coef: coef as u8, lo, hi, full })
    }

    /// The coefficient these tables multiply by.
    pub fn coef(&self) -> u8 {
        self.coef
    }

    /// The 16-entry low-nibble product table (`lo[n] = coef · n`).
    pub fn lo(&self) -> &[u8; 16] {
        &self.lo
    }

    /// The 16-entry high-nibble product table (`hi[n] = coef · (n << 4)`).
    pub fn hi(&self) -> &[u8; 16] {
        &self.hi
    }

    /// The flat 256-entry product table (`full[b] = coef · b`).
    pub fn full_table(&self) -> &[u8; 256] {
        &self.full
    }

    /// Multiplies a single byte: `coef · b` in GF(2^8).
    #[inline]
    pub fn mul_byte(&self, b: u8) -> u8 {
        self.full[b as usize]
    }
}

/// One instruction-set-specific implementation of the coding inner loops.
///
/// All implementations are bit-exact: for any inputs, every method
/// produces output identical to the `scalar` kernel (property-tested in
/// `tests/kernel_equiv.rs`). Regions may have any length and alignment;
/// kernels handle unaligned heads/tails internally.
pub trait Kernel: Send + Sync {
    /// Short stable name (`"scalar"`, `"ssse3"`, `"avx2"`, `"neon"`) —
    /// used by the `ECC_KERNEL` override, telemetry counters and
    /// `kernel-bench` reports.
    fn name(&self) -> &'static str;

    /// `dst[i] ^= src[i]` over the whole region.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    fn xor_into(&self, dst: &mut [u8], src: &[u8]);

    /// `dst[i] = coef · src[i]` in GF(2^8), per [`Split8`] tables.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    fn mul(&self, t: &Split8, src: &[u8], dst: &mut [u8]);

    /// `dst[i] ^= coef · src[i]` — the multiply-accumulate inner loop of
    /// table-based Reed–Solomon encoding.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    fn mul_xor(&self, t: &Split8, src: &[u8], dst: &mut [u8]);
}

impl fmt::Debug for dyn Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kernel({})", self.name())
    }
}

/// The portable reference kernel: unrolled 4×`u64` XOR and flat-table
/// multiply. Always available on every architecture.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernel;

impl Kernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn xor_into(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "xor_into requires equal-length slices");
        // 32-byte blocks: four independent u64 lanes per iteration keep
        // the ALU ports busy without SIMD.
        let mut dst_blocks = dst.chunks_exact_mut(32);
        let mut src_blocks = src.chunks_exact(32);
        for (d, s) in dst_blocks.by_ref().zip(src_blocks.by_ref()) {
            for lane in 0..4 {
                let r = lane * 8..lane * 8 + 8;
                let v = u64::from_ne_bytes(d[r.clone()].try_into().expect("8-byte lane"))
                    ^ u64::from_ne_bytes(s[r.clone()].try_into().expect("8-byte lane"));
                d[r].copy_from_slice(&v.to_ne_bytes());
            }
        }
        for (d, s) in dst_blocks.into_remainder().iter_mut().zip(src_blocks.remainder()) {
            *d ^= *s;
        }
    }

    fn mul(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "mul requires equal-length slices");
        let table = t.full_table();
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = table[s as usize];
        }
    }

    fn mul_xor(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "mul_xor requires equal-length slices");
        let table = t.full_table();
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= table[s as usize];
        }
    }
}

/// SSSE3 (`pshufb`) and AVX2 (`vpshufb`) kernels.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::{Kernel, ScalarKernel, Split8};
    use std::arch::x86_64::*;

    /// 16 bytes per step via `pshufb` nibble lookups and `pxor`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Ssse3Kernel;

    /// 32 bytes per step via `vpshufb` nibble lookups and `vpxor`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Avx2Kernel;

    // SAFETY for everything below: callers (the safe trait methods) have
    // verified the required CPU feature at dispatch time, slice lengths
    // are asserted equal, and every pointer arithmetic stays inside the
    // checked `i + LANES <= len` prefix. All loads/stores use the
    // unaligned variants, so alignment is irrelevant.

    #[target_feature(enable = "ssse3")]
    unsafe fn xor_into_ssse3(dst: &mut [u8], src: &[u8]) {
        let len = dst.len();
        let mut i = 0;
        while i + 32 <= len {
            let d0 = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let d1 = _mm_loadu_si128(dst.as_ptr().add(i + 16).cast());
            let s0 = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let s1 = _mm_loadu_si128(src.as_ptr().add(i + 16).cast());
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d0, s0));
            _mm_storeu_si128(dst.as_mut_ptr().add(i + 16).cast(), _mm_xor_si128(d1, s1));
            i += 32;
        }
        ScalarKernel.xor_into(&mut dst[i..], &src[i..]);
    }

    /// One 16-byte GF(2^8) multiply: split each byte into nibbles, look
    /// both up with `pshufb`, XOR the halves (`coef·x = lo[x&15] ^
    /// hi[x>>4]`).
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn mul16(lo: __m128i, hi: __m128i, mask: __m128i, x: __m128i) -> __m128i {
        let lo_n = _mm_and_si128(x, mask);
        // srli works on 64-bit lanes; the cross-byte bits it drags in are
        // cleared by the nibble mask.
        let hi_n = _mm_and_si128(_mm_srli_epi64::<4>(x), mask);
        _mm_xor_si128(_mm_shuffle_epi8(lo, lo_n), _mm_shuffle_epi8(hi, hi_n))
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn mul_ssse3(t: &Split8, src: &[u8], dst: &mut [u8], accumulate: bool) {
        let lo = _mm_loadu_si128(t.lo().as_ptr().cast());
        let hi = _mm_loadu_si128(t.hi().as_ptr().cast());
        let mask = _mm_set1_epi8(0x0F);
        let len = src.len();
        let mut i = 0;
        while i + 16 <= len {
            let x = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let mut p = mul16(lo, hi, mask, x);
            if accumulate {
                p = _mm_xor_si128(p, _mm_loadu_si128(dst.as_ptr().add(i).cast()));
            }
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), p);
            i += 16;
        }
        if accumulate {
            ScalarKernel.mul_xor(t, &src[i..], &mut dst[i..]);
        } else {
            ScalarKernel.mul(t, &src[i..], &mut dst[i..]);
        }
    }

    impl Kernel for Ssse3Kernel {
        fn name(&self) -> &'static str {
            "ssse3"
        }

        fn xor_into(&self, dst: &mut [u8], src: &[u8]) {
            assert_eq!(dst.len(), src.len(), "xor_into requires equal-length slices");
            // SAFETY: ssse3 verified at kernel selection; lengths equal.
            unsafe { xor_into_ssse3(dst, src) }
        }

        fn mul(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul requires equal-length slices");
            // SAFETY: ssse3 verified at kernel selection; lengths equal.
            unsafe { mul_ssse3(t, src, dst, false) }
        }

        fn mul_xor(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul_xor requires equal-length slices");
            // SAFETY: ssse3 verified at kernel selection; lengths equal.
            unsafe { mul_ssse3(t, src, dst, true) }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn xor_into_avx2(dst: &mut [u8], src: &[u8]) {
        let len = dst.len();
        let mut i = 0;
        while i + 64 <= len {
            let d0 = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let d1 = _mm256_loadu_si256(dst.as_ptr().add(i + 32).cast());
            let s0 = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let s1 = _mm256_loadu_si256(src.as_ptr().add(i + 32).cast());
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d0, s0));
            _mm256_storeu_si256(dst.as_mut_ptr().add(i + 32).cast(), _mm256_xor_si256(d1, s1));
            i += 64;
        }
        while i + 32 <= len {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, s));
            i += 32;
        }
        ScalarKernel.xor_into(&mut dst[i..], &src[i..]);
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mul_avx2(t: &Split8, src: &[u8], dst: &mut [u8], accumulate: bool) {
        // The 16-entry tables are broadcast into both 128-bit lanes:
        // vpshufb shuffles within each lane, so each lane sees the full
        // nibble table.
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo().as_ptr().cast()));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi().as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0F);
        let len = src.len();
        let mut i = 0;
        while i + 32 <= len {
            let x = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let lo_n = _mm256_and_si256(x, mask);
            let hi_n = _mm256_and_si256(_mm256_srli_epi64::<4>(x), mask);
            let mut p =
                _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_n), _mm256_shuffle_epi8(hi, hi_n));
            if accumulate {
                p = _mm256_xor_si256(p, _mm256_loadu_si256(dst.as_ptr().add(i).cast()));
            }
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), p);
            i += 32;
        }
        if accumulate {
            ScalarKernel.mul_xor(t, &src[i..], &mut dst[i..]);
        } else {
            ScalarKernel.mul(t, &src[i..], &mut dst[i..]);
        }
    }

    impl Kernel for Avx2Kernel {
        fn name(&self) -> &'static str {
            "avx2"
        }

        fn xor_into(&self, dst: &mut [u8], src: &[u8]) {
            assert_eq!(dst.len(), src.len(), "xor_into requires equal-length slices");
            // SAFETY: avx2 verified at kernel selection; lengths equal.
            unsafe { xor_into_avx2(dst, src) }
        }

        fn mul(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul requires equal-length slices");
            // SAFETY: avx2 verified at kernel selection; lengths equal.
            unsafe { mul_avx2(t, src, dst, false) }
        }

        fn mul_xor(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul_xor requires equal-length slices");
            // SAFETY: avx2 verified at kernel selection; lengths equal.
            unsafe { mul_avx2(t, src, dst, true) }
        }
    }
}

/// NEON kernel (`vqtbl1q_u8` nibble lookups, 128-bit XOR).
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod arm {
    use super::{Kernel, ScalarKernel, Split8};
    use std::arch::aarch64::*;

    /// 16 bytes per step via `vqtbl1q_u8` nibble lookups and `veorq`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct NeonKernel;

    // SAFETY for everything below: NEON is verified at kernel selection
    // (and is baseline on aarch64), lengths are asserted equal by the
    // trait methods, and pointer arithmetic stays inside the checked
    // `i + 16 <= len` prefix. NEON loads/stores are alignment-free.

    #[target_feature(enable = "neon")]
    unsafe fn xor_into_neon(dst: &mut [u8], src: &[u8]) {
        let len = dst.len();
        let mut i = 0;
        while i + 16 <= len {
            let d = vld1q_u8(dst.as_ptr().add(i));
            let s = vld1q_u8(src.as_ptr().add(i));
            vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(d, s));
            i += 16;
        }
        ScalarKernel.xor_into(&mut dst[i..], &src[i..]);
    }

    #[target_feature(enable = "neon")]
    unsafe fn mul_neon(t: &Split8, src: &[u8], dst: &mut [u8], accumulate: bool) {
        let lo = vld1q_u8(t.lo().as_ptr());
        let hi = vld1q_u8(t.hi().as_ptr());
        let mask = vdupq_n_u8(0x0F);
        let len = src.len();
        let mut i = 0;
        while i + 16 <= len {
            let x = vld1q_u8(src.as_ptr().add(i));
            let lo_n = vandq_u8(x, mask);
            let hi_n = vshrq_n_u8::<4>(x);
            let mut p = veorq_u8(vqtbl1q_u8(lo, lo_n), vqtbl1q_u8(hi, hi_n));
            if accumulate {
                p = veorq_u8(p, vld1q_u8(dst.as_ptr().add(i)));
            }
            vst1q_u8(dst.as_mut_ptr().add(i), p);
            i += 16;
        }
        if accumulate {
            ScalarKernel.mul_xor(t, &src[i..], &mut dst[i..]);
        } else {
            ScalarKernel.mul(t, &src[i..], &mut dst[i..]);
        }
    }

    impl Kernel for NeonKernel {
        fn name(&self) -> &'static str {
            "neon"
        }

        fn xor_into(&self, dst: &mut [u8], src: &[u8]) {
            assert_eq!(dst.len(), src.len(), "xor_into requires equal-length slices");
            // SAFETY: neon verified at kernel selection; lengths equal.
            unsafe { xor_into_neon(dst, src) }
        }

        fn mul(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul requires equal-length slices");
            // SAFETY: neon verified at kernel selection; lengths equal.
            unsafe { mul_neon(t, src, dst, false) }
        }

        fn mul_xor(&self, t: &Split8, src: &[u8], dst: &mut [u8]) {
            assert_eq!(dst.len(), src.len(), "mul_xor requires equal-length slices");
            // SAFETY: neon verified at kernel selection; lengths equal.
            unsafe { mul_neon(t, src, dst, true) }
        }
    }
}

static SCALAR: ScalarKernel = ScalarKernel;
#[cfg(target_arch = "x86_64")]
static SSSE3: x86::Ssse3Kernel = x86::Ssse3Kernel;
#[cfg(target_arch = "x86_64")]
static AVX2: x86::Avx2Kernel = x86::Avx2Kernel;
#[cfg(target_arch = "aarch64")]
static NEON: arm::NeonKernel = arm::NeonKernel;

/// Every kernel compiled into this binary, **best first**, whether or not
/// the CPU supports it; `scalar` is always the last-resort tail.
#[cfg(target_arch = "x86_64")]
static COMPILED: [&dyn Kernel; 3] = [&AVX2, &SSSE3, &SCALAR];
#[cfg(target_arch = "aarch64")]
static COMPILED: [&dyn Kernel; 2] = [&NEON, &SCALAR];
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
static COMPILED: [&dyn Kernel; 1] = [&SCALAR];

fn compiled_kernels() -> &'static [&'static dyn Kernel] {
    &COMPILED
}

/// `true` when the running CPU can execute the named kernel.
fn cpu_supports(name: &str) -> bool {
    match name {
        "scalar" => true,
        #[cfg(target_arch = "x86_64")]
        "ssse3" => std::arch::is_x86_feature_detected!("ssse3"),
        #[cfg(target_arch = "x86_64")]
        "avx2" => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "aarch64")]
        "neon" => std::arch::is_aarch64_feature_detected!("neon"),
        _ => false,
    }
}

/// The kernels this CPU can actually run, best first. `scalar` is always
/// present and always last.
pub fn available_kernels() -> Vec<&'static dyn Kernel> {
    compiled_kernels().iter().copied().filter(|k| cpu_supports(k.name())).collect()
}

/// Best available kernel by the fixed preference order
/// (avx2 → ssse3 → neon → scalar).
fn auto_select() -> &'static dyn Kernel {
    *available_kernels().first().expect("scalar kernel is always available")
}

/// Index+1 into [`compiled_kernels`]; 0 means "not yet selected".
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn store_active(kernel: &'static dyn Kernel) {
    let idx = compiled_kernels()
        .iter()
        .position(|k| k.name() == kernel.name())
        .expect("kernel comes from the compiled set");
    ACTIVE.store(idx + 1, Ordering::Relaxed);
}

/// The dispatched kernel all coding region operations route through.
///
/// Selected on first call: an explicit [`force_kernel`] wins, then a
/// valid [`KERNEL_ENV`] override, then CPU auto-detection. The result is
/// cached in an atomic, so steady-state dispatch is one relaxed load.
pub fn active_kernel() -> &'static dyn Kernel {
    let idx = ACTIVE.load(Ordering::Relaxed);
    if idx != 0 {
        return compiled_kernels()[idx - 1];
    }
    let kernel = match std::env::var(KERNEL_ENV) {
        Ok(name) if name != "auto" => force_kernel(&name).unwrap_or_else(|_| auto_select()),
        _ => auto_select(),
    };
    store_active(kernel);
    kernel
}

/// Overrides the dispatched kernel by name (for benchmarking and
/// debugging; takes effect immediately, also over a previous selection).
///
/// # Errors
///
/// Returns [`GfError::UnknownKernel`] when no kernel has that name or
/// the CPU cannot execute it; the active kernel is left unchanged.
///
/// # Examples
///
/// ```
/// use ecc_gf::kernel::{active_kernel, force_kernel};
///
/// force_kernel("scalar")?;
/// assert_eq!(active_kernel().name(), "scalar");
/// assert!(force_kernel("not-a-kernel").is_err());
/// # Ok::<(), ecc_gf::GfError>(())
/// ```
pub fn force_kernel(name: &str) -> Result<&'static dyn Kernel, GfError> {
    let kernel = compiled_kernels()
        .iter()
        .copied()
        .find(|k| k.name() == name && cpu_supports(name))
        .ok_or_else(|| GfError::UnknownKernel { name: name.to_string() })?;
    store_active(kernel);
    Ok(kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gf8() -> GaloisField {
        GaloisField::new(8).unwrap()
    }

    #[test]
    fn split8_tables_agree_with_field_mul() {
        let gf = gf8();
        for coef in [0u16, 1, 2, 0x53, 0xFF] {
            let t = Split8::new(&gf, coef).unwrap();
            for b in 0..=255u16 {
                assert_eq!(t.mul_byte(b as u8) as u16, gf.mul(coef, b), "coef={coef} b={b}");
                let split = t.lo()[(b & 0xF) as usize] ^ t.hi()[(b >> 4) as usize];
                assert_eq!(split as u16, gf.mul(coef, b), "split coef={coef} b={b}");
            }
        }
    }

    #[test]
    fn split8_rejects_bad_inputs() {
        let gf16 = GaloisField::new(16).unwrap();
        assert!(matches!(Split8::new(&gf16, 2), Err(GfError::UnsupportedWidth { w: 16 })));
        assert!(matches!(Split8::new(&gf8(), 256), Err(GfError::ElementOutOfRange { .. })));
    }

    #[test]
    fn scalar_is_always_available_and_last() {
        let kernels = available_kernels();
        assert!(!kernels.is_empty());
        assert_eq!(kernels.last().unwrap().name(), "scalar");
    }

    #[test]
    fn every_available_kernel_matches_scalar() {
        let gf = gf8();
        let t = Split8::new(&gf, 0xB7).unwrap();
        // Lengths straddling every block boundary: empty, sub-word, one
        // SIMD lane, odd tails, multi-block.
        for len in [0usize, 1, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 255, 1024, 1031] {
            let src: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(37)).collect();
            let acc: Vec<u8> =
                (0..len).map(|i| (i as u8).wrapping_mul(11).wrapping_add(5)).collect();
            let mut want_xor = acc.clone();
            ScalarKernel.xor_into(&mut want_xor, &src);
            let mut want_mul = vec![0u8; len];
            ScalarKernel.mul(&t, &src, &mut want_mul);
            let mut want_mul_xor = acc.clone();
            ScalarKernel.mul_xor(&t, &src, &mut want_mul_xor);
            for k in available_kernels() {
                let mut got = acc.clone();
                k.xor_into(&mut got, &src);
                assert_eq!(got, want_xor, "{} xor len={len}", k.name());
                let mut got = vec![0u8; len];
                k.mul(&t, &src, &mut got);
                assert_eq!(got, want_mul, "{} mul len={len}", k.name());
                let mut got = acc.clone();
                k.mul_xor(&t, &src, &mut got);
                assert_eq!(got, want_mul_xor, "{} mul_xor len={len}", k.name());
            }
        }
    }

    #[test]
    fn force_kernel_round_trips() {
        let before = active_kernel().name();
        for k in available_kernels() {
            let forced = force_kernel(k.name()).unwrap();
            assert_eq!(forced.name(), k.name());
            assert_eq!(active_kernel().name(), k.name());
        }
        assert!(force_kernel("does-not-exist").is_err());
        force_kernel(before).unwrap();
    }
}
