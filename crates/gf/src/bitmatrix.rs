use crate::{GaloisField, Matrix};

/// A binary matrix stored as packed 64-bit words, row-major.
///
/// The central use is the *bitmatrix expansion* `B(E)` of a GF(2^w) matrix
/// `E` (paper §III-B): every field element becomes a `w × w` binary block,
/// after which a matrix–vector product over GF(2^w) becomes a sequence of
/// pure XOR operations on sub-packets. That expansion is what makes Cauchy
/// Reed–Solomon coding XOR-only.
///
/// # Examples
///
/// ```
/// use ecc_gf::{BitMatrix, GaloisField, Matrix};
///
/// let gf = GaloisField::new(4)?;
/// let e = Matrix::from_rows(1, 1, &[3])?;
/// let b = BitMatrix::from_gf_matrix(&e, &gf);
/// assert_eq!((b.rows(), b.cols()), (4, 4));
/// # Ok::<(), ecc_gf::GfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero bit matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        Self { rows, cols, words_per_row, bits: vec![0; rows * words_per_row] }
    }

    /// Creates the `n × n` identity bit matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Expands a GF(2^w) matrix into its binary representation.
    ///
    /// Following the classic Cauchy Reed–Solomon construction, element
    /// `e` at block `(i, j)` expands so that bit row `r`, bit column `c`
    /// of the block equals bit `r` of `e · x^c` in GF(2^w). A product over
    /// GF(2^w) then becomes XORs of bit-rows.
    pub fn from_gf_matrix(m: &Matrix, gf: &GaloisField) -> Self {
        let w = gf.w() as usize;
        let mut out = Self::zero(m.rows() * w, m.cols() * w);
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let e = m.get(i, j);
                for c in 0..w {
                    let col_val = gf.mul(e, 1 << c);
                    for r in 0..w {
                        if (col_val >> r) & 1 == 1 {
                            out.set(i * w + r, j * w + c, true);
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of bit rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols, "bit index out of bounds");
        let word = self.bits[r * self.words_per_row + c / 64];
        (word >> (c % 64)) & 1 == 1
    }

    /// Writes the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        assert!(r < self.rows && c < self.cols, "bit index out of bounds");
        let idx = r * self.words_per_row + c / 64;
        let mask = 1u64 << (c % 64);
        if v {
            self.bits[idx] |= mask;
        } else {
            self.bits[idx] &= !mask;
        }
    }

    /// Number of set bits in row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn row_ones(&self, r: usize) -> usize {
        assert!(r < self.rows, "row index out of bounds");
        self.bits[r * self.words_per_row..(r + 1) * self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Total number of set bits. Cauchy-matrix "goodness" (paper §IV-A)
    /// is measured by this count: fewer ones means fewer XORs per encode.
    pub fn ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the column indices of the set bits in row `r`.
    pub fn row_set_bits(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(r < self.rows, "row index out of bounds");
        (0..self.cols).filter(move |&c| self.get(r, c))
    }

    /// XOR of two rows as a difference count (number of positions where
    /// they differ). Used by the "smart" XOR scheduler to decide whether
    /// deriving one parity row from another is cheaper than computing it
    /// from scratch.
    ///
    /// # Panics
    ///
    /// Panics when either row index is out of bounds.
    pub fn row_diff(&self, a: usize, b: usize) -> usize {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        let ra = &self.bits[a * self.words_per_row..(a + 1) * self.words_per_row];
        let rb = &self.bits[b * self.words_per_row..(b + 1) * self.words_per_row];
        ra.iter().zip(rb).map(|(x, y)| (x ^ y).count_ones() as usize).sum()
    }

    /// Multiplies this bit matrix by a bit vector over GF(2).
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.cols()`.
    pub fn mul_bitvec(&self, v: &[bool]) -> Vec<bool> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows).map(|r| self.row_set_bits(r).fold(false, |acc, c| acc ^ v[c])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GaloisField;
    use proptest::prelude::*;

    #[test]
    fn identity_expansion_is_bit_identity() {
        let gf = GaloisField::new(8).unwrap();
        let id = Matrix::identity(3);
        let b = BitMatrix::from_gf_matrix(&id, &gf);
        assert_eq!(b, BitMatrix::identity(24));
    }

    #[test]
    fn ones_counts_match() {
        let mut b = BitMatrix::zero(3, 70);
        b.set(0, 0, true);
        b.set(0, 69, true);
        b.set(2, 64, true);
        assert_eq!(b.ones(), 3);
        assert_eq!(b.row_ones(0), 2);
        assert_eq!(b.row_ones(1), 0);
        assert_eq!(b.row_ones(2), 1);
    }

    #[test]
    fn set_then_clear_round_trips() {
        let mut b = BitMatrix::zero(2, 130);
        b.set(1, 129, true);
        assert!(b.get(1, 129));
        b.set(1, 129, false);
        assert!(!b.get(1, 129));
        assert_eq!(b.ones(), 0);
    }

    #[test]
    fn row_diff_counts_mismatches() {
        let mut b = BitMatrix::zero(2, 8);
        b.set(0, 1, true);
        b.set(0, 2, true);
        b.set(1, 2, true);
        b.set(1, 3, true);
        assert_eq!(b.row_diff(0, 1), 2);
        assert_eq!(b.row_diff(0, 0), 0);
    }

    /// Bit-level multiplication of the expansion must agree with field
    /// multiplication: B(E) applied to the bits of x equals the bits of E·x.
    #[test]
    fn expansion_encodes_field_multiplication() {
        let gf = GaloisField::new(8).unwrap();
        for e in [0u16, 1, 2, 3, 91, 144, 255] {
            let m = Matrix::from_rows(1, 1, &[e]).unwrap();
            let b = BitMatrix::from_gf_matrix(&m, &gf);
            for x in [0u16, 1, 5, 17, 128, 254] {
                let x_bits: Vec<bool> = (0..8).map(|i| (x >> i) & 1 == 1).collect();
                let y_bits = b.mul_bitvec(&x_bits);
                let y: u16 = y_bits.iter().enumerate().map(|(i, &bit)| (bit as u16) << i).sum();
                assert_eq!(y, gf.mul(e, x), "e={e} x={x}");
            }
        }
    }

    proptest! {
        /// The expansion is a ring homomorphism: B(E·F) == B(E)·B(F) acting
        /// on vectors.
        #[test]
        fn prop_expansion_respects_products(e in 0u16..256, f in 0u16..256, x in 0u16..256) {
            let gf = GaloisField::new(8).unwrap();
            let me = Matrix::from_rows(1, 1, &[e]).unwrap();
            let mf = Matrix::from_rows(1, 1, &[f]).unwrap();
            let prod = me.mul(&mf, &gf).unwrap();
            let b_prod = BitMatrix::from_gf_matrix(&prod, &gf);
            let be = BitMatrix::from_gf_matrix(&me, &gf);
            let bf = BitMatrix::from_gf_matrix(&mf, &gf);
            let x_bits: Vec<bool> = (0..8).map(|i| (x >> i) & 1 == 1).collect();
            let via_chain = be.mul_bitvec(&bf.mul_bitvec(&x_bits));
            let direct = b_prod.mul_bitvec(&x_bits);
            prop_assert_eq!(via_chain, direct);
        }

        #[test]
        fn prop_mul_bitvec_linear(
            e in 0u16..256,
            x in 0u16..256,
            y in 0u16..256,
        ) {
            let gf = GaloisField::new(8).unwrap();
            let m = Matrix::from_rows(1, 1, &[e]).unwrap();
            let b = BitMatrix::from_gf_matrix(&m, &gf);
            let bits = |v: u16| (0..8).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>();
            let lhs = b.mul_bitvec(&bits(x ^ y));
            let bx = b.mul_bitvec(&bits(x));
            let by = b.mul_bitvec(&bits(y));
            let rhs: Vec<bool> = bx.iter().zip(&by).map(|(a, b)| a ^ b).collect();
            prop_assert_eq!(lhs, rhs);
        }
    }
}
