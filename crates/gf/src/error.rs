use std::error::Error;
use std::fmt;

/// Errors produced by Galois-field and matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GfError {
    /// The requested word width is not one of the supported values.
    UnsupportedWidth {
        /// The width that was requested.
        w: u8,
    },
    /// A field element lies outside `[0, 2^w)`.
    ElementOutOfRange {
        /// The offending element.
        element: u16,
        /// The field word width.
        w: u8,
    },
    /// Division by the zero element.
    DivisionByZero,
    /// Matrix dimensions do not allow the requested operation.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The matrix is singular and cannot be inverted.
    SingularMatrix,
    /// No coding kernel has the requested name, or the CPU cannot run it.
    UnknownKernel {
        /// The name that failed to resolve.
        name: String,
    },
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfError::UnsupportedWidth { w } => {
                write!(f, "unsupported field width w={w}; supported widths are 4, 8 and 16")
            }
            GfError::ElementOutOfRange { element, w } => {
                write!(f, "element {element} is outside GF(2^{w})")
            }
            GfError::DivisionByZero => write!(f, "division by zero in GF(2^w)"),
            GfError::DimensionMismatch { detail } => {
                write!(f, "matrix dimension mismatch: {detail}")
            }
            GfError::SingularMatrix => write!(f, "matrix is singular"),
            GfError::UnknownKernel { name } => {
                write!(f, "no available coding kernel named {name:?}")
            }
        }
    }
}

impl Error for GfError {}
