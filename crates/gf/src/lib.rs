//! Galois-field arithmetic for the ECCheck reproduction.
//!
//! This crate implements everything ECCheck's erasure-coding layer needs
//! from finite-field mathematics, from scratch:
//!
//! * [`GaloisField`] — arithmetic over GF(2^w) for w ∈ {4, 8, 16} using
//!   log/exp tables built from standard primitive polynomials (the same
//!   fields Jerasure exposes, which the paper adopts in §IV-A).
//! * [`Matrix`] — dense matrices over GF(2^w) with Gauss–Jordan inversion,
//!   used to build Cauchy/Vandermonde generator matrices and to invert
//!   survivor submatrices during decode.
//! * [`BitMatrix`] — the binary expansion `B(E)` of a GF(2^w) matrix that
//!   turns every multiplication into pure XORs (the basis of Cauchy
//!   Reed–Solomon coding, paper §III-B and §IV-A).
//! * [`kernel`] — runtime-dispatched SIMD kernels (SSSE3/AVX2 `pshufb`
//!   split-table GF(2^8) multiply, NEON, wide XOR) that the erasure
//!   layer's region operations route through, with a portable scalar
//!   reference. See `DESIGN.md` §11.
//!
//! # Examples
//!
//! ```
//! use ecc_gf::GaloisField;
//!
//! let gf = GaloisField::new(8)?;
//! let a = 0x53;
//! let b = 0xCA;
//! let p = gf.mul(a, b);
//! assert_eq!(gf.div(p, b)?, a);
//! # Ok::<(), ecc_gf::GfError>(())
//! ```

// `deny` rather than `forbid`: the SIMD paths in `kernel` need scoped
// `std::arch` intrinsics behind explicit `#[allow(unsafe_code)]` blocks
// with per-call safety invariants; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bitmatrix;
mod error;
mod field;
pub mod kernel;
mod matrix;

pub use bitmatrix::BitMatrix;
pub use error::GfError;
pub use field::{GaloisField, SUPPORTED_WIDTHS};
pub use kernel::{Kernel, Split16, Split8};
pub use matrix::Matrix;
