use crate::{Bandwidth, SimDuration, SimTime};

/// A serially-shared resource with FIFO reservation semantics.
///
/// Models anything that serves one request at a time at a fixed rate: a
/// node's NIC, the aggregated remote-storage frontend, a host's DtoH copy
/// engine. A caller asks to start work at some instant; the resource
/// grants the later of that instant and its own availability, then
/// advances its availability by the work's duration.
///
/// # Examples
///
/// ```
/// use ecc_sim::{Bandwidth, FifoResource, SimTime};
///
/// // The paper's 5 Gbps aggregated remote-storage bandwidth (§V-B).
/// let mut storage = FifoResource::with_rate(Bandwidth::from_gbps(5.0));
/// let (s1, e1) = storage.reserve_bytes(SimTime::ZERO, 625_000_000); // 1 s of data
/// let (s2, _e2) = storage.reserve_bytes(SimTime::ZERO, 625_000_000);
/// assert_eq!(s1, SimTime::ZERO);
/// assert_eq!(s2, e1); // second writer queues behind the first
/// ```
#[derive(Debug, Clone)]
pub struct FifoResource {
    rate: Option<Bandwidth>,
    next_free: SimTime,
    busy_total: SimDuration,
}

impl FifoResource {
    /// A resource whose requests carry explicit durations.
    pub fn new() -> Self {
        Self { rate: None, next_free: SimTime::ZERO, busy_total: SimDuration::ZERO }
    }

    /// A resource that serves byte-sized requests at a fixed rate.
    pub fn with_rate(rate: Bandwidth) -> Self {
        Self { rate: Some(rate), next_free: SimTime::ZERO, busy_total: SimDuration::ZERO }
    }

    /// The instant at which the resource next becomes free.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total busy time accumulated across all reservations.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// The configured service rate, if any.
    pub fn rate(&self) -> Option<Bandwidth> {
        self.rate
    }

    /// Reserves the resource for `duration` starting no earlier than
    /// `earliest`; returns the granted `(start, end)`.
    pub fn reserve(&mut self, earliest: SimTime, duration: SimDuration) -> (SimTime, SimTime) {
        let start = earliest.max(self.next_free);
        let end = start + duration;
        self.next_free = end;
        self.busy_total += duration;
        (start, end)
    }

    /// Reserves the resource to move `bytes` at the configured rate.
    ///
    /// # Panics
    ///
    /// Panics when the resource was built without a rate.
    pub fn reserve_bytes(&mut self, earliest: SimTime, bytes: u64) -> (SimTime, SimTime) {
        let rate = self.rate.expect("reserve_bytes requires a rated resource");
        self.reserve(earliest, rate.transfer_time(bytes))
    }

    /// Resets the resource to idle at time zero (new simulation run).
    pub fn reset(&mut self) {
        self.next_free = SimTime::ZERO;
        self.busy_total = SimDuration::ZERO;
    }
}

impl Default for FifoResource {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_queue_fifo() {
        let mut r = FifoResource::new();
        let (s1, e1) = r.reserve(SimTime::ZERO, SimDuration::from_millis(10));
        let (s2, e2) = r.reserve(SimTime::ZERO, SimDuration::from_millis(5));
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(s2, e1);
        assert_eq!(e2 - SimTime::ZERO, SimDuration::from_millis(15));
    }

    #[test]
    fn idle_gap_is_respected() {
        let mut r = FifoResource::new();
        r.reserve(SimTime::ZERO, SimDuration::from_millis(1));
        // Arrives long after the resource went idle.
        let later = SimTime::ZERO + SimDuration::from_secs(1);
        let (s, _) = r.reserve(later, SimDuration::from_millis(1));
        assert_eq!(s, later);
    }

    #[test]
    fn busy_total_accumulates() {
        let mut r = FifoResource::new();
        r.reserve(SimTime::ZERO, SimDuration::from_millis(3));
        r.reserve(SimTime::ZERO, SimDuration::from_millis(4));
        assert_eq!(r.busy_total(), SimDuration::from_millis(7));
        r.reset();
        assert_eq!(r.busy_total(), SimDuration::ZERO);
        assert_eq!(r.next_free(), SimTime::ZERO);
    }

    #[test]
    fn rated_resource_sizes_reservations() {
        let mut r = FifoResource::with_rate(Bandwidth::from_gbps(8.0)); // 1 GB/s
        let (_, end) = r.reserve_bytes(SimTime::ZERO, 500_000_000);
        assert_eq!(end - SimTime::ZERO, SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "requires a rated resource")]
    fn reserve_bytes_without_rate_panics() {
        let mut r = FifoResource::new();
        r.reserve_bytes(SimTime::ZERO, 1);
    }
}
