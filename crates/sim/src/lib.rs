//! Deterministic discrete-event simulation for the ECCheck reproduction.
//!
//! The paper's evaluation runs on a 4-node A100 testbed (and up to 32
//! V100s). This reproduction has no GPUs, so cluster-scale *timing* is
//! produced by a discrete-event model instead, while the data plane runs
//! for real (see the `ecc-cluster` crate). This crate provides the
//! timing substrate:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulated time
//!   (no floats on the clock, no wall-clock anywhere: runs are
//!   deterministic and reproducible).
//! * [`Bandwidth`] — link/storage speeds and transfer-time arithmetic.
//! * [`Simulation`] — a classic event-queue engine (time-ordered heap,
//!   FIFO tie-breaking) for open-ended models.
//! * [`FifoResource`] — a serially-shared resource (a NIC, a storage
//!   frontend, a coding CPU) with reservation semantics.
//! * [`BusyWindows`] — busy/idle interval timelines used to schedule
//!   checkpoint communication into *network idle slots* (paper §IV-B-3).
//! * [`pipeline_completion`] — the pipeline recurrence that models
//!   ECCheck's encode → XOR-reduce → P2P stages (paper §IV-C).
//!
//! # Examples
//!
//! ```
//! use ecc_sim::{Bandwidth, SimDuration};
//!
//! let nic = Bandwidth::from_gbps(100.0);
//! let t = nic.transfer_time(1_250_000_000); // 1.25 GB over 100 Gbps
//! assert_eq!(t, SimDuration::from_millis(100));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod engine;
mod gate;
mod pipeline;
mod resource;
mod time;
mod windows;

pub use bandwidth::Bandwidth;
pub use engine::Simulation;
pub use gate::{Admission, SlotGate};
pub use pipeline::{
    pipeline_completion, pipeline_utilization, record_pipeline, trace_pipeline, StageConstraint,
};
pub use resource::FifoResource;
pub use time::{SimDuration, SimTime};
pub use windows::BusyWindows;
