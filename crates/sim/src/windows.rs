use crate::{SimDuration, SimTime};

/// A timeline of busy intervals with idle-gap queries.
///
/// ECCheck profiles the network-busy intervals of the first training
/// iterations and then schedules checkpoint communication into the idle
/// gaps (paper §IV-B-3). `BusyWindows` is that profile: a sorted,
/// non-overlapping set of `[start, end)` busy intervals; everything else
/// (including all time after the last interval) is idle.
///
/// # Examples
///
/// ```
/// use ecc_sim::{BusyWindows, SimDuration, SimTime};
///
/// let mut w = BusyWindows::new();
/// let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
/// w.add_busy(t(10), t(20));
/// // 5 ms of work arriving at t=8 runs 2 ms, pauses during the busy
/// // window, and finishes 3 ms after it.
/// assert_eq!(w.fit_split(t(8), SimDuration::from_millis(5)), t(23));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BusyWindows {
    /// Sorted, non-overlapping, non-touching `[start, end)` intervals.
    busy: Vec<(SimTime, SimTime)>,
}

impl BusyWindows {
    /// An empty (always idle) timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `[start, end)` as busy, merging with existing intervals.
    ///
    /// # Panics
    ///
    /// Panics when `start > end`.
    pub fn add_busy(&mut self, start: SimTime, end: SimTime) {
        assert!(start <= end, "busy interval must not be inverted");
        if start == end {
            return;
        }
        self.busy.push((start, end));
        self.busy.sort_unstable();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(self.busy.len());
        for &(s, e) in &self.busy {
            match merged.last_mut() {
                Some((_, last_end)) if s <= *last_end => {
                    *last_end = (*last_end).max(e);
                }
                _ => merged.push((s, e)),
            }
        }
        self.busy = merged;
    }

    /// The busy intervals, sorted and disjoint.
    pub fn busy(&self) -> &[(SimTime, SimTime)] {
        &self.busy
    }

    /// `true` when nothing is scheduled at instant `t`.
    pub fn is_idle_at(&self, t: SimTime) -> bool {
        self.busy.iter().all(|&(s, e)| t < s || t >= e)
    }

    /// Total busy time inside `[from, to)`.
    pub fn busy_between(&self, from: SimTime, to: SimTime) -> SimDuration {
        self.busy
            .iter()
            .map(|&(s, e)| {
                let lo = s.max(from);
                let hi = e.min(to);
                if lo < hi {
                    hi - lo
                } else {
                    SimDuration::ZERO
                }
            })
            .sum()
    }

    /// Fraction of `[from, to)` that is idle (1.0 for an empty range).
    pub fn idle_fraction_between(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 1.0;
        }
        let total = to - from;
        let busy = self.busy_between(from, to);
        1.0 - busy.as_secs_f64() / total.as_secs_f64()
    }

    /// Completion time of `work` arriving at `from` when it may run only
    /// in idle gaps and can be split across them (the checkpoint
    /// communication model: transfers are buffered and chunked).
    pub fn fit_split(&self, from: SimTime, work: SimDuration) -> SimTime {
        let mut t = self.next_idle_at(from);
        let mut remaining = work;
        loop {
            if remaining == SimDuration::ZERO {
                return t;
            }
            match self.next_busy_after(t) {
                Some((bs, be)) if bs < t + remaining => {
                    // The gap [t, bs) absorbs part of the work.
                    remaining = remaining.saturating_sub(bs - t);
                    t = be;
                    t = self.next_idle_at(t);
                }
                _ => return t + remaining,
            }
        }
    }

    /// Earliest completion of `work` requiring one *contiguous* idle gap
    /// of at least `work`, starting no earlier than `from`.
    pub fn fit_contiguous(&self, from: SimTime, work: SimDuration) -> SimTime {
        let mut t = self.next_idle_at(from);
        loop {
            match self.next_busy_after(t) {
                Some((bs, be)) if bs < t + work => {
                    t = self.next_idle_at(be);
                }
                _ => return t + work,
            }
        }
    }

    /// Records the timeline's occupancy over `[from, to)` into a
    /// telemetry recorder: busy/idle nanosecond counters and a histogram
    /// of individual busy-window lengths (per-slot occupancy), all under
    /// `<name>.*`.
    pub fn record_occupancy(
        &self,
        recorder: &ecc_telemetry::Recorder,
        name: &str,
        from: SimTime,
        to: SimTime,
    ) {
        let busy = self.busy_between(from, to);
        let total = if to > from { to - from } else { SimDuration::ZERO };
        recorder.counter(&format!("{name}.busy_ns")).add(busy.as_nanos());
        recorder
            .counter(&format!("{name}.idle_ns"))
            .add(total.as_nanos().saturating_sub(busy.as_nanos()));
        let window_hist = recorder.histogram(&format!("{name}.window_ns"));
        for &(s, e) in &self.busy {
            let lo = s.max(from);
            let hi = e.min(to);
            if lo < hi {
                window_hist.record((hi - lo).as_nanos());
            }
        }
    }

    /// The execution segments [`BusyWindows::fit_split`] implies:
    /// `[start, end)` intervals in which the split work actually runs,
    /// in order. Their lengths sum to `work` and the last `end` equals
    /// `fit_split(from, work)`. Empty for zero work.
    pub fn split_segments(&self, from: SimTime, work: SimDuration) -> Vec<(SimTime, SimTime)> {
        let mut segments = Vec::new();
        let mut t = self.next_idle_at(from);
        let mut remaining = work;
        if remaining == SimDuration::ZERO {
            return segments;
        }
        loop {
            match self.next_busy_after(t) {
                Some((bs, be)) if bs < t + remaining => {
                    if bs > t {
                        segments.push((t, bs));
                    }
                    remaining = remaining.saturating_sub(bs - t);
                    t = self.next_idle_at(be);
                }
                _ => {
                    segments.push((t, t + remaining));
                    return segments;
                }
            }
        }
    }

    /// Emits the busy intervals overlapping `[from, to)` as `name` spans
    /// on `track` (clipped to the range), so a trace shows exactly when
    /// the resource was occupied — e.g. the training iterations'
    /// network-busy windows the checkpoint traffic must dodge.
    pub fn trace_occupancy(
        &self,
        tracer: &ecc_trace::Tracer,
        track: ecc_trace::TrackId,
        name: &str,
        from: SimTime,
        to: SimTime,
    ) {
        for &(s, e) in &self.busy {
            let lo = s.max(from);
            let hi = e.min(to);
            if lo < hi {
                tracer.begin_at(track, name, "", lo.as_nanos());
                tracer.end_at(track, hi.as_nanos());
            }
        }
    }

    /// The first idle instant at or after `t`.
    pub fn next_idle_at(&self, t: SimTime) -> SimTime {
        let mut t = t;
        for &(s, e) in &self.busy {
            if t >= s && t < e {
                t = e;
            }
        }
        t
    }

    fn next_busy_after(&self, t: SimTime) -> Option<(SimTime, SimTime)> {
        self.busy.iter().copied().find(|&(s, e)| e > t && s >= t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn intervals_merge() {
        let mut w = BusyWindows::new();
        w.add_busy(t(10), t(20));
        w.add_busy(t(15), t(25));
        w.add_busy(t(25), t(30)); // touching intervals merge too
        w.add_busy(t(40), t(50));
        assert_eq!(w.busy(), &[(t(10), t(30)), (t(40), t(50))]);
    }

    #[test]
    fn empty_interval_is_ignored() {
        let mut w = BusyWindows::new();
        w.add_busy(t(5), t(5));
        assert!(w.busy().is_empty());
    }

    #[test]
    fn idle_queries() {
        let mut w = BusyWindows::new();
        w.add_busy(t(10), t(20));
        assert!(w.is_idle_at(t(5)));
        assert!(!w.is_idle_at(t(10)));
        assert!(!w.is_idle_at(t(19)));
        assert!(w.is_idle_at(t(20)));
        assert_eq!(w.next_idle_at(t(15)), t(20));
        assert_eq!(w.next_idle_at(t(3)), t(3));
    }

    #[test]
    fn fit_split_spans_gaps() {
        let mut w = BusyWindows::new();
        w.add_busy(t(10), t(20));
        w.add_busy(t(25), t(35));
        // 12 ms of work from t=0: 10 ms before the first busy window,
        // 2 ms in the [20, 25) gap -> done at 22 ms.
        assert_eq!(w.fit_split(t(0), d(12)), t(22));
        // 16 ms of work from t=0: 10 + 5 in the gap + 1 after t=35.
        assert_eq!(w.fit_split(t(0), d(16)), t(36));
        // Work arriving mid-busy starts at the window's end.
        assert_eq!(w.fit_split(t(12), d(3)), t(23));
    }

    #[test]
    fn fit_contiguous_skips_small_gaps() {
        let mut w = BusyWindows::new();
        w.add_busy(t(10), t(20));
        w.add_busy(t(25), t(35));
        // 5 ms fits in the [0, 10) gap when arriving at 0...
        assert_eq!(w.fit_contiguous(t(0), d(5)), t(5));
        // ...and exactly in [20, 25) when arriving mid-busy at 12.
        assert_eq!(w.fit_contiguous(t(12), d(5)), t(25));
        // 6 ms does not fit in [20, 25): must wait until after t=35.
        assert_eq!(w.fit_contiguous(t(12), d(6)), t(41));
    }

    #[test]
    fn busy_fraction() {
        let mut w = BusyWindows::new();
        w.add_busy(t(10), t(20));
        assert_eq!(w.busy_between(t(0), t(40)), d(10));
        assert!((w.idle_fraction_between(t(0), t(40)) - 0.75).abs() < 1e-12);
        assert_eq!(w.idle_fraction_between(t(5), t(5)), 1.0);
    }

    #[test]
    fn split_segments_mirror_fit_split() {
        let mut w = BusyWindows::new();
        w.add_busy(t(10), t(20));
        w.add_busy(t(25), t(35));
        // 12 ms from t=0 runs [0,10) and [20,22).
        assert_eq!(w.split_segments(t(0), d(12)), vec![(t(0), t(10)), (t(20), t(22))]);
        // 16 ms from t=0 also uses the whole [20,25) gap and 1 ms after 35.
        assert_eq!(
            w.split_segments(t(0), d(16)),
            vec![(t(0), t(10)), (t(20), t(25)), (t(35), t(36))]
        );
        // Arriving mid-busy starts at the window's end.
        assert_eq!(w.split_segments(t(12), d(3)), vec![(t(20), t(23))]);
        assert!(w.split_segments(t(0), SimDuration::ZERO).is_empty());
    }

    #[test]
    fn trace_occupancy_clips_to_range() {
        let mut w = BusyWindows::new();
        w.add_busy(t(10), t(20));
        w.add_busy(t(30), t(40));
        let (tracer, _clock) = ecc_trace::Tracer::with_manual_clock();
        let track = tracer.track(0, "net", "busy");
        w.trace_occupancy(&tracer, track, "train.comm", t(15), t(35));
        let json = tracer.chrome_trace_json();
        let stats = ecc_trace::validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.spans, 2);
        // Clipped boundaries: 15 ms and 35 ms in decimal microseconds.
        assert!(json.contains("\"ts\":15000.000"));
        assert!(json.contains("\"ts\":35000.000"));
    }

    #[test]
    fn work_after_all_windows_runs_unimpeded() {
        let mut w = BusyWindows::new();
        w.add_busy(t(10), t(20));
        assert_eq!(w.fit_split(t(100), d(50)), t(150));
        assert_eq!(w.fit_contiguous(t(100), d(50)), t(150));
    }

    proptest! {
        /// Split-fit completion is never earlier than running the same
        /// work with zero contention, and never later than contiguous fit.
        #[test]
        fn prop_fit_bounds(
            starts in proptest::collection::vec(0u64..1000, 0..6),
            arrive in 0u64..1000,
            work in 1u64..200,
        ) {
            let mut w = BusyWindows::new();
            for s in starts {
                w.add_busy(t(s), t(s + 17));
            }
            let done_split = w.fit_split(t(arrive), d(work));
            let done_cont = w.fit_contiguous(t(arrive), d(work));
            prop_assert!(done_split >= t(arrive + work));
            prop_assert!(done_cont >= done_split);
        }

        /// split_segments agrees with fit_split: the segment lengths sum
        /// to the work, the last end is the completion instant, and no
        /// segment overlaps a busy window.
        #[test]
        fn prop_split_segments_agree_with_fit_split(
            starts in proptest::collection::vec(0u64..1000, 0..6),
            arrive in 0u64..1000,
            work in 1u64..200,
        ) {
            let mut w = BusyWindows::new();
            for s in starts {
                w.add_busy(t(s), t(s + 17));
            }
            let segments = w.split_segments(t(arrive), d(work));
            let total: SimDuration = segments.iter().map(|&(s, e)| e - s).sum();
            prop_assert_eq!(total, d(work));
            prop_assert_eq!(segments.last().unwrap().1, w.fit_split(t(arrive), d(work)));
            for &(s, e) in &segments {
                prop_assert_eq!(w.busy_between(s, e), SimDuration::ZERO);
            }
        }

        /// fit_split conserves work: idle time consumed between arrival
        /// and completion equals the work amount.
        #[test]
        fn prop_fit_split_conserves_work(
            starts in proptest::collection::vec(0u64..500, 0..5),
            work in 1u64..100,
        ) {
            let mut w = BusyWindows::new();
            for s in starts {
                w.add_busy(t(s), t(s + 13));
            }
            let arrive = t(0);
            let done = w.fit_split(arrive, d(work));
            let span = done - arrive;
            let busy = w.busy_between(arrive, done);
            prop_assert_eq!(span - busy, d(work));
        }
    }
}
