use ecc_telemetry::Recorder;
use ecc_trace::{FlowId, Tracer, TrackId};

use crate::{BusyWindows, SimDuration, SimTime};

/// When a pipeline stage is allowed to run.
#[derive(Debug, Clone, Copy)]
pub enum StageConstraint<'a> {
    /// The stage runs whenever its inputs are ready (CPU work).
    Free,
    /// The stage runs only inside the idle gaps of a busy timeline and
    /// may be split across gaps (checkpoint communication deferred to
    /// network idle slots, paper §IV-B-3).
    IdleSlots(&'a BusyWindows),
}

impl StageConstraint<'_> {
    fn finish(&self, ready: SimTime, work: SimDuration) -> SimTime {
        match self {
            StageConstraint::Free => ready + work,
            StageConstraint::IdleSlots(w) => w.fit_split(ready, work),
        }
    }
}

/// Evaluates the classic pipeline recurrence used to model ECCheck's
/// buffered encode → XOR-reduce → P2P execution (paper §IV-C).
///
/// `durations[s][i]` is the service time of item `i` at stage `s`. Each
/// stage processes items in order and holds one item at a time; item `i`
/// enters stage `s` when both stage `s-1` has finished item `i` and stage
/// `s` has finished item `i-1`. Returns the completion instants
/// `done[s][i]`.
///
/// # Panics
///
/// Panics when stages have differing item counts or `constraints.len()`
/// differs from the stage count.
///
/// # Examples
///
/// ```
/// use ecc_sim::{pipeline_completion, SimDuration, SimTime, StageConstraint};
///
/// let ms = |n| SimDuration::from_millis(n);
/// // Two stages, three items, perfectly overlapped.
/// let done = pipeline_completion(
///     &[vec![ms(10), ms(10), ms(10)], vec![ms(10), ms(10), ms(10)]],
///     &[StageConstraint::Free, StageConstraint::Free],
///     SimTime::ZERO,
/// );
/// assert_eq!(done[1][2], SimTime::ZERO + ms(40)); // 10 fill + 3×10 drain
/// ```
pub fn pipeline_completion(
    durations: &[Vec<SimDuration>],
    constraints: &[StageConstraint<'_>],
    start: SimTime,
) -> Vec<Vec<SimTime>> {
    assert_eq!(durations.len(), constraints.len(), "one constraint per stage is required");
    let stages = durations.len();
    if stages == 0 {
        return Vec::new();
    }
    let items = durations[0].len();
    assert!(
        durations.iter().all(|d| d.len() == items),
        "all stages must have the same number of items"
    );
    let mut done: Vec<Vec<SimTime>> = vec![vec![SimTime::ZERO; items]; stages];
    for s in 0..stages {
        for i in 0..items {
            let upstream = if s == 0 { start } else { done[s - 1][i] };
            let prev_here = if i == 0 { start } else { done[s][i - 1] };
            let ready = upstream.max(prev_here);
            done[s][i] = constraints[s].finish(ready, durations[s][i]);
        }
    }
    done
}

/// Per-stage utilization of a solved pipeline: service time divided by
/// the stage's wall-clock span (first possible start to last finish).
/// Empty stages report 0.0.
pub fn pipeline_utilization(
    durations: &[Vec<SimDuration>],
    done: &[Vec<SimTime>],
    start: SimTime,
) -> Vec<f64> {
    durations
        .iter()
        .zip(done)
        .map(|(service, finished)| {
            let busy: SimDuration = service.iter().copied().sum();
            match finished.last() {
                Some(&last) if last > start => busy.as_secs_f64() / (last - start).as_secs_f64(),
                _ => 0.0,
            }
        })
        .collect()
}

/// Records a solved pipeline into a telemetry recorder: per-stage busy,
/// span and idle nanoseconds under `sim.pipeline.stage<N>.*` plus the
/// total `sim.pipeline.makespan_ns`. Utilization is `busy_ns / span_ns`.
pub fn record_pipeline(
    recorder: &Recorder,
    durations: &[Vec<SimDuration>],
    done: &[Vec<SimTime>],
    start: SimTime,
) {
    for (s, (service, finished)) in durations.iter().zip(done).enumerate() {
        let busy: SimDuration = service.iter().copied().sum();
        let span = match finished.last() {
            Some(&last) => last - start,
            None => SimDuration::ZERO,
        };
        recorder.counter(&format!("sim.pipeline.stage{s}.busy_ns")).add(busy.as_nanos());
        recorder.counter(&format!("sim.pipeline.stage{s}.span_ns")).add(span.as_nanos());
        recorder
            .counter(&format!("sim.pipeline.stage{s}.idle_ns"))
            .add(span.as_nanos().saturating_sub(busy.as_nanos()));
    }
    if let Some(last_stage) = done.last() {
        if let Some(&last) = last_stage.last() {
            recorder.counter("sim.pipeline.makespan_ns").add((last - start).as_nanos());
        }
    }
}

/// Renders a solved pipeline onto trace tracks: one `pkt<i>` span per
/// item per stage covering `[ready, done]` (ready includes any wait for
/// the stage slot or idle gaps), with a `flow_name` arrow from each
/// item's slice to its slice on the next stage. `tracks[s]` is the
/// track for stage `s`; items keep their index in the span name so the
/// hand-off of a single packet can be followed across stages.
///
/// # Panics
///
/// Panics when `tracks`, `durations` and `done` disagree on the stage
/// count, or stages disagree on the item count.
pub fn trace_pipeline(
    tracer: &Tracer,
    tracks: &[TrackId],
    flow_name: &str,
    durations: &[Vec<SimDuration>],
    done: &[Vec<SimTime>],
    start: SimTime,
) {
    assert_eq!(tracks.len(), done.len(), "one track per stage is required");
    assert_eq!(durations.len(), done.len(), "durations and done must cover the same stages");
    let stages = done.len();
    if stages == 0 {
        return;
    }
    let items = done[0].len();
    assert!(
        done.iter().all(|d| d.len() == items) && durations.iter().all(|d| d.len() == items),
        "all stages must have the same number of items"
    );
    // Flow out of stage s, item i; ended when stage s+1 picks the item up.
    let mut inbound: Vec<Option<FlowId>> = vec![None; items];
    for s in 0..stages {
        for i in 0..items {
            let upstream = if s == 0 { start } else { done[s - 1][i] };
            let prev_here = if i == 0 { start } else { done[s][i - 1] };
            let ready = upstream.max(prev_here);
            let finish = done[s][i];
            tracer.begin_at(
                tracks[s],
                &format!("pkt{i}"),
                format!("service {}", ecc_telemetry::fmt_ns(durations[s][i].as_nanos() as f64)),
                ready.as_nanos(),
            );
            if let Some(flow) = inbound[i].take() {
                tracer.flow_end_at(tracks[s], flow, flow_name, ready.as_nanos());
            }
            if s + 1 < stages {
                // Emitted before the End so the arrow leaves this slice.
                inbound[i] = Some(tracer.flow_start_at(tracks[s], flow_name, finish.as_nanos()));
            }
            tracer.end_at(tracks[s], finish.as_nanos());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn t(n: u64) -> SimTime {
        SimTime::ZERO + ms(n)
    }

    #[test]
    fn single_stage_is_sequential() {
        let done = pipeline_completion(
            &[vec![ms(5), ms(7), ms(3)]],
            &[StageConstraint::Free],
            SimTime::ZERO,
        );
        assert_eq!(done[0], vec![t(5), t(12), t(15)]);
    }

    #[test]
    fn balanced_two_stage_overlaps() {
        let done = pipeline_completion(
            &[vec![ms(10); 4], vec![ms(10); 4]],
            &[StageConstraint::Free, StageConstraint::Free],
            SimTime::ZERO,
        );
        // Fill 10 ms, then one item drains every 10 ms.
        assert_eq!(done[1][3], t(50));
    }

    #[test]
    fn bottleneck_stage_dominates() {
        let done = pipeline_completion(
            &[vec![ms(1); 5], vec![ms(10); 5], vec![ms(1); 5]],
            &[StageConstraint::Free, StageConstraint::Free, StageConstraint::Free],
            SimTime::ZERO,
        );
        // Stage 2 is the bottleneck: 1 (fill) + 5×10 + 1 (drain) = 52.
        assert_eq!(done[2][4], t(52));
    }

    #[test]
    fn idle_slot_stage_waits_for_gaps() {
        let mut w = BusyWindows::new();
        w.add_busy(t(2), t(100));
        let done = pipeline_completion(
            &[vec![ms(1), ms(1)], vec![ms(3), ms(3)]],
            &[StageConstraint::Free, StageConstraint::IdleSlots(&w)],
            SimTime::ZERO,
        );
        // Stage 2 gets 1 ms of idle before t=2, then resumes at t=100.
        assert_eq!(done[1][0], t(102));
        assert_eq!(done[1][1], t(105));
    }

    #[test]
    fn start_offset_shifts_everything() {
        let done = pipeline_completion(&[vec![ms(5)]], &[StageConstraint::Free], t(100));
        assert_eq!(done[0][0], t(105));
    }

    #[test]
    fn empty_pipeline_is_empty() {
        let done = pipeline_completion(&[], &[], SimTime::ZERO);
        assert!(done.is_empty());
    }

    #[test]
    fn completion_bounded_below_by_stage_sums() {
        let durations = vec![vec![ms(3), ms(4), ms(2), ms(6)], vec![ms(5), ms(1), ms(7), ms(2)]];
        let done = pipeline_completion(
            &durations,
            &[StageConstraint::Free, StageConstraint::Free],
            SimTime::ZERO,
        );
        let last = done[1][3];
        for stage in &durations {
            let total: SimDuration = stage.iter().copied().sum();
            assert!(last >= SimTime::ZERO + total);
        }
    }

    #[test]
    fn trace_pipeline_emits_spans_and_flows() {
        let durations = vec![vec![ms(10); 3], vec![ms(10); 3]];
        let constraints = [StageConstraint::Free, StageConstraint::Free];
        let done = pipeline_completion(&durations, &constraints, SimTime::ZERO);

        let (tracer, _clock) = ecc_trace::Tracer::with_manual_clock();
        let tracks = vec![tracer.track(0, "node0", "encode"), tracer.track(0, "node0", "xfer")];
        trace_pipeline(&tracer, &tracks, "handoff", &durations, &done, SimTime::ZERO);

        let json = tracer.chrome_trace_json();
        let stats = ecc_trace::validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.spans, 6); // 2 stages × 3 items
        assert_eq!(stats.flows, 3); // one hand-off arrow per item
        assert!(json.contains("\"name\":\"pkt0\""));
        assert!(json.contains("\"name\":\"pkt2\""));
        assert!(json.contains("\"name\":\"handoff\""));
    }

    #[test]
    fn trace_pipeline_of_empty_pipeline_is_a_no_op() {
        let (tracer, _clock) = ecc_trace::Tracer::with_manual_clock();
        trace_pipeline(&tracer, &[], "x", &[], &[], SimTime::ZERO);
        assert!(tracer.is_empty());
    }

    #[test]
    #[should_panic(expected = "same number of items")]
    fn ragged_stages_panic() {
        let _ = pipeline_completion(
            &[vec![ms(1)], vec![ms(1), ms(2)]],
            &[StageConstraint::Free, StageConstraint::Free],
            SimTime::ZERO,
        );
    }
}
