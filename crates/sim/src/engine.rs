use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ecc_telemetry::{Counter, Histogram, ManualClock, Recorder};

use crate::{SimDuration, SimTime};

type EventFn = Box<dyn FnOnce(&mut Simulation)>;

#[derive(Debug, Clone)]
struct SimMetrics {
    events: Counter,
    event_gap_ns: Histogram,
    queue_depth: Histogram,
}

/// A classic discrete-event simulation engine.
///
/// Events are closures scheduled at absolute simulated instants; running
/// the simulation pops them in time order (FIFO among simultaneous
/// events, so runs are deterministic) and hands each the engine so it can
/// schedule follow-up events.
///
/// # Examples
///
/// ```
/// use ecc_sim::{SimDuration, Simulation};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Simulation::new();
/// let hits = Rc::new(Cell::new(0));
/// let h = hits.clone();
/// sim.schedule_in(SimDuration::from_millis(5), move |sim| {
///     h.set(h.get() + 1);
///     let h2 = h.clone();
///     sim.schedule_in(SimDuration::from_millis(5), move |_| {
///         h2.set(h2.get() + 1);
///     });
/// });
/// sim.run();
/// assert_eq!(hits.get(), 2);
/// assert_eq!(sim.now().as_nanos(), 10_000_000);
/// ```
pub struct Simulation {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    processed: u64,
    metrics: Option<SimMetrics>,
    clock: Option<ManualClock>,
}

struct QueuedEvent {
    at: SimTime,
    seq: u64,
    run: EventFn,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl Simulation {
    /// Creates an engine with an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            processed: 0,
            metrics: None,
            clock: None,
        }
    }

    /// Attaches a telemetry recorder: every processed event bumps
    /// `sim.engine.events` and feeds the inter-event gap and queue-depth
    /// histograms.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.metrics = Some(SimMetrics {
            events: recorder.counter("sim.engine.events"),
            event_gap_ns: recorder.histogram("sim.engine.event_gap_ns"),
            queue_depth: recorder.histogram("sim.engine.queue_depth"),
        });
    }

    /// Binds a [`ManualClock`] to the simulated clock: each processed
    /// event sets the telemetry clock to the simulated instant, so
    /// recorders built on this clock stamp events — and scoped timers
    /// measure — in *virtual* time.
    pub fn drive_clock(&mut self, clock: ManualClock) {
        clock.set_ns(self.now.as_nanos());
        self.clock = Some(clock);
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Schedules an event at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics when `at` lies in the simulated past.
    pub fn schedule_at(&mut self, at: SimTime, event: impl FnOnce(&mut Simulation) + 'static) {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { at, seq, run: Box::new(event) }));
    }

    /// Schedules an event `delay` after the current instant.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut Simulation) + 'static,
    ) {
        let at = self.now + delay;
        self.schedule_at(at, event);
    }

    /// Runs until the queue is empty, returning the final instant.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs until the queue is empty or the clock passes `deadline`;
    /// events scheduled after the deadline stay queued and the clock is
    /// left at `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
        if let Some(clock) = &self.clock {
            clock.set_ns(self.now.as_nanos());
        }
        self.now
    }

    /// Processes a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(Reverse(ev)) => {
                debug_assert!(ev.at >= self.now);
                if let Some(m) = &self.metrics {
                    m.events.incr();
                    m.event_gap_ns.record((ev.at - self.now).as_nanos());
                    m.queue_depth.record(self.queue.len() as u64 + 1);
                }
                self.now = ev.at;
                if let Some(clock) = &self.clock {
                    clock.set_ns(self.now.as_nanos());
                }
                self.processed += 1;
                (ev.run)(self);
                true
            }
            None => false,
        }
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .field("instrumented", &self.metrics.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulation::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (label, ms) in [("c", 30u64), ("a", 10), ("b", 20)] {
            let order = order.clone();
            sim.schedule_at(SimTime::ZERO + SimDuration::from_millis(ms), move |_| {
                order.borrow_mut().push(label);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_run_fifo() {
        let mut sim = Simulation::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for label in ["first", "second", "third"] {
            let order = order.clone();
            sim.schedule_at(SimTime::from_nanos(100), move |_| {
                order.borrow_mut().push(label);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!["first", "second", "third"]);
    }

    #[test]
    fn events_can_cascade() {
        let mut sim = Simulation::new();
        let count = Rc::new(RefCell::new(0u32));
        fn chain(sim: &mut Simulation, count: Rc<RefCell<u32>>, remaining: u32) {
            if remaining == 0 {
                return;
            }
            sim.schedule_in(SimDuration::from_micros(1), move |sim| {
                *count.borrow_mut() += 1;
                chain(sim, count.clone(), remaining - 1);
            });
        }
        chain(&mut sim, count.clone(), 10);
        let end = sim.run();
        assert_eq!(*count.borrow(), 10);
        assert_eq!(end.as_nanos(), 10_000);
        assert_eq!(sim.events_processed(), 10);
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut sim = Simulation::new();
        let hits = Rc::new(RefCell::new(0u32));
        for ms in [10u64, 20, 30] {
            let hits = hits.clone();
            sim.schedule_at(SimTime::ZERO + SimDuration::from_millis(ms), move |_| {
                *hits.borrow_mut() += 1;
            });
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(25));
        assert_eq!(*hits.borrow(), 2);
        sim.run();
        assert_eq!(*hits.borrow(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_nanos(10), |sim| {
            sim.schedule_at(SimTime::from_nanos(5), |_| {});
        });
        sim.run();
    }
}
