//! Idle-slot admission for checkpoint transfers (paper §IV-B-3).
//!
//! ECCheck profiles the training iteration's network-busy windows and
//! schedules checkpoint P2P traffic into the gaps, so coding traffic
//! never contends with gradient all-reduces. [`SlotGate`] is the
//! admission-control side of that policy for the *real-byte* save
//! pipeline: transfers complete immediately on the in-memory data plane,
//! but each admission advances a deterministic virtual-time cursor
//! through the profiled [`BusyWindows`], yielding the exact start/finish
//! instants and queueing delay the transfer would see on the wire.
//!
//! Keeping the accounting in virtual time (rather than physically
//! sleeping the transfer stage) preserves the engine's determinism under
//! a [`ecc_telemetry::ManualClock`] while still exercising — and
//! reporting — the paper's slot-fitting behaviour.

use crate::{Bandwidth, BusyWindows, SimDuration, SimTime};

/// What one [`SlotGate::admit`] decided for a transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admission {
    /// When the transfer starts moving bytes (first idle instant at or
    /// after the cursor).
    pub start: SimTime,
    /// When the last byte lands.
    pub end: SimTime,
    /// Time spent parked behind busy windows: `end - cursor` minus the
    /// pure wire time. Zero on an idle network.
    pub waited: SimDuration,
    /// Idle slots the transfer was split across (1 = contiguous).
    pub segments: usize,
}

/// Serializes transfers through the idle slots of a profiled network.
///
/// The gate owns a cursor that only moves forward: admissions are
/// first-come-first-served in call order, each one claiming the earliest
/// idle capacity after the previous admission finished. Determinism
/// follows from the inputs — same profile, same admission sequence, same
/// schedule.
///
/// # Examples
///
/// ```
/// use ecc_sim::{Bandwidth, BusyWindows, SimDuration, SimTime, SlotGate};
///
/// let mut busy = BusyWindows::new();
/// let ms = SimDuration::from_millis;
/// busy.add_busy(SimTime::ZERO + ms(1), SimTime::ZERO + ms(3));
/// // Wire rate of exactly 1 MiB per millisecond.
/// let mut gate = SlotGate::new(busy, Bandwidth::from_bytes_per_sec((1 << 20) as f64 * 1000.0));
/// let first = gate.admit(1 << 20);
/// assert_eq!((first.start, first.end), (SimTime::ZERO, SimTime::ZERO + ms(1)));
/// // The second transfer must dodge the [1 ms, 3 ms) busy window.
/// let second = gate.admit(1 << 20);
/// assert_eq!(second.start, SimTime::ZERO + ms(3));
/// assert_eq!(second.waited, ms(2));
/// ```
#[derive(Debug, Clone)]
pub struct SlotGate {
    windows: BusyWindows,
    wire: Bandwidth,
    cursor: SimTime,
}

impl SlotGate {
    /// A gate over `windows` with transfers timed at `wire` bandwidth,
    /// cursor at simulation start.
    pub fn new(windows: BusyWindows, wire: Bandwidth) -> Self {
        Self { windows, wire, cursor: SimTime::ZERO }
    }

    /// The profiled busy windows the gate schedules around.
    pub fn windows(&self) -> &BusyWindows {
        &self.windows
    }

    /// The instant up to which idle capacity is already claimed.
    pub fn cursor(&self) -> SimTime {
        self.cursor
    }

    /// Rewinds the cursor to simulation start — e.g. at the top of a new
    /// training iteration, when the profiled windows repeat.
    pub fn reset(&mut self) {
        self.cursor = SimTime::ZERO;
    }

    /// Admits a `bytes`-sized transfer into the earliest idle capacity
    /// after the cursor, advancing the cursor to its finish time.
    ///
    /// Zero-byte transfers admit instantly at the cursor.
    pub fn admit(&mut self, bytes: u64) -> Admission {
        if bytes == 0 {
            return Admission {
                start: self.cursor,
                end: self.cursor,
                waited: SimDuration::ZERO,
                segments: 0,
            };
        }
        let work = self.wire.transfer_time(bytes);
        let segments = self.windows.split_segments(self.cursor, work);
        let start = segments.first().expect("non-zero work yields segments").0;
        let end = segments.last().expect("non-zero work yields segments").1;
        let waited = (end - self.cursor).saturating_sub(work);
        self.cursor = end;
        Admission { start, end, waited, segments: segments.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// One busy window; bandwidth chosen so each admission is 1 ms of
    /// wire time per MiB.
    fn gate() -> SlotGate {
        let mut busy = BusyWindows::new();
        busy.add_busy(t(2), t(5));
        SlotGate::new(busy, Bandwidth::from_bytes_per_sec((1 << 20) as f64 * 1000.0))
    }

    #[test]
    fn admissions_are_fifo_and_dodge_busy_windows() {
        let mut g = gate();
        let a = g.admit(1 << 20); // fits [0, 1)
        assert_eq!((a.start, a.end, a.segments), (t(0), t(1), 1));
        assert_eq!(a.waited, SimDuration::ZERO);
        let b = g.admit(2 << 20); // 2 ms of work, 1 ms idle before busy
        assert_eq!(b.start, t(1));
        assert_eq!(b.end, t(6), "split across the [2,5) window");
        assert_eq!(b.segments, 2);
        assert_eq!(b.waited, SimDuration::from_millis(3));
        let c = g.admit(1 << 20); // network idle again
        assert_eq!((c.start, c.end), (t(6), t(7)));
        assert_eq!(c.waited, SimDuration::ZERO);
    }

    #[test]
    fn empty_profile_is_pure_wire_time() {
        let mut g = SlotGate::new(
            BusyWindows::new(),
            Bandwidth::from_bytes_per_sec((1 << 20) as f64 * 1000.0),
        );
        for i in 1..=4u64 {
            let adm = g.admit(1 << 20);
            assert_eq!((adm.start, adm.end), (t(i - 1), t(i)));
            assert_eq!(adm.waited, SimDuration::ZERO);
            assert_eq!(adm.segments, 1);
        }
    }

    #[test]
    fn zero_bytes_admit_instantly() {
        let mut g = gate();
        g.admit(1 << 20);
        let cursor = g.cursor();
        let adm = g.admit(0);
        assert_eq!((adm.start, adm.end), (cursor, cursor));
        assert_eq!(g.cursor(), cursor);
    }

    #[test]
    fn reset_rewinds_the_cursor() {
        let mut g = gate();
        g.admit(4 << 20);
        assert!(g.cursor() > t(0));
        g.reset();
        assert_eq!(g.cursor(), SimTime::ZERO);
        assert_eq!(g.admit(1 << 20).start, t(0));
    }

    /// The same admission sequence yields byte-identical schedules — the
    /// property the engine's determinism test leans on.
    #[test]
    fn identical_sequences_schedule_identically() {
        let run = || {
            let mut g = gate();
            (0..8).map(|i| g.admit((i % 3 + 1) << 20)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
