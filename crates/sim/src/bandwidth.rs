use std::fmt;

use crate::SimDuration;

/// A data-transfer rate.
///
/// Stored internally as bytes per second. Construction helpers accept the
/// units the paper speaks in (Gbps network links, GB/s memory buses).
///
/// # Examples
///
/// ```
/// use ecc_sim::Bandwidth;
///
/// // The paper's inter-node fabric and remote storage (§V-B).
/// let nic = Bandwidth::from_gbps(100.0);
/// let remote = Bandwidth::from_gbps(5.0);
/// assert!(nic.bytes_per_sec() > remote.bytes_per_sec());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// A rate in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or non-positive rates.
    pub fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be finite and positive"
        );
        Self { bytes_per_sec }
    }

    /// A rate in gigabits per second (network-style units).
    ///
    /// # Panics
    ///
    /// Panics on non-finite or non-positive rates.
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bytes_per_sec(gbps * 1e9 / 8.0)
    }

    /// A rate in gigabytes per second (memory/bus-style units).
    ///
    /// # Panics
    ///
    /// Panics on non-finite or non-positive rates.
    pub fn from_gibps(gib_per_sec: f64) -> Self {
        Self::from_bytes_per_sec(gib_per_sec * (1u64 << 30) as f64)
    }

    /// The rate in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// The rate in gigabits per second.
    pub fn as_gbps(&self) -> f64 {
        self.bytes_per_sec * 8.0 / 1e9
    }

    /// Time to move `bytes` at this rate (rounded up to a nanosecond).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Bytes that fit into `window` at this rate (rounded down).
    pub fn bytes_in(&self, window: SimDuration) -> u64 {
        (self.bytes_per_sec * window.as_secs_f64()).floor() as u64
    }

    /// This bandwidth divided evenly among `ways` concurrent users.
    ///
    /// # Panics
    ///
    /// Panics when `ways == 0`.
    pub fn shared(&self, ways: usize) -> Bandwidth {
        assert!(ways > 0, "cannot share bandwidth zero ways");
        Self::from_bytes_per_sec(self.bytes_per_sec / ways as f64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} Gbps", self.as_gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_round_trip() {
        let b = Bandwidth::from_gbps(100.0);
        assert!((b.as_gbps() - 100.0).abs() < 1e-9);
        assert!((b.bytes_per_sec() - 12.5e9).abs() < 1.0);
    }

    #[test]
    fn transfer_time_is_exact_for_round_numbers() {
        let b = Bandwidth::from_gbps(8.0); // 1 GB/s
        assert_eq!(b.transfer_time(1_000_000_000), SimDuration::from_secs(1));
        assert_eq!(b.transfer_time(0), SimDuration::ZERO);
    }

    #[test]
    fn bytes_in_inverts_transfer_time() {
        let b = Bandwidth::from_gbps(100.0);
        let d = SimDuration::from_millis(10);
        let bytes = b.bytes_in(d);
        assert!(b.transfer_time(bytes) <= d + SimDuration::from_nanos(1));
    }

    #[test]
    fn shared_divides_rate() {
        let b = Bandwidth::from_gbps(100.0).shared(4);
        assert!((b.as_gbps() - 25.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_bandwidth_panics() {
        let _ = Bandwidth::from_bytes_per_sec(0.0);
    }
}
