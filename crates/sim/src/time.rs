use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A span of simulated time with nanosecond resolution.
///
/// Durations and instants are kept as separate newtypes so the type system
/// rejects nonsense like adding two instants (see [`SimTime`]).
///
/// # Examples
///
/// ```
/// use ecc_sim::SimDuration;
///
/// let d = SimDuration::from_millis(3) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 3_500_000);
/// assert!((d.as_secs_f64() - 0.0035).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `n` nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }

    /// A duration of `n` microseconds.
    pub const fn from_micros(n: u64) -> Self {
        SimDuration(n * 1_000)
    }

    /// A duration of `n` milliseconds.
    pub const fn from_millis(n: u64) -> Self {
        SimDuration(n * 1_000_000)
    }

    /// A duration of `n` seconds.
    pub const fn from_secs(n: u64) -> Self {
        SimDuration(n * 1_000_000_000)
    }

    /// A duration from fractional seconds, rounding up to the next
    /// nanosecond (conservative for transfer times).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be finite and non-negative");
        SimDuration((secs * 1e9).ceil() as u64)
    }

    /// The duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by an integer factor.
    pub const fn scaled(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant on the simulated clock, nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use ecc_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant `n` nanoseconds after simulation start.
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.as_nanos()).expect("time underflow"))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_nanos(self.0.checked_sub(rhs.0).expect("time underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration::from_nanos(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        // 1.5 ns rounds up to 2 ns: transfers never finish early.
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!((t + SimDuration::from_millis(5)).as_nanos(), 10_000_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(5));
        assert_eq!(t.max(SimTime::ZERO), t);
        assert_eq!(t.min(SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "time underflow")]
    fn instant_subtraction_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_nanos(1);
    }

    #[test]
    fn duration_sum_and_scale() {
        let total: SimDuration =
            [SimDuration::from_secs(1), SimDuration::from_millis(500)].into_iter().sum();
        assert_eq!(total.as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_millis(2).scaled(3).as_nanos(), 6_000_000);
        assert_eq!((SimDuration::from_millis(2) * 3).as_nanos(), 6_000_000);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
