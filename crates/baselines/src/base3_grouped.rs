//! `base3` with configurable replication-group size (paper §II-A).
//!
//! GEMINI divides nodes into groups of a chosen size; *every* node in a
//! group stores replicas of all checkpoints in that group. A group of
//! `G` nodes tolerates `G - 1` concurrent failures — but costs `G×`
//! memory and each node broadcasts its checkpoint to `G - 1` partners.
//! The paper's §II-A observation that "a larger group size may allow
//! tolerating more concurrent failures, but may incur significant
//! communication and memory overhead" is exactly the trade-off this
//! type makes measurable; erasure coding achieves a group's worth of
//! tolerance at replication-pair cost.

use ecc_checkpoint::{serialize, StateDict};
use ecc_cluster::{Cluster, ClusterSpec, NodeId};
use ecc_sim::SimDuration;

use crate::BaselineError;

/// Replication-based in-memory checkpointing with groups of `G` nodes,
/// every member holding all `G` members' checkpoints.
///
/// # Examples
///
/// ```
/// use ecc_baselines::Base3Grouped;
/// use ecc_checkpoint::{StateDict, Value};
/// use ecc_cluster::{Cluster, ClusterSpec};
///
/// let spec = ClusterSpec::tiny_test(4, 1);
/// let mut cluster = Cluster::new(spec);
/// let mut rep = Base3Grouped::new(&spec, 4)?; // one group of 4
/// let dicts: Vec<StateDict> = (0..4)
///     .map(|w| {
///         let mut sd = StateDict::new();
///         sd.insert("rank", Value::Int(w));
///         sd
///     })
///     .collect();
/// rep.save(&mut cluster, &dicts)?;
/// // Three of four nodes die: full replication still recovers...
/// for n in 0..3 {
///     cluster.fail_node(n);
/// }
/// assert_eq!(rep.load(&cluster)?, dicts);
/// // ...but at 4x memory, where ECCheck's k=m=2 pays only 2x.
/// # Ok::<(), ecc_baselines::BaselineError>(())
/// ```
#[derive(Debug)]
pub struct Base3Grouped {
    nodes: usize,
    gpus_per_node: usize,
    group_size: usize,
    version: u64,
}

impl Base3Grouped {
    /// Creates the checkpointer with replication groups of `group_size`
    /// nodes.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::Config`] when `group_size` is smaller
    /// than 2 or does not divide the node count.
    pub fn new(spec: &ClusterSpec, group_size: usize) -> Result<Self, BaselineError> {
        if group_size < 2 || !spec.nodes().is_multiple_of(group_size) {
            return Err(BaselineError::Config {
                detail: format!(
                    "group size {group_size} must be >= 2 and divide {} nodes",
                    spec.nodes()
                ),
            });
        }
        Ok(Self {
            nodes: spec.nodes(),
            gpus_per_node: spec.gpus_per_node(),
            group_size,
            version: 0,
        })
    }

    /// Nodes per replication group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The replication group index of a node.
    pub fn group_of(&self, node: NodeId) -> usize {
        node / self.group_size
    }

    /// The member nodes of a node's replication group.
    pub fn group_members(&self, node: NodeId) -> std::ops::Range<NodeId> {
        let base = self.group_of(node) * self.group_size;
        base..base + self.group_size
    }

    /// Memory overhead factor relative to the bare checkpoint: every
    /// node stores its whole group.
    pub fn memory_factor(&self) -> usize {
        self.group_size
    }

    /// Concurrent failures tolerated within one group.
    pub fn tolerance_per_group(&self) -> usize {
        self.group_size - 1
    }

    /// Stores every worker's shard on all nodes of its group.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::Config`] on a shard-count mismatch and
    /// propagates host-memory failures (larger groups exhaust quotas
    /// sooner — the paper's §II-A warning made concrete).
    pub fn save(
        &mut self,
        cluster: &mut Cluster,
        dicts: &[StateDict],
    ) -> Result<u64, BaselineError> {
        let world = self.nodes * self.gpus_per_node;
        if dicts.len() != world {
            return Err(BaselineError::Config {
                detail: format!("expected {world} state_dicts, got {}", dicts.len()),
            });
        }
        let version = self.version + 1;
        for (w, sd) in dicts.iter().enumerate() {
            let node = w / self.gpus_per_node;
            let bytes = serialize::dict_to_bytes(sd);
            for member in self.group_members(node) {
                cluster.put_local(member, &key(version, w), bytes.clone())?;
            }
        }
        let old = self.version;
        self.version = version;
        if old > 0 {
            for w in 0..world {
                let node = w / self.gpus_per_node;
                for member in self.group_members(node) {
                    cluster.delete_local(member, &key(old, w));
                }
            }
        }
        Ok(version)
    }

    /// Restores every worker's shard from any surviving group member.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::GroupLost`] when a whole group failed
    /// and [`BaselineError::NoCheckpoint`] before the first save.
    pub fn load(&self, cluster: &Cluster) -> Result<Vec<StateDict>, BaselineError> {
        if self.version == 0 {
            return Err(BaselineError::NoCheckpoint);
        }
        let world = self.nodes * self.gpus_per_node;
        (0..world)
            .map(|w| {
                let node = w / self.gpus_per_node;
                let bytes = self
                    .group_members(node)
                    .find_map(|member| cluster.get_local(member, &key(self.version, w)))
                    .ok_or(BaselineError::GroupLost { group: self.group_of(node) })?;
                Ok(serialize::dict_from_bytes(&bytes)?)
            })
            .collect()
    }
}

/// Save-time model for grouped replication: snapshot plus a broadcast of
/// the node's checkpoint to its `G - 1` partners, serialized on its NIC.
pub fn base3_grouped_save(
    spec: &ClusterSpec,
    shard_bytes: u64,
    group_size: usize,
) -> crate::timing::SaveCost {
    let node_bytes = shard_bytes * spec.gpus_per_node() as u64;
    let snapshot = spec.dtoh().transfer_time(shard_bytes);
    let replicate: SimDuration = spec.nic().transfer_time(node_bytes * (group_size as u64 - 1));
    crate::timing::SaveCost { stall: snapshot, total: snapshot + replicate }
}

fn key(version: u64, worker: usize) -> String {
    format!("base3g/v{version}/{worker}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_checkpoint::Value;

    fn dicts(world: usize) -> Vec<StateDict> {
        (0..world)
            .map(|w| {
                let mut sd = StateDict::new();
                sd.insert("rank", Value::Int(w as i64));
                sd.insert("blob", Value::Bytes(vec![w as u8; 128]));
                sd
            })
            .collect()
    }

    #[test]
    fn group_of_four_tolerates_three_failures() {
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut cluster = Cluster::new(spec);
        let mut rep = Base3Grouped::new(&spec, 4).unwrap();
        let d = dicts(8);
        rep.save(&mut cluster, &d).unwrap();
        for n in [0, 1, 3] {
            cluster.fail_node(n);
        }
        assert_eq!(rep.load(&cluster).unwrap(), d);
        cluster.fail_node(2);
        assert!(matches!(rep.load(&cluster), Err(BaselineError::GroupLost { group: 0 })));
    }

    #[test]
    fn memory_scales_with_group_size() {
        let spec = ClusterSpec::tiny_test(4, 1);
        let d = dicts(4);
        let mut used = Vec::new();
        for group_size in [2usize, 4] {
            let mut cluster = Cluster::new(spec);
            let mut rep = Base3Grouped::new(&spec, group_size).unwrap();
            rep.save(&mut cluster, &d).unwrap();
            used.push(cluster.mem_used(0));
            assert_eq!(rep.memory_factor(), group_size);
            assert_eq!(rep.tolerance_per_group(), group_size - 1);
        }
        // Group of 4 stores twice what a pair does on every node.
        assert_eq!(used[1], used[0] * 2);
    }

    #[test]
    fn pairwise_matches_base3() {
        // group_size = 2 reproduces the paper's base3 comparison point.
        let spec = ClusterSpec::tiny_test(4, 2);
        let d = dicts(8);
        let mut c1 = Cluster::new(spec);
        let mut grouped = Base3Grouped::new(&spec, 2).unwrap();
        grouped.save(&mut c1, &d).unwrap();
        let mut c2 = Cluster::new(spec);
        let mut plain = crate::Base3::new(&spec).unwrap();
        plain.save(&mut c2, &d).unwrap();
        for n in 0..4 {
            assert_eq!(c1.mem_used(n), c2.mem_used(n), "node {n}");
        }
        c1.fail_node(1);
        c2.fail_node(1);
        assert_eq!(grouped.load(&c1).unwrap(), plain.load(&c2).unwrap());
    }

    #[test]
    fn save_time_grows_with_group_size_while_ec_does_not() {
        // The §II-A trade-off: replication tolerance costs broadcast
        // traffic linear in G; erasure coding's traffic depends only on
        // m. Tolerating 3 failures via replication needs G = 4
        // (3 partner copies); via EC it needs m = 3 (3 parity volumes) —
        // same traffic here, but at 4x vs 2x *memory*.
        let spec = ClusterSpec::paper_testbed();
        let s = 1u64 << 30;
        let g2 = base3_grouped_save(&spec, s, 2);
        let g4 = base3_grouped_save(&spec, s, 4);
        assert!(g4.total > g2.total);
        let ratio = (g4.total - g4.stall).as_secs_f64() / (g2.total - g2.stall).as_secs_f64();
        assert!((2.9..3.1).contains(&ratio), "broadcast scales with G-1: {ratio}");
    }

    #[test]
    fn invalid_group_sizes_rejected() {
        let spec = ClusterSpec::tiny_test(4, 1);
        assert!(Base3Grouped::new(&spec, 1).is_err());
        assert!(Base3Grouped::new(&spec, 3).is_err());
        assert!(Base3Grouped::new(&spec, 2).is_ok());
    }

    #[test]
    fn versions_rotate() {
        let spec = ClusterSpec::tiny_test(2, 1);
        let mut cluster = Cluster::new(spec);
        let mut rep = Base3Grouped::new(&spec, 2).unwrap();
        let mut d = dicts(2);
        rep.save(&mut cluster, &d).unwrap();
        let used = cluster.mem_used(0);
        d[0].insert("rank", Value::Int(9));
        rep.save(&mut cluster, &d).unwrap();
        assert!(cluster.mem_used(0) <= used + 8);
        assert_eq!(rep.load(&cluster).unwrap(), d);
    }
}
