//! `base3`: GEMINI-style replication-based in-memory checkpointing
//! (paper §II-A, §V-B).

use ecc_checkpoint::{serialize, StateDict};
use ecc_cluster::{Cluster, ClusterSpec, NodeId};

use crate::BaselineError;

/// Replication-based in-memory checkpointing: nodes are paired into
/// replication groups `(0,1), (2,3), …`; every node keeps its own
/// workers' checkpoints in host memory and broadcasts a full replica to
/// its group partner.
///
/// With the paper's comparison redundancy (group size 2, i.e. 2× memory
/// like `k = m` erasure coding), any single failure per group is
/// recoverable, but a group losing both members is not — the case
/// ECCheck survives (Fig. 13b, Fig. 15).
#[derive(Debug)]
pub struct Base3 {
    nodes: usize,
    gpus_per_node: usize,
    version: u64,
}

impl Base3 {
    /// Creates the checkpointer; the node count must be even so every
    /// node has a replication partner.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::Config`] for an odd node count.
    pub fn new(spec: &ClusterSpec) -> Result<Self, BaselineError> {
        if !spec.nodes().is_multiple_of(2) {
            return Err(BaselineError::Config {
                detail: format!("{} nodes cannot be paired for replication", spec.nodes()),
            });
        }
        Ok(Self { nodes: spec.nodes(), gpus_per_node: spec.gpus_per_node(), version: 0 })
    }

    /// Version of the latest completed checkpoint (0 = none yet).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The replication partner of a node.
    pub fn partner(&self, node: NodeId) -> NodeId {
        node ^ 1
    }

    /// The replication group index of a node.
    pub fn group_of(&self, node: NodeId) -> usize {
        node / 2
    }

    /// Stores every worker's shard on its own node and a replica on the
    /// partner node.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::Config`] on a shard-count mismatch and
    /// propagates host-memory failures.
    pub fn save(
        &mut self,
        cluster: &mut Cluster,
        dicts: &[StateDict],
    ) -> Result<u64, BaselineError> {
        let world = self.nodes * self.gpus_per_node;
        if dicts.len() != world {
            return Err(BaselineError::Config {
                detail: format!("expected {world} state_dicts, got {}", dicts.len()),
            });
        }
        let version = self.version + 1;
        for (w, sd) in dicts.iter().enumerate() {
            let node = w / self.gpus_per_node;
            let bytes = serialize::dict_to_bytes(sd);
            cluster.put_local(node, &key(version, w), bytes.clone())?;
            cluster.put_local(self.partner(node), &key(version, w), bytes)?;
        }
        // Rotate out the previous version after the new one is complete.
        let old = self.version;
        self.version = version;
        if old > 0 {
            for w in 0..world {
                let node = w / self.gpus_per_node;
                cluster.delete_local(node, &key(old, w));
                cluster.delete_local(self.partner(node), &key(old, w));
            }
        }
        Ok(version)
    }

    /// Restores every worker's shard from host memory, using partner
    /// replicas for failed nodes.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::GroupLost`] when a replication group has
    /// no surviving copy — the failure mode erasure coding eliminates —
    /// and [`BaselineError::NoCheckpoint`] before the first save.
    pub fn load(&self, cluster: &Cluster) -> Result<Vec<StateDict>, BaselineError> {
        if self.version == 0 {
            return Err(BaselineError::NoCheckpoint);
        }
        let world = self.nodes * self.gpus_per_node;
        (0..world)
            .map(|w| {
                let node = w / self.gpus_per_node;
                let bytes = cluster
                    .get_local(node, &key(self.version, w))
                    .or_else(|| cluster.get_local(self.partner(node), &key(self.version, w)))
                    .ok_or(BaselineError::GroupLost { group: self.group_of(node) })?;
                Ok(serialize::dict_from_bytes(&bytes)?)
            })
            .collect()
    }
}

fn key(version: u64, worker: usize) -> String {
    format!("base3/v{version}/{worker}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_checkpoint::Value;

    fn dicts(world: usize) -> Vec<StateDict> {
        (0..world)
            .map(|w| {
                let mut sd = StateDict::new();
                sd.insert("rank", Value::Int(w as i64));
                sd.insert("blob", Value::Bytes(vec![w as u8; 64]));
                sd
            })
            .collect()
    }

    fn setup() -> (ClusterSpec, Cluster, Base3, Vec<StateDict>) {
        let spec = ClusterSpec::tiny_test(4, 2);
        let cluster = Cluster::new(spec);
        let b = Base3::new(&spec).unwrap();
        (spec, cluster, b, dicts(8))
    }

    #[test]
    fn one_failure_per_group_recovers() {
        let (_, mut cluster, mut b, d) = setup();
        b.save(&mut cluster, &d).unwrap();
        cluster.fail_node(0); // group 0
        cluster.fail_node(3); // group 1
        assert_eq!(b.load(&cluster).unwrap(), d);
    }

    #[test]
    fn whole_group_loss_is_fatal() {
        let (_, mut cluster, mut b, d) = setup();
        b.save(&mut cluster, &d).unwrap();
        cluster.fail_node(2);
        cluster.fail_node(3);
        assert!(matches!(b.load(&cluster), Err(BaselineError::GroupLost { group: 1 })));
    }

    #[test]
    fn memory_overhead_is_twice_the_shard() {
        // Same 2x redundancy as k = m erasure coding (paper Fig. 2).
        let (_, mut cluster, mut b, d) = setup();
        b.save(&mut cluster, &d).unwrap();
        let own: u64 = d[..2].iter().map(|sd| serialize::dict_to_bytes(sd).len() as u64).sum();
        let partner: u64 = d[2..4].iter().map(|sd| serialize::dict_to_bytes(sd).len() as u64).sum();
        assert_eq!(cluster.mem_used(0), own + partner);
    }

    #[test]
    fn versions_rotate() {
        let (_, mut cluster, mut b, mut d) = setup();
        b.save(&mut cluster, &d).unwrap();
        let used = cluster.mem_used(0);
        d[0].insert("rank", Value::Int(77));
        b.save(&mut cluster, &d).unwrap();
        assert!(cluster.mem_used(0) <= used + 16);
        assert_eq!(b.load(&cluster).unwrap()[0].get("rank"), Some(&Value::Int(77)));
    }

    #[test]
    fn odd_node_count_is_rejected() {
        let spec = ClusterSpec::tiny_test(3, 1);
        assert!(Base3::new(&spec).is_err());
    }

    #[test]
    fn partner_mapping_is_involutive() {
        let spec = ClusterSpec::tiny_test(6, 1);
        let b = Base3::new(&spec).unwrap();
        for n in 0..6 {
            assert_eq!(b.partner(b.partner(n)), n);
            assert_eq!(b.group_of(n), n / 2);
        }
    }
}
