//! `base1`: synchronous serialize-and-upload checkpointing
//! (`torch.save` to remote storage, paper §V-B).

use ecc_checkpoint::{serialize, StateDict};
use ecc_cluster::{Cluster, ClusterSpec};

use crate::BaselineError;

/// The conventional PyTorch checkpointing flow: every worker serializes
/// its full `state_dict` and writes it to remote persistent storage,
/// with training blocked until the write completes.
///
/// See the timing model in [`crate::timing`] for why this caps the
/// checkpoint frequency: the whole model crosses the 5 Gbps storage
/// uplink on every save.
#[derive(Debug)]
pub struct Base1 {
    world: usize,
    version: u64,
}

impl Base1 {
    /// Creates the checkpointer for a cluster.
    pub fn new(spec: &ClusterSpec) -> Self {
        Self { world: spec.world_size(), version: 0 }
    }

    /// Version of the latest completed checkpoint (0 = none yet).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Serializes every worker's shard and stores it remotely.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::Config`] when the shard count differs
    /// from the world size.
    pub fn save(
        &mut self,
        cluster: &mut Cluster,
        dicts: &[StateDict],
    ) -> Result<u64, BaselineError> {
        if dicts.len() != self.world {
            return Err(BaselineError::Config {
                detail: format!("expected {} state_dicts, got {}", self.world, dicts.len()),
            });
        }
        let version = self.version + 1;
        let mut total = 0u64;
        for (w, sd) in dicts.iter().enumerate() {
            let bytes = serialize::dict_to_bytes(sd);
            total += bytes.len() as u64;
            cluster.put_remote(&key(version, w), bytes);
        }
        self.version = version;
        Ok(total)
    }

    /// Reads every worker's shard back from remote storage.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::NoCheckpoint`] before the first save or
    /// when a shard is missing.
    pub fn load(&self, cluster: &Cluster) -> Result<Vec<StateDict>, BaselineError> {
        if self.version == 0 {
            return Err(BaselineError::NoCheckpoint);
        }
        (0..self.world)
            .map(|w| {
                let bytes =
                    cluster.get_remote(&key(self.version, w)).ok_or(BaselineError::NoCheckpoint)?;
                Ok(serialize::dict_from_bytes(&bytes)?)
            })
            .collect()
    }
}

fn key(version: u64, worker: usize) -> String {
    format!("base1/v{version}/{worker}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_checkpoint::Value;

    fn dicts(world: usize) -> Vec<StateDict> {
        (0..world)
            .map(|w| {
                let mut sd = StateDict::new();
                sd.insert("rank", Value::Int(w as i64));
                sd.insert("rng", Value::Bytes(vec![w as u8; 32]));
                sd
            })
            .collect()
    }

    #[test]
    fn survives_total_cluster_loss() {
        let spec = ClusterSpec::tiny_test(4, 1);
        let mut cluster = Cluster::new(spec);
        let mut b = Base1::new(&spec);
        let d = dicts(4);
        b.save(&mut cluster, &d).unwrap();
        for n in 0..4 {
            cluster.fail_node(n);
        }
        // Remote storage is persistent: everything comes back.
        assert_eq!(b.load(&cluster).unwrap(), d);
    }

    #[test]
    fn versions_advance() {
        let spec = ClusterSpec::tiny_test(2, 1);
        let mut cluster = Cluster::new(spec);
        let mut b = Base1::new(&spec);
        let mut d = dicts(2);
        b.save(&mut cluster, &d).unwrap();
        d[0].insert("rank", Value::Int(99));
        b.save(&mut cluster, &d).unwrap();
        assert_eq!(b.version(), 2);
        assert_eq!(b.load(&cluster).unwrap()[0].get("rank"), Some(&Value::Int(99)));
    }

    #[test]
    fn load_before_save_errors() {
        let spec = ClusterSpec::tiny_test(2, 1);
        let cluster = Cluster::new(spec);
        let b = Base1::new(&spec);
        assert!(matches!(b.load(&cluster), Err(BaselineError::NoCheckpoint)));
    }

    #[test]
    fn wrong_world_size_is_rejected() {
        let spec = ClusterSpec::tiny_test(2, 1);
        let mut cluster = Cluster::new(spec);
        let mut b = Base1::new(&spec);
        assert!(b.save(&mut cluster, &dicts(3)).is_err());
    }
}
