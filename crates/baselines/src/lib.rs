//! The three checkpointing baselines the paper compares against (§V-B).
//!
//! * [`Base1`] — conventional `torch.save`: serialize the whole
//!   `state_dict` and synchronously write it to remote persistent
//!   storage, blocking training for the full duration.
//! * [`Base2`] — a CheckFreq-style two-phase scheme: snapshot GPU state
//!   to host memory (blocking), then persist to remote storage
//!   asynchronously. The stall is short but the end-to-end checkpoint
//!   time is still remote-bandwidth-bound.
//! * [`Base3`] — GEMINI-style replication-based in-memory
//!   checkpointing: nodes are paired into replication groups and each
//!   node broadcasts its checkpoint to its partner. Fast, but a group
//!   losing both members is unrecoverable.
//!
//! Each baseline has a *real-byte* implementation over
//! [`ecc_cluster::Cluster`] (used by correctness tests and examples) and
//! a *timing* model in [`timing`] (used by the figure harnesses).
//!
//! # Examples
//!
//! ```
//! use ecc_baselines::Base3;
//! use ecc_checkpoint::{StateDict, Value};
//! use ecc_cluster::{Cluster, ClusterSpec};
//!
//! let spec = ClusterSpec::tiny_test(4, 1);
//! let mut cluster = Cluster::new(spec);
//! let mut base3 = Base3::new(&spec)?;
//! let dicts: Vec<StateDict> = (0..4)
//!     .map(|w| {
//!         let mut sd = StateDict::new();
//!         sd.insert("rank", Value::Int(w));
//!         sd
//!     })
//!     .collect();
//! base3.save(&mut cluster, &dicts)?;
//!
//! // One failure per replication pair is fine...
//! cluster.fail_node(1);
//! cluster.replace_node(1);
//! assert_eq!(base3.load(&mut cluster)?, dicts);
//!
//! // ...but losing a whole pair is fatal (the gap ECCheck closes).
//! cluster.fail_node(2);
//! cluster.fail_node(3);
//! assert!(base3.load(&mut cluster).is_err());
//! # Ok::<(), ecc_baselines::BaselineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod base1;
mod base2;
mod base3;
mod base3_grouped;
mod error;
pub mod timing;

pub use base1::Base1;
pub use base2::Base2;
pub use base3::Base3;
pub use base3_grouped::{base3_grouped_save, Base3Grouped};
pub use error::BaselineError;
