use std::error::Error;
use std::fmt;

/// Errors produced by the baseline checkpointers.
#[derive(Debug)]
#[non_exhaustive]
pub enum BaselineError {
    /// Invalid configuration (e.g. an odd node count for pairing).
    Config {
        /// Human-readable description.
        detail: String,
    },
    /// No checkpoint has been saved yet.
    NoCheckpoint,
    /// Both members of a replication group failed (GEMINI's blind spot).
    GroupLost {
        /// The replication group that lost all members.
        group: usize,
    },
    /// An underlying checkpoint (de)serialization failure.
    Checkpoint(ecc_checkpoint::CheckpointError),
    /// An underlying cluster data-plane failure.
    Cluster(ecc_cluster::ClusterError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Config { detail } => write!(f, "configuration error: {detail}"),
            BaselineError::NoCheckpoint => write!(f, "no checkpoint has been saved"),
            BaselineError::GroupLost { group } => {
                write!(f, "replication group {group} lost all members; cannot recover")
            }
            BaselineError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            BaselineError::Cluster(e) => write!(f, "cluster: {e}"),
        }
    }
}

impl Error for BaselineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BaselineError::Checkpoint(e) => Some(e),
            BaselineError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ecc_checkpoint::CheckpointError> for BaselineError {
    fn from(e: ecc_checkpoint::CheckpointError) -> Self {
        BaselineError::Checkpoint(e)
    }
}

impl From<ecc_cluster::ClusterError> for BaselineError {
    fn from(e: ecc_cluster::ClusterError) -> Self {
        BaselineError::Cluster(e)
    }
}
