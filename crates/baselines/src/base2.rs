//! `base2`: CheckFreq-inspired two-phase checkpointing (paper §V-B).

use ecc_checkpoint::{serialize, StateDict};
use ecc_cluster::{Cluster, ClusterSpec, NodeId};

use crate::BaselineError;

/// Two-phase checkpointing: *snapshot* copies GPU state into host memory
/// (short training stall), *persist* asynchronously serializes and
/// uploads the snapshot to remote storage.
///
/// The real-byte implementation separates the phases so tests can
/// exercise the window where a snapshot exists only in volatile memory:
/// a node failing between [`Base2::snapshot`] and [`Base2::persist`]
/// falls back to the previous persisted version — exactly the rollback
/// CheckFreq accepts.
#[derive(Debug)]
pub struct Base2 {
    world: usize,
    gpus_per_node: usize,
    snapshot_version: u64,
    persisted_version: u64,
}

impl Base2 {
    /// Creates the checkpointer for a cluster.
    pub fn new(spec: &ClusterSpec) -> Self {
        Self {
            world: spec.world_size(),
            gpus_per_node: spec.gpus_per_node(),
            snapshot_version: 0,
            persisted_version: 0,
        }
    }

    /// Latest version persisted to remote storage.
    pub fn persisted_version(&self) -> u64 {
        self.persisted_version
    }

    /// Phase 1: snapshot every worker's shard into its node's host
    /// memory (the training stall ends when this returns).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::Config`] on a shard-count mismatch and
    /// propagates host-memory failures.
    pub fn snapshot(
        &mut self,
        cluster: &mut Cluster,
        dicts: &[StateDict],
    ) -> Result<u64, BaselineError> {
        if dicts.len() != self.world {
            return Err(BaselineError::Config {
                detail: format!("expected {} state_dicts, got {}", self.world, dicts.len()),
            });
        }
        let version = self.snapshot_version + 1;
        for (w, sd) in dicts.iter().enumerate() {
            let node: NodeId = w / self.gpus_per_node;
            let bytes = serialize::dict_to_bytes(sd);
            cluster.put_local(node, &snap_key(version, w), bytes)?;
            if self.snapshot_version > 0 {
                cluster.delete_local(node, &snap_key(self.snapshot_version, w));
            }
        }
        self.snapshot_version = version;
        Ok(version)
    }

    /// Phase 2: persist the latest snapshot to remote storage.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::NoCheckpoint`] without a snapshot, and
    /// propagates cluster failures (a node dying mid-persist).
    pub fn persist(&mut self, cluster: &mut Cluster) -> Result<(), BaselineError> {
        if self.snapshot_version == 0 {
            return Err(BaselineError::NoCheckpoint);
        }
        let version = self.snapshot_version;
        for w in 0..self.world {
            let node: NodeId = w / self.gpus_per_node;
            let bytes = cluster
                .get_local(node, &snap_key(version, w))
                .ok_or(BaselineError::NoCheckpoint)?;
            cluster.put_remote(&remote_key(version, w), bytes);
        }
        self.persisted_version = version;
        Ok(())
    }

    /// Convenience: snapshot then persist (the common healthy path).
    ///
    /// # Errors
    ///
    /// Same conditions as the two phases.
    pub fn save(
        &mut self,
        cluster: &mut Cluster,
        dicts: &[StateDict],
    ) -> Result<u64, BaselineError> {
        let v = self.snapshot(cluster, dicts)?;
        self.persist(cluster)?;
        Ok(v)
    }

    /// Restores the latest *persisted* checkpoint from remote storage.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::NoCheckpoint`] when nothing was persisted.
    pub fn load(&self, cluster: &Cluster) -> Result<Vec<StateDict>, BaselineError> {
        if self.persisted_version == 0 {
            return Err(BaselineError::NoCheckpoint);
        }
        (0..self.world)
            .map(|w| {
                let bytes = cluster
                    .get_remote(&remote_key(self.persisted_version, w))
                    .ok_or(BaselineError::NoCheckpoint)?;
                Ok(serialize::dict_from_bytes(&bytes)?)
            })
            .collect()
    }
}

fn snap_key(version: u64, worker: usize) -> String {
    format!("base2/snap/v{version}/{worker}")
}

fn remote_key(version: u64, worker: usize) -> String {
    format!("base2/v{version}/{worker}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_checkpoint::Value;

    fn dicts(world: usize, iter: i64) -> Vec<StateDict> {
        (0..world)
            .map(|w| {
                let mut sd = StateDict::new();
                sd.insert("rank", Value::Int(w as i64));
                sd.insert("iteration", Value::Int(iter));
                sd
            })
            .collect()
    }

    #[test]
    fn two_phase_save_and_load() {
        let spec = ClusterSpec::tiny_test(2, 2);
        let mut cluster = Cluster::new(spec);
        let mut b = Base2::new(&spec);
        let d = dicts(4, 10);
        b.save(&mut cluster, &d).unwrap();
        assert_eq!(b.load(&cluster).unwrap(), d);
    }

    #[test]
    fn failure_between_phases_rolls_back() {
        let spec = ClusterSpec::tiny_test(2, 2);
        let mut cluster = Cluster::new(spec);
        let mut b = Base2::new(&spec);
        let v10 = dicts(4, 10);
        b.save(&mut cluster, &v10).unwrap();
        // Snapshot v2 but crash node 0 before persisting.
        let v20 = dicts(4, 20);
        b.snapshot(&mut cluster, &v20).unwrap();
        cluster.fail_node(0);
        assert!(b.persist(&mut cluster).is_err());
        // The persisted version is still the old one.
        let restored = b.load(&cluster).unwrap();
        assert_eq!(restored, v10);
        assert_eq!(b.persisted_version(), 1);
    }

    #[test]
    fn snapshots_rotate_in_host_memory() {
        let spec = ClusterSpec::tiny_test(1, 1);
        let mut cluster = Cluster::new(spec);
        let mut b = Base2::new(&spec);
        b.save(&mut cluster, &dicts(1, 1)).unwrap();
        let used1 = cluster.mem_used(0);
        b.save(&mut cluster, &dicts(1, 2)).unwrap();
        assert_eq!(cluster.mem_used(0), used1, "old snapshot must be dropped");
    }

    #[test]
    fn persist_without_snapshot_errors() {
        let spec = ClusterSpec::tiny_test(1, 1);
        let mut cluster = Cluster::new(spec);
        let mut b = Base2::new(&spec);
        assert!(matches!(b.persist(&mut cluster), Err(BaselineError::NoCheckpoint)));
    }
}
