//! Timing models for the baselines and the shared training-overhead
//! model (paper Figs. 10–14).

use ecc_cluster::ClusterSpec;
use ecc_sim::SimDuration;

/// Calibration constants for baseline timing.
#[derive(Debug, Clone, Copy)]
pub struct BaselineConstants {
    /// Sustained `torch.save`-style serialization rate per worker,
    /// bytes/second (pickling is CPU-bound; ~1.5 GB/s is typical).
    pub serialize_rate: f64,
    /// Deserialization rate per worker, bytes/second.
    pub deserialize_rate: f64,
}

impl Default for BaselineConstants {
    fn default() -> Self {
        Self { serialize_rate: 1.5e9, deserialize_rate: 2.0e9 }
    }
}

/// Stall (training-blocking) and end-to-end duration of one checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveCost {
    /// Time training is paused.
    pub stall: SimDuration,
    /// Time until the checkpoint is complete (the next save cannot start
    /// earlier — this bounds the checkpoint frequency).
    pub total: SimDuration,
}

/// `base1`: synchronous serialize + upload; training blocks for the
/// whole duration. `shard_bytes` is the per-worker payload.
pub fn base1_save(spec: &ClusterSpec, shard_bytes: u64, constants: &BaselineConstants) -> SaveCost {
    let total_bytes = shard_bytes * spec.world_size() as u64;
    // Workers serialize in parallel on their own cores...
    let serialize = SimDuration::from_secs_f64(shard_bytes as f64 / constants.serialize_rate);
    // ...then everything crosses the shared remote-storage uplink.
    let upload = spec.remote().transfer_time(total_bytes);
    let total = serialize + upload;
    SaveCost { stall: total, total }
}

/// `base2`: snapshot to host memory (stall), then serialize + upload
/// asynchronously.
pub fn base2_save(spec: &ClusterSpec, shard_bytes: u64, constants: &BaselineConstants) -> SaveCost {
    let total_bytes = shard_bytes * spec.world_size() as u64;
    let snapshot = spec.dtoh().transfer_time(shard_bytes);
    let serialize = SimDuration::from_secs_f64(shard_bytes as f64 / constants.serialize_rate);
    let upload = spec.remote().transfer_time(total_bytes);
    SaveCost { stall: snapshot, total: snapshot + serialize + upload }
}

/// `base3`: snapshot to host memory, then broadcast each node's
/// checkpoint to its replication partner over the 100 Gbps fabric.
pub fn base3_save(spec: &ClusterSpec, shard_bytes: u64) -> SaveCost {
    let node_bytes = shard_bytes * spec.gpus_per_node() as u64;
    let snapshot = spec.dtoh().transfer_time(shard_bytes);
    // Pairs exchange replicas simultaneously (full duplex).
    let replicate = spec.nic().transfer_time(node_bytes);
    SaveCost { stall: snapshot, total: snapshot + replicate }
}

/// `base1`/`base2` recovery: the whole checkpoint is read back from
/// remote storage and deserialized before training resumes.
pub fn remote_recovery(
    spec: &ClusterSpec,
    shard_bytes: u64,
    constants: &BaselineConstants,
) -> SimDuration {
    let total_bytes = shard_bytes * spec.world_size() as u64;
    let download = spec.remote().transfer_time(total_bytes);
    let deserialize = SimDuration::from_secs_f64(shard_bytes as f64 / constants.deserialize_rate);
    download + deserialize
}

/// `base3` recovery when every replication group retains a survivor:
/// each replaced node pulls its replica (`g` shards) from its partner.
pub fn base3_recovery(spec: &ClusterSpec, shard_bytes: u64, failed_nodes: usize) -> SimDuration {
    if failed_nodes == 0 {
        return SimDuration::ZERO;
    }
    let node_bytes = shard_bytes * spec.gpus_per_node() as u64;
    // Partners serve their replacements in parallel (distinct pairs).
    spec.nic().transfer_time(node_bytes)
}

/// Average training iteration time at a checkpoint interval of
/// `interval` iterations (paper Fig. 12's y-axis).
///
/// Each checkpoint cycle pays the stall, plus *backpressure* when the
/// asynchronous part cannot drain before the next checkpoint is due
/// (the next save waits for the previous one to finish).
///
/// # Panics
///
/// Panics when `interval` is zero.
pub fn average_iteration_time(
    iteration: SimDuration,
    interval: u64,
    cost: SaveCost,
) -> SimDuration {
    assert!(interval > 0, "checkpoint interval must be positive");
    let window = iteration.scaled(interval);
    let asynchronous = cost.total - cost.stall;
    let backpressure = asynchronous.saturating_sub(window);
    let per_cycle = cost.stall + backpressure;
    iteration + SimDuration::from_nanos(per_cycle.as_nanos() / interval)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ClusterSpec, BaselineConstants, u64) {
        // GPT-2 5.3B-ish: ~74 GB checkpoint over 16 workers ≈ 4.6 GB/worker.
        (ClusterSpec::paper_testbed(), BaselineConstants::default(), 4_600_000_000)
    }

    #[test]
    fn base1_blocks_for_everything() {
        let (spec, c, s) = setup();
        let cost = base1_save(&spec, s, &c);
        assert_eq!(cost.stall, cost.total);
        // 16 × 4.6 GB over 5 Gbps is minutes, not seconds.
        assert!(cost.total.as_secs_f64() > 60.0);
    }

    #[test]
    fn base2_stall_is_short_but_total_is_remote_bound() {
        let (spec, c, s) = setup();
        let b1 = base1_save(&spec, s, &c);
        let b2 = base2_save(&spec, s, &c);
        assert!(b2.stall.as_nanos() * 10 < b1.stall.as_nanos());
        // End-to-end time stays in the same ballpark as base1.
        let ratio = b2.total.as_secs_f64() / b1.total.as_secs_f64();
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn base3_is_orders_faster_than_remote_baselines() {
        let (spec, c, s) = setup();
        let b1 = base1_save(&spec, s, &c);
        let b3 = base3_save(&spec, s);
        let speedup = b1.total.as_secs_f64() / b3.total.as_secs_f64();
        assert!(speedup > 10.0, "in-memory should dominate: {speedup:.1}x");
    }

    #[test]
    fn eccheck_sits_near_base3_with_better_tolerance() {
        // Fig. 10: ECCheck ≈ 1.6× base3 checkpoint time.
        let (spec, _, s) = setup();
        let b3 = base3_save(&spec, s);
        let ecc = eccheck::timing::save_timing(
            &spec,
            &eccheck::EcCheckConfig::paper_defaults(),
            s,
            None,
            &eccheck::timing::TimingConstants::default(),
        );
        let ratio = ecc.total.as_secs_f64() / b3.total.as_secs_f64();
        assert!(
            (1.0..4.0).contains(&ratio),
            "ECCheck should cost a modest factor over base3, got {ratio:.2}x"
        );
    }

    #[test]
    fn remote_recovery_is_slow() {
        let (spec, c, s) = setup();
        let r = remote_recovery(&spec, s, &c);
        let b3 = base3_recovery(&spec, s, 2);
        assert!(r.as_secs_f64() / b3.as_secs_f64() > 10.0);
        assert_eq!(base3_recovery(&spec, s, 0), SimDuration::ZERO);
    }

    #[test]
    fn fig12_shape_base1_worst_then_base2_then_inmemory() {
        let (spec, c, s) = setup();
        let iteration = SimDuration::from_millis(800);
        let interval = 10;
        let b1 = average_iteration_time(iteration, interval, base1_save(&spec, s, &c));
        let b2 = average_iteration_time(iteration, interval, base2_save(&spec, s, &c));
        let b3 = average_iteration_time(iteration, interval, base3_save(&spec, s));
        assert!(b1 > b2, "sync remote must be worst");
        assert!(b2 > b3, "async remote still backpressures at high frequency");
        // In-memory overhead is small relative to the iteration itself.
        assert!(b3.as_secs_f64() < iteration.as_secs_f64() * 1.5);
    }

    #[test]
    fn base2_backpressure_vanishes_at_long_intervals() {
        let (spec, c, s) = setup();
        let iteration = SimDuration::from_millis(800);
        let b2 = base2_save(&spec, s, &c);
        let frequent = average_iteration_time(iteration, 5, b2);
        let rare = average_iteration_time(iteration, 500, b2);
        assert!(frequent > rare);
        // At long intervals only the stall amortizes.
        let expected = iteration + SimDuration::from_nanos(b2.stall.as_nanos() / 500);
        let slack = SimDuration::from_millis(2);
        assert!(rare <= expected + slack && rare + slack >= expected);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let (spec, c, s) = setup();
        let _ = average_iteration_time(SimDuration::from_millis(1), 0, base1_save(&spec, s, &c));
    }
}

/// Event-driven validation of [`average_iteration_time`]: simulates a
/// training run with the discrete-event engine — iterations, periodic
/// checkpoint stalls, an asynchronous checkpoint tail that the *next*
/// checkpoint must wait for — and returns the measured average iteration
/// time.
///
/// The closed form and this simulation are independent implementations
/// of the same semantics; the test suite holds them equal.
///
/// # Panics
///
/// Panics when `interval` or `iterations` is zero.
pub fn simulate_average_iteration(
    iteration: SimDuration,
    interval: u64,
    cost: SaveCost,
    iterations: u64,
) -> SimDuration {
    use ecc_sim::{SimTime, Simulation};
    use std::cell::RefCell;
    use std::rc::Rc;

    assert!(interval > 0, "checkpoint interval must be positive");
    assert!(iterations > 0, "must simulate at least one iteration");

    #[derive(Debug)]
    struct State {
        iterations_done: u64,
        target: u64,
        interval: u64,
        iteration: SimDuration,
        stall: SimDuration,
        async_tail: SimDuration,
        async_free_at: SimTime,
        finished_at: SimTime,
    }

    fn run_iteration(sim: &mut Simulation, state: Rc<RefCell<State>>) {
        let iter_time = state.borrow().iteration;
        sim.schedule_in(iter_time, move |sim| {
            let mut s = state.borrow_mut();
            s.iterations_done += 1;
            if s.iterations_done >= s.target {
                s.finished_at = sim.now();
                return;
            }
            let checkpoint_due = s.iterations_done.is_multiple_of(s.interval);
            drop(s);
            if checkpoint_due {
                // Backpressure: wait for the previous checkpoint's
                // asynchronous tail before starting the next save.
                let wait_until = state.borrow().async_free_at.max(sim.now());
                let state2 = Rc::clone(&state);
                sim.schedule_at(wait_until, move |sim| {
                    let stall = state2.borrow().stall;
                    let state3 = Rc::clone(&state2);
                    sim.schedule_in(stall, move |sim| {
                        {
                            let mut s = state3.borrow_mut();
                            let tail = s.async_tail;
                            s.async_free_at = sim.now() + tail;
                        }
                        run_iteration(sim, state3);
                    });
                });
            } else {
                run_iteration(sim, state);
            }
        });
    }

    let state = Rc::new(RefCell::new(State {
        iterations_done: 0,
        target: iterations,
        interval,
        iteration,
        stall: cost.stall,
        async_tail: cost.total - cost.stall,
        async_free_at: SimTime::ZERO,
        finished_at: SimTime::ZERO,
    }));
    let mut sim = Simulation::new();
    run_iteration(&mut sim, Rc::clone(&state));
    sim.run();
    let total = state.borrow().finished_at - SimTime::ZERO;
    SimDuration::from_nanos(total.as_nanos() / iterations)
}

#[cfg(test)]
mod des_validation {
    use super::*;

    #[test]
    fn des_simulation_matches_closed_form() {
        let (spec, c, s) = (
            ecc_cluster::ClusterSpec::paper_testbed(),
            BaselineConstants::default(),
            4_600_000_000u64,
        );
        let iteration = SimDuration::from_millis(184);
        for cost in [base1_save(&spec, s, &c), base2_save(&spec, s, &c), base3_save(&spec, s)] {
            for interval in [1u64, 2, 5, 20, 100] {
                // Run enough cycles that edge effects vanish; the last
                // cycle's async tail is not waited for in either model.
                let cycles = 40;
                let des = simulate_average_iteration(iteration, interval, cost, interval * cycles);
                let formula = average_iteration_time(iteration, interval, cost);
                let diff = (des.as_secs_f64() - formula.as_secs_f64()).abs();
                // The DES run skips the checkpoint after the final
                // iteration and never waits for the last async tail, so
                // allow two cycles' worth of amortized boundary slack.
                let slack = 2.0 * (cost.total.as_secs_f64() + cost.stall.as_secs_f64())
                    / (interval * cycles) as f64
                    + 1e-9;
                assert!(
                    diff <= slack,
                    "interval {interval}: DES {des} vs formula {formula} (diff {diff}, slack {slack})"
                );
            }
        }
    }

    #[test]
    fn des_without_checkpoints_is_pure_training() {
        let iteration = SimDuration::from_millis(100);
        let cost = SaveCost { stall: SimDuration::ZERO, total: SimDuration::ZERO };
        let avg = simulate_average_iteration(iteration, 1000, cost, 50);
        assert_eq!(avg, iteration);
    }
}
