//! Multi-version restore matrix.
//!
//! One save history — five versions under a `keep-last-2` window plus a
//! `keep-every-2nd` ladder, so tier 0 retains exactly {2, 4, 5} — is
//! replayed across every cell of the matrix
//!
//!     {retained version} × {Sequential, Pipelined} × {data plane}
//!
//! where the data plane is the in-memory `Cluster`, a quiet
//! `ChaosPlane` (fault machinery armed, zero injection rate), and a
//! real `RemotePlane` speaking the TCP wire protocol to a loopback
//! `CheckpointServer`. Every cell must restore bit-exactly and stamp
//! `LoadReport.version` with the version it was asked for; collected
//! versions must refuse with `VersionGone` on every plane.

use std::collections::BTreeMap;

use ecc_chaos::{ChaosConfig, ChaosPlane};
use ecc_checkpoint::{DType, StateDict, Tensor, Value};
use ecc_cluster::{Cluster, ClusterSpec, DataPlane};
use ecc_net::{CheckpointServer, RemotePlane, ServerConfig};
use eccheck::{EcCheck, EcCheckConfig, EcCheckError, SaveMode};

const NODES: usize = 4;
const GPUS: usize = 2;
const WORLD: usize = NODES * GPUS;
const SAVES: u64 = 5;
const RETAINED: [u64; 3] = [2, 4, 5];
const COLLECTED: [u64; 2] = [1, 3];

fn dicts(round: u64) -> Vec<StateDict> {
    (0..WORLD)
        .map(|w| {
            let mut sd = StateDict::new();
            sd.insert("rank", Value::Int(w as i64));
            sd.insert("round", Value::Int(round as i64));
            let len = 48 + (w * 31) % 128;
            let bytes: Vec<u8> =
                (0..len).map(|i| (i as u8).wrapping_mul(43) ^ (w as u8) ^ round as u8).collect();
            let t = Tensor::from_bytes(DType::U8, &[len], bytes).expect("tensor shape valid");
            sd.insert("weights", Value::Tensor(t));
            sd
        })
        .collect()
}

fn config(mode: SaveMode) -> EcCheckConfig {
    EcCheckConfig::paper_defaults()
        .with_km(2, 2)
        .with_packet_size(256)
        .with_coding_threads(2)
        .with_remote_flush_every(0)
        .with_save_mode(mode)
        .with_retain_last(2)
        .with_retain_every(2)
}

/// Runs the save history on `plane` and checks every matrix cell for
/// one (plane, mode) combination.
fn run_matrix<P: DataPlane>(plane: &mut P, mode: SaveMode, plane_name: &str) {
    let spec = ClusterSpec::tiny_test(NODES, GPUS);
    let mut ecc = EcCheck::initialize(&spec, config(mode)).expect("config valid");

    let mut saved = BTreeMap::new();
    for round in 1..=SAVES {
        let d = dicts(round);
        let report = ecc.save(plane, &d).expect("save");
        assert_eq!(report.version, round, "{plane_name}/{mode:?}");
        saved.insert(round, d);
    }
    assert_eq!(ecc.retained_versions(), RETAINED.to_vec(), "{plane_name}/{mode:?}");

    for v in RETAINED {
        let (restored, report) = ecc
            .load_version(plane, v)
            .unwrap_or_else(|e| panic!("{plane_name}/{mode:?}: v{v} must load: {e}"));
        assert_eq!(restored, saved[&v], "{plane_name}/{mode:?}: v{v} bit-exact");
        assert_eq!(report.version, v, "{plane_name}/{mode:?}: v{v} report stamp");
    }
    for v in COLLECTED {
        match ecc.load_version(plane, v) {
            Err(EcCheckError::VersionGone { version }) => assert_eq!(version, v),
            other => panic!("{plane_name}/{mode:?}: collected v{v} must refuse, got {other:?}"),
        }
    }

    // The default entry point lands on the newest retained version.
    let (newest, report) = ecc.load(plane).expect("newest loads");
    assert_eq!(newest, saved[&SAVES], "{plane_name}/{mode:?}");
    assert_eq!(report.version, SAVES, "{plane_name}/{mode:?}");
}

#[test]
fn memory_plane_restores_every_retained_version() {
    let spec = ClusterSpec::tiny_test(NODES, GPUS);
    for mode in [SaveMode::Sequential, SaveMode::Pipelined] {
        let mut cluster = Cluster::new(spec);
        run_matrix(&mut cluster, mode, "memory");
    }
}

#[test]
fn quiet_chaos_plane_restores_every_retained_version() {
    // Zero injection rate: the full interposition machinery (op
    // accounting, fetch provenance) runs, but no faults fire — the
    // matrix must be indistinguishable from the memory plane.
    let spec = ClusterSpec::tiny_test(NODES, GPUS);
    for (i, mode) in [SaveMode::Sequential, SaveMode::Pipelined].into_iter().enumerate() {
        let mut plane = ChaosPlane::new(Cluster::new(spec), ChaosConfig::quiet(11 + i as u64));
        run_matrix(&mut plane, mode, "chaos-quiet");
    }
}

#[test]
fn remote_plane_loopback_restores_every_retained_version() {
    // The same matrix over the real TCP wire protocol: every blob of
    // every version round-trips through the loopback server.
    let spec = ClusterSpec::tiny_test(NODES, GPUS);
    for mode in [SaveMode::Sequential, SaveMode::Pipelined] {
        let server =
            CheckpointServer::serve(Cluster::new(spec), "127.0.0.1:0", ServerConfig::default())
                .expect("loopback server binds");
        let addr = server.local_addr().to_string();
        let mut plane = RemotePlane::connect(&addr).expect("client connects");
        run_matrix(&mut plane, mode, "remote-loopback");
        drop(plane);
        server.shutdown();
    }
}
