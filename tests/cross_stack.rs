//! Cross-stack integration: the serialization-free protocol against the
//! serializer, worker-level distributed encoding against chunk-level
//! encoding, and the decode-matrix recovery math of paper Fig. 7.

use ecc_checkpoint::{decompose, serialize, StateDict};
use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};
use ecc_erasure::{region, CodeParams, ErasureCode, MulTable};
use ecc_gf::GaloisField;

fn shard(worker: usize) -> StateDict {
    let model = ModelConfig::gpt2(64, 4, 4).with_vocab(256).with_seq_len(16);
    let par = ParallelismSpec::new(2, 2, 1).unwrap();
    build_worker_state_dict(&StateDictSpec::new(model, par), worker).unwrap()
}

#[test]
fn decomposition_and_serializer_agree_on_content() {
    // The serialization-free path and the torch.save-style path must
    // describe the same state: decompose → reassemble → serialize equals
    // serialize directly.
    let sd = shard(0);
    let direct = serialize::dict_to_bytes(&sd);
    let via_decompose = serialize::dict_to_bytes(&decompose(&sd).reassemble().unwrap());
    assert_eq!(direct, via_decompose);
}

#[test]
fn decomposition_header_is_orders_smaller_than_serialized_dict() {
    // The premise of §III-C: what ECCheck serializes (the header) is a
    // vanishing fraction of what base1 serializes (everything).
    let sd = shard(0);
    let full = serialize::dict_to_bytes(&sd).len();
    let header = decompose(&sd).header_bytes();
    assert!(
        header * 20 < full,
        "header {header} should be far below the full serialization {full}"
    );
}

/// Worker-level distributed encoding (paper Fig. 6): each worker
/// multiplies its packet by its generator coefficient, packets are
/// XOR-reduced across the data groups, and the result must equal the
/// centralized chunk-level encode.
#[test]
fn distributed_worker_encoding_matches_chunk_encoding() {
    let gf = GaloisField::new(8).unwrap();
    let params = CodeParams::new(2, 2, 8).unwrap();
    let code = ErasureCode::cauchy_good(params).unwrap();
    let packet = 128usize;
    let group_size = 3usize; // workers per data group

    // Worker packets: data group j has `group_size` packets.
    let packets: Vec<Vec<Vec<u8>>> = (0..2)
        .map(|j| {
            (0..group_size)
                .map(|r| (0..packet).map(|b| (j * 91 + r * 37 + b) as u8).collect())
                .collect()
        })
        .collect();

    // Centralized: chunks = concatenation, parity computed by symbol-wise
    // GF multiply-accumulate over whole chunks. (The library's bitmatrix
    // path uses an equivalent but differently-laid-out bit-plane symbol
    // mapping; for comparing the *distributed* flow we fix the byte-wise
    // symbol layout on both sides.)
    let chunks: Vec<Vec<u8>> = packets.iter().map(|group| group.concat()).collect();
    let chunk_len = chunks[0].len();
    let central_parity: Vec<Vec<u8>> = (0..2)
        .map(|i| {
            let mut acc = vec![0u8; chunk_len];
            for (j, chunk) in chunks.iter().enumerate() {
                let coef = code.coef(2 + i, j);
                MulTable::new(&gf, coef).unwrap().apply_xor(chunk, &mut acc);
            }
            acc
        })
        .collect();

    // Distributed: reduction group r computes parity packet i as
    // XOR_j coef(k+i, j) · packet(j, r) using per-worker table multiply
    // and XOR reduction — exactly the paper's 3-step flow.
    for (i, central) in central_parity.iter().enumerate() {
        for r in 0..group_size {
            let mut acc = vec![0u8; packet];
            for (j, group) in packets.iter().enumerate() {
                let coef = code.coef(2 + i, j);
                let table = MulTable::new(&gf, coef).unwrap();
                let mut encoded = vec![0u8; packet];
                table.apply(&group[r], &mut encoded);
                region::xor_into(&mut acc, &encoded);
            }
            // GF(2^8) coding is *byte-wise*, so the distributed result
            // must equal the corresponding slice of the central parity.
            let expected = &central[r * packet..(r + 1) * packet];
            assert_eq!(acc, expected, "parity {i}, reduction group {r}");
        }
    }
}

/// The recovery math of paper Fig. 7 / Eqn. 5: apply the decode matrix
/// to survivor packets worker-by-worker and reconstruct everything.
#[test]
fn decode_matrix_drives_distributed_recovery() {
    let gf = GaloisField::new(8).unwrap();
    let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
    let packet = 64usize;
    let d: Vec<Vec<u8>> = (0..2).map(|j| vec![(j as u8 + 1) * 17; packet]).collect();
    // Parity in the byte-wise symbol layout, matching the table-multiply
    // recovery below (see the layout note in the previous test).
    let parity: Vec<Vec<u8>> = (0..2)
        .map(|i| {
            let mut acc = vec![0u8; packet];
            for (j, chunk) in d.iter().enumerate() {
                let coef = code.coef(2 + i, j);
                MulTable::new(&gf, coef).unwrap().apply_xor(chunk, &mut acc);
            }
            acc
        })
        .collect();

    // Nodes 1 and 2 fail: survivors hold chunk 0 (data) and chunk 3
    // (parity) — the paper's Eqn. 5 example.
    let survivors = [0usize, 3usize];
    let dm = code.decode_matrix(&survivors).unwrap();
    let survivor_packets: [&[u8]; 2] = [&d[0], &parity[1]];

    // Every node rebuilds its chunk as a linear combination of the
    // survivor packets, using only table multiplies and XORs.
    let all_chunks: Vec<&[u8]> = vec![&d[0], &d[1], &parity[0], &parity[1]];
    for (chunk_id, &expected) in all_chunks.iter().enumerate() {
        let mut acc = vec![0u8; packet];
        for (c, src) in survivor_packets.iter().enumerate() {
            let coef = dm.get(chunk_id, c);
            let table = MulTable::new(&gf, coef).unwrap();
            table.apply_xor(src, &mut acc);
        }
        assert_eq!(acc.as_slice(), expected, "chunk {chunk_id}");
    }
}

#[test]
fn packer_and_decomposition_compose_across_workers() {
    // Pack four different workers' tensor data through one packer and
    // rebuild each — the per-worker layout independence the engine
    // relies on.
    let packer = ecc_checkpoint::Packer::new(512).unwrap();
    for w in 0..4 {
        let sd = shard(w % 4);
        let mut d = decompose(&sd);
        let lens: Vec<usize> = d.tensor_data().iter().map(Vec::len).collect();
        let (packets, extents) = packer.pack(d.tensor_data());
        let tensors = packer.unpack(&packets, &extents, &lens).unwrap();
        d.set_tensor_data(tensors).unwrap();
        assert_eq!(d.reassemble().unwrap(), sd);
    }
}
