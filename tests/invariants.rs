//! Cross-crate invariants, property-tested: traffic accounting, failure
//! sampling vs closed-form reliability, and code-level recoverability.

use ecc_checkpoint::{StateDict, Value};
use ecc_cluster::{Cluster, ClusterSpec, FailureModel};
use ecc_erasure::{CodeParams, ErasureCode};
use ecc_reliability::{ec_recovery, monte_carlo_recovery, replication_pairs_recovery};
use eccheck::{select_data_parity_nodes, EcCheck, EcCheckConfig, EcCheckError, ReductionPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Small, shape-diverse worker states for end-to-end engine proptests.
fn engine_dicts(world: usize) -> Vec<StateDict> {
    (0..world)
        .map(|w| {
            let mut sd = StateDict::new();
            sd.insert("rank", Value::Int(w as i64));
            sd.insert("payload", Value::Bytes(vec![w as u8 ^ 0x5A; 40 + (w * 13) % 80]));
            sd
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The §V-F invariant: total checkpoint traffic is m·s·W — exactly,
    /// when data groups align with node boundaries ((W/k) % g == 0, the
    /// paper's implicit assumption that every data node starts with g of
    /// its group's packets); within a bounded slack otherwise.
    #[test]
    fn traffic_totals_msw(
        k in 1usize..6,
        m in 1usize..6,
        g in 1usize..6,
        s in 1u64..1000,
    ) {
        let nodes = k + m;
        let spec = ClusterSpec::tiny_test(nodes, g);
        let world = spec.world_size();
        prop_assume!(world.is_multiple_of(k));
        let placement = select_data_parity_nodes(&spec.origin_group(), k).unwrap();
        let plan = ReductionPlan::build(&spec, &placement, m).unwrap();
        let t = plan.traffic(s);
        let msw = (m as u64) * s * (world as u64);
        if (world / k).is_multiple_of(g) {
            prop_assert_eq!(t.total(), msw);
        } else {
            // Misaligned shapes pay extra data P2P (a data node cannot
            // start with g packets of its group), bounded by k·g packets.
            prop_assert!(t.total() >= msw);
            prop_assert!(t.total() <= msw + (k * g) as u64 * s);
        }
    }

    /// Recoverability of the actual erasure code matches the counting
    /// argument behind Eqn. 2: decode succeeds iff at most m chunks are
    /// erased.
    #[test]
    fn code_recoverability_matches_counting(
        k in 1usize..5,
        m in 1usize..5,
        erased_mask in any::<u16>(),
    ) {
        let code = ErasureCode::cauchy_good(CodeParams::new(k, m, 8).unwrap()).unwrap();
        let n = k + m;
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8 + 1; 64]).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut chunks: Vec<&[u8]> = refs.clone();
        chunks.extend(parity.iter().map(|c| c.as_slice()));
        let erased: Vec<bool> = (0..n).map(|i| (erased_mask >> i) & 1 == 1).collect();
        let shards: Vec<Option<&[u8]>> =
            (0..n).map(|i| (!erased[i]).then(|| chunks[i])).collect();
        let erased_count = erased.iter().filter(|&&e| e).count();
        match code.decode(&shards) {
            Ok(decoded) => {
                prop_assert!(erased_count <= m);
                prop_assert_eq!(decoded, data);
            }
            Err(_) => prop_assert!(erased_count > m),
        }
    }

    /// Placement always yields a data-node set whose P2P cost is within
    /// one group of the trivial lower bound (W - k·g when groups align).
    #[test]
    fn placement_p2p_cost_is_bounded(
        k in 1usize..6,
        m in 0usize..4,
        g in 1usize..6,
    ) {
        let nodes = k + m;
        prop_assume!(nodes >= k && nodes >= 1);
        let spec = ClusterSpec::tiny_test(nodes, g);
        let world = spec.world_size();
        prop_assume!(world.is_multiple_of(k));
        let origin = spec.origin_group();
        let placement = select_data_parity_nodes(&origin, k).unwrap();
        let cost = eccheck::data_p2p_packets(&origin, &placement);
        // Lower bound: each data node can hold at most g of its group's
        // W/k packets locally.
        let group = world / k;
        let lower: usize = k * group.saturating_sub(g);
        prop_assert!(cost >= lower);
        prop_assert!(cost <= world);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper's headline guarantee, end to end through the real
    /// engine: on *every* (k, m, g) shape, losing exactly `m` nodes —
    /// any `m`, the worst case the code is sized for — restores the
    /// checkpoint bit-exactly.
    #[test]
    fn exactly_m_node_failures_always_recover(
        k in 1usize..5,
        m in 1usize..4,
        g in 1usize..4,
        sel in any::<u64>(),
    ) {
        let nodes = k + m;
        let spec = ClusterSpec::tiny_test(nodes, g);
        prop_assume!(spec.world_size().is_multiple_of(k));
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(
            &spec,
            EcCheckConfig::paper_defaults()
                .with_km(k, m)
                .with_packet_size(256)
                .with_coding_threads(1)
                .with_remote_flush_every(0),
        )
        .unwrap();
        let dicts = engine_dicts(spec.world_size());
        ecc.save(&mut cluster, &dicts).unwrap();

        // Fail exactly m nodes, the subset chosen by `sel`.
        let mut order: Vec<usize> = (0..nodes).collect();
        order.shuffle(&mut StdRng::seed_from_u64(sel));
        for &n in &order[..m] {
            cluster.fail_node(n);
            cluster.replace_node(n);
        }

        let (restored, report) = ecc.load(&mut cluster).unwrap();
        prop_assert_eq!(restored, dicts);
        prop_assert_eq!(report.failed_nodes.len(), m);
    }

    /// And one loss beyond the budget refuses cleanly: a structured
    /// `Unrecoverable` naming lost workers — never garbage.
    #[test]
    fn m_plus_one_failures_refuse_cleanly(
        k in 1usize..5,
        m in 1usize..4,
        g in 1usize..4,
        sel in any::<u64>(),
    ) {
        let nodes = k + m;
        let spec = ClusterSpec::tiny_test(nodes, g);
        prop_assume!(spec.world_size().is_multiple_of(k));
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(
            &spec,
            EcCheckConfig::paper_defaults()
                .with_km(k, m)
                .with_packet_size(256)
                .with_coding_threads(1)
                .with_remote_flush_every(0),
        )
        .unwrap();
        let dicts = engine_dicts(spec.world_size());
        ecc.save(&mut cluster, &dicts).unwrap();

        let mut order: Vec<usize> = (0..nodes).collect();
        order.shuffle(&mut StdRng::seed_from_u64(sel));
        for &n in &order[..m + 1] {
            cluster.fail_node(n);
            cluster.replace_node(n);
        }

        match ecc.load(&mut cluster) {
            Err(EcCheckError::Unrecoverable { survivors, needed, lost_workers }) => {
                prop_assert_eq!(survivors, k - 1);
                prop_assert_eq!(needed, k);
                // m+1 failures among k+m nodes always hit >= 1 data node.
                prop_assert!(!lost_workers.is_empty());
            }
            other => prop_assert!(false, "expected Unrecoverable, got {:?}", other.map(|r| r.1)),
        }
    }
}

/// Monte-Carlo failure sampling through the cluster's own failure model
/// agrees with the closed-form group recovery rates — tying the
/// `ecc-cluster` and `ecc-reliability` crates together.
#[test]
fn cluster_failure_model_matches_closed_forms() {
    let p = 0.12;
    let trials = 100_000;
    let model = FailureModel::new(p).unwrap();
    let mut ec_ok = 0usize;
    let mut rep_ok = 0usize;
    for seed in 0..trials {
        let scenario = model.sample(4, seed as u64);
        if scenario.count() <= 2 {
            ec_ok += 1;
        }
        let pair0 = scenario.is_failed(0) && scenario.is_failed(1);
        let pair1 = scenario.is_failed(2) && scenario.is_failed(3);
        if !pair0 && !pair1 {
            rep_ok += 1;
        }
    }
    let mc_ec = ec_ok as f64 / trials as f64;
    let mc_rep = rep_ok as f64 / trials as f64;
    assert!((mc_ec - ec_recovery(4, 2, p)).abs() < 0.01, "EC {mc_ec}");
    assert!((mc_rep - replication_pairs_recovery(4, p)).abs() < 0.01, "rep {mc_rep}");
    // And the reliability crate's own sampler agrees with itself.
    let lib_mc = monte_carlo_recovery(4, p, trials, 9, ecc_reliability::ec_predicate(2));
    assert!((lib_mc - mc_ec).abs() < 0.01);
}
