//! Cross-crate invariants, property-tested: traffic accounting, failure
//! sampling vs closed-form reliability, and code-level recoverability.

use ecc_cluster::{ClusterSpec, FailureModel};
use ecc_erasure::{CodeParams, ErasureCode};
use ecc_reliability::{ec_recovery, monte_carlo_recovery, replication_pairs_recovery};
use eccheck::{select_data_parity_nodes, ReductionPlan};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The §V-F invariant: total checkpoint traffic is m·s·W — exactly,
    /// when data groups align with node boundaries ((W/k) % g == 0, the
    /// paper's implicit assumption that every data node starts with g of
    /// its group's packets); within a bounded slack otherwise.
    #[test]
    fn traffic_totals_msw(
        k in 1usize..6,
        m in 1usize..6,
        g in 1usize..6,
        s in 1u64..1000,
    ) {
        let nodes = k + m;
        let spec = ClusterSpec::tiny_test(nodes, g);
        let world = spec.world_size();
        prop_assume!(world.is_multiple_of(k));
        let placement = select_data_parity_nodes(&spec.origin_group(), k).unwrap();
        let plan = ReductionPlan::build(&spec, &placement, m).unwrap();
        let t = plan.traffic(s);
        let msw = (m as u64) * s * (world as u64);
        if (world / k).is_multiple_of(g) {
            prop_assert_eq!(t.total(), msw);
        } else {
            // Misaligned shapes pay extra data P2P (a data node cannot
            // start with g packets of its group), bounded by k·g packets.
            prop_assert!(t.total() >= msw);
            prop_assert!(t.total() <= msw + (k * g) as u64 * s);
        }
    }

    /// Recoverability of the actual erasure code matches the counting
    /// argument behind Eqn. 2: decode succeeds iff at most m chunks are
    /// erased.
    #[test]
    fn code_recoverability_matches_counting(
        k in 1usize..5,
        m in 1usize..5,
        erased_mask in any::<u16>(),
    ) {
        let code = ErasureCode::cauchy_good(CodeParams::new(k, m, 8).unwrap()).unwrap();
        let n = k + m;
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8 + 1; 64]).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut chunks: Vec<&[u8]> = refs.clone();
        chunks.extend(parity.iter().map(|c| c.as_slice()));
        let erased: Vec<bool> = (0..n).map(|i| (erased_mask >> i) & 1 == 1).collect();
        let shards: Vec<Option<&[u8]>> =
            (0..n).map(|i| (!erased[i]).then(|| chunks[i])).collect();
        let erased_count = erased.iter().filter(|&&e| e).count();
        match code.decode(&shards) {
            Ok(decoded) => {
                prop_assert!(erased_count <= m);
                prop_assert_eq!(decoded, data);
            }
            Err(_) => prop_assert!(erased_count > m),
        }
    }

    /// Placement always yields a data-node set whose P2P cost is within
    /// one group of the trivial lower bound (W - k·g when groups align).
    #[test]
    fn placement_p2p_cost_is_bounded(
        k in 1usize..6,
        m in 0usize..4,
        g in 1usize..6,
    ) {
        let nodes = k + m;
        prop_assume!(nodes >= k && nodes >= 1);
        let spec = ClusterSpec::tiny_test(nodes, g);
        let world = spec.world_size();
        prop_assume!(world.is_multiple_of(k));
        let origin = spec.origin_group();
        let placement = select_data_parity_nodes(&origin, k).unwrap();
        let cost = eccheck::data_p2p_packets(&origin, &placement);
        // Lower bound: each data node can hold at most g of its group's
        // W/k packets locally.
        let group = world / k;
        let lower: usize = k * group.saturating_sub(g);
        prop_assert!(cost >= lower);
        prop_assert!(cost <= world);
    }
}

/// Monte-Carlo failure sampling through the cluster's own failure model
/// agrees with the closed-form group recovery rates — tying the
/// `ecc-cluster` and `ecc-reliability` crates together.
#[test]
fn cluster_failure_model_matches_closed_forms() {
    let p = 0.12;
    let trials = 100_000;
    let model = FailureModel::new(p).unwrap();
    let mut ec_ok = 0usize;
    let mut rep_ok = 0usize;
    for seed in 0..trials {
        let scenario = model.sample(4, seed as u64);
        if scenario.count() <= 2 {
            ec_ok += 1;
        }
        let pair0 = scenario.is_failed(0) && scenario.is_failed(1);
        let pair1 = scenario.is_failed(2) && scenario.is_failed(3);
        if !pair0 && !pair1 {
            rep_ok += 1;
        }
    }
    let mc_ec = ec_ok as f64 / trials as f64;
    let mc_rep = rep_ok as f64 / trials as f64;
    assert!((mc_ec - ec_recovery(4, 2, p)).abs() < 0.01, "EC {mc_ec}");
    assert!((mc_rep - replication_pairs_recovery(4, p)).abs() < 0.01, "rep {mc_rep}");
    // And the reliability crate's own sampler agrees with itself.
    let lib_mc = monte_carlo_recovery(4, p, trials, 9, ecc_reliability::ec_predicate(2));
    assert!((lib_mc - mc_ec).abs() < 0.01);
}
