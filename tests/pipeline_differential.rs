//! Differential harness for the pipelined save executor.
//!
//! `SaveMode::Pipelined` reschedules the encode → XOR-reduce → transfer
//! work of a save; it must never change *what* a save stores. These
//! tests hold it to that: for every code shape, stripe-buffer size and
//! thread count, a pipelined save must leave every node of the cluster
//! holding byte-identical blobs — same keys, same chunk bytes, same
//! checksum frames — as a sequential save of the same state, and a
//! checkpoint written by either mode must load back exactly.

use ecc_checkpoint::{StateDict, Value};
use ecc_cluster::{Cluster, ClusterSpec};
use eccheck::{keys, EcCheck, EcCheckConfig, SaveMode};
use proptest::prelude::*;

/// Deterministic, shape-diverse worker states. `extra` grows one
/// worker's payload so saves cover uneven shard sizes and the packet
/// padding tail.
fn dicts_for(world: usize, salt: u8, extra: usize) -> Vec<StateDict> {
    (0..world)
        .map(|w| {
            let mut sd = StateDict::new();
            sd.insert("rank", Value::Int(w as i64));
            sd.insert("salt", Value::Int(salt as i64));
            let len = 40 + (w * 37) % 200 + if w == 0 { extra } else { 0 };
            let payload: Vec<u8> =
                (0..len).map(|i| (i as u8).wrapping_mul(31) ^ (w as u8) ^ salt).collect();
            sd.insert("payload", Value::Bytes(payload));
            sd
        })
        .collect()
}

/// Every blob on every live node, in a canonical order: the complete
/// observable result of a save on the local data plane.
fn local_fingerprint(cluster: &Cluster, nodes: usize) -> Vec<(usize, String, Vec<u8>)> {
    let mut out = Vec::new();
    for node in 0..nodes {
        for key in cluster.local_keys(node) {
            let bytes = cluster.get_local(node, &key).expect("listed key readable").to_vec();
            out.push((node, key, bytes));
        }
    }
    out
}

struct Saved {
    cluster: Cluster,
    ecc: EcCheck,
    nodes: usize,
}

/// Runs `saves` checkpoints of evolving state through one engine.
fn run_saves(nodes: usize, gpus: usize, cfg: EcCheckConfig, saves: u64, extra: usize) -> Saved {
    let spec = ClusterSpec::tiny_test(nodes, gpus);
    let mut cluster = Cluster::new(spec);
    let mut ecc = EcCheck::initialize(&spec, cfg).expect("config valid for shape");
    for v in 1..=saves {
        let dicts = dicts_for(spec.world_size(), v as u8, extra);
        ecc.save(&mut cluster, &dicts).expect("save succeeds");
    }
    Saved { cluster, ecc, nodes }
}

fn base_config(k: usize, m: usize) -> EcCheckConfig {
    EcCheckConfig::paper_defaults().with_km(k, m).with_packet_size(256)
}

#[test]
fn pipelined_stores_identical_blobs_across_shapes_buffers_and_threads() {
    // (k, m, gpus): world = (k+m)*gpus must divide by k.
    for (k, m, gpus) in [(2usize, 2usize, 1usize), (2, 2, 2), (4, 2, 2), (3, 3, 1)] {
        let nodes = k + m;
        let oracle =
            run_saves(nodes, gpus, base_config(k, m).with_save_mode(SaveMode::Sequential), 1, 0);
        let want = local_fingerprint(&oracle.cluster, nodes);
        assert!(!want.is_empty(), "oracle must have stored something");
        for buffer in [64usize, 256, 1024, 8192] {
            for threads in [1usize, 2, 4, 8] {
                let got = run_saves(
                    nodes,
                    gpus,
                    base_config(k, m)
                        .with_save_mode(SaveMode::Pipelined)
                        .with_coding_threads(threads)
                        .with_pipeline_buffer(buffer),
                    1,
                    0,
                );
                assert_eq!(
                    local_fingerprint(&got.cluster, nodes),
                    want,
                    "k={k} m={m} gpus={gpus} buffer={buffer} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn modes_agree_across_multiple_save_versions() {
    // Version numbering, header turnover and chunk contents must track
    // each other save after save, not just on the first one.
    let seq = run_saves(4, 2, base_config(2, 2).with_save_mode(SaveMode::Sequential), 3, 0);
    let pipe = run_saves(
        4,
        2,
        base_config(2, 2)
            .with_save_mode(SaveMode::Pipelined)
            .with_coding_threads(3)
            .with_pipeline_buffer(128),
        3,
        0,
    );
    assert_eq!(local_fingerprint(&pipe.cluster, 4), local_fingerprint(&seq.cluster, 4));
}

#[test]
fn checkpoints_load_back_from_either_mode_after_failures() {
    for mode in [SaveMode::Sequential, SaveMode::Pipelined] {
        let Saved { mut cluster, ecc, .. } =
            run_saves(4, 2, base_config(2, 2).with_save_mode(mode), 2, 0);
        let expected = dicts_for(8, 2, 0);

        // Clean load first, then a two-node failure burst (= m).
        let (restored, _) = ecc.load(&mut cluster).expect("clean load");
        assert_eq!(restored, expected, "{mode:?} clean load");
        cluster.fail_node(0);
        cluster.fail_node(2);
        cluster.replace_node(0);
        cluster.replace_node(2);
        let (restored, report) = ecc.load(&mut cluster).expect("recovery load");
        assert_eq!(restored, expected, "{mode:?} recovery load");
        assert_eq!(report.version, 2);
    }
}

#[test]
fn remote_flush_is_mode_independent() {
    let seq = run_saves(
        4,
        1,
        base_config(2, 2).with_save_mode(SaveMode::Sequential).with_remote_flush_every(1),
        1,
        0,
    );
    let pipe = run_saves(
        4,
        1,
        base_config(2, 2)
            .with_save_mode(SaveMode::Pipelined)
            .with_pipeline_buffer(96)
            .with_remote_flush_every(1),
        1,
        0,
    );
    assert_eq!(pipe.cluster.remote_used(), seq.cluster.remote_used());
    let world = 4;
    let mut remote_keys: Vec<String> = vec![keys::remote_manifest_key(1)];
    for node in 0..4 {
        remote_keys.push(keys::remote_chunk_key(1, node));
        remote_keys.push(keys::remote_chunk_crc_key(1, node));
    }
    for worker in 0..world {
        remote_keys.push(keys::remote_header_key(1, worker));
        remote_keys.push(keys::remote_header_crc_key(1, worker));
    }
    for key in remote_keys {
        assert_eq!(
            pipe.cluster.get_remote(&key),
            seq.cluster.get_remote(&key),
            "remote blob {key} must not depend on the save mode"
        );
        assert!(pipe.cluster.get_remote(&key).is_some(), "remote blob {key} must exist");
    }
}

#[test]
fn pipelined_saves_report_stage_accounting() {
    let pipe = run_saves(
        4,
        1,
        base_config(2, 2).with_save_mode(SaveMode::Pipelined).with_pipeline_buffer(64),
        1,
        0,
    );
    let snap = pipe.ecc.recorder().snapshot();
    assert!(snap.counter("ecc.pipeline.stripes") > 0, "stripes must be counted");
    assert!(
        snap.counter("ecc.pipeline.encode_tasks") >= snap.counter("ecc.pipeline.stripes"),
        "each stripe takes at least one encode task per data chunk"
    );

    let seq = run_saves(4, 1, base_config(2, 2).with_save_mode(SaveMode::Sequential), 1, 0);
    let seq_snap = seq.ecc.recorder().snapshot();
    assert_eq!(seq_snap.counter("ecc.pipeline.stripes"), 0, "sequential saves use no stripes");
    // Both paths keep the aggregate encode totals complete.
    assert_eq!(
        snap.counter("erasure.encode.bytes"),
        seq_snap.counter("erasure.encode.bytes"),
        "aggregate encode byte accounting must not depend on the mode"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core differential property, over randomly sized shards
    /// (including tails that are not a multiple of the stripe buffer),
    /// random stripe buffers and random thread counts.
    #[test]
    fn pipelined_is_bit_identical_for_arbitrary_shards(
        extra in 0usize..4000,
        buffer in 16usize..6000,
        threads in 1usize..8,
        depth in 2usize..6,
    ) {
        let seq = run_saves(4, 1, base_config(2, 2).with_save_mode(SaveMode::Sequential), 1, extra);
        let pipe = run_saves(
            4,
            1,
            base_config(2, 2)
                .with_save_mode(SaveMode::Pipelined)
                .with_coding_threads(threads)
                .with_pipeline_buffer(buffer)
                .with_pipeline_depth(depth),
            1,
            extra,
        );
        prop_assert_eq!(
            local_fingerprint(&pipe.cluster, pipe.nodes),
            local_fingerprint(&seq.cluster, seq.nodes)
        );
    }
}
