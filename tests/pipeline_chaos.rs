//! Chaos stress for the pipelined save executor.
//!
//! The pipelined path moves chunk placement onto a stage that runs
//! while encoding is still in flight, so its failure behavior needs its
//! own scrutiny: a data-plane fault mid-save must surface as a clean
//! `save` error that leaves the *previous* checkpoint loadable, and the
//! recovery contract (≤ m faults → bit-exact, > m → clean refusal)
//! must hold over saves written by the executor under fault pressure.

use ecc_chaos::{ChaosConfig, ChaosPlane};
use ecc_checkpoint::{StateDict, Value};
use ecc_cluster::{Cluster, ClusterSpec};
use eccheck::{keys, EcCheck, EcCheckConfig, EcCheckError, SaveMode};

fn dicts(world: usize, salt: u8) -> Vec<StateDict> {
    (0..world)
        .map(|w| {
            let mut sd = StateDict::new();
            sd.insert("rank", Value::Int(w as i64));
            sd.insert("salt", Value::Int(salt as i64));
            let len = 64 + (w * 41) % 160;
            sd.insert(
                "payload",
                Value::Bytes((0..len).map(|i| (i as u8) ^ (w as u8) ^ salt).collect()),
            );
            sd
        })
        .collect()
}

fn pipelined_config(threads: usize) -> EcCheckConfig {
    EcCheckConfig::paper_defaults()
        .with_packet_size(256)
        .with_save_mode(SaveMode::Pipelined)
        .with_coding_threads(threads)
        .with_pipeline_buffer(64)
        .with_remote_flush_every(0)
}

#[test]
fn node_crash_mid_save_fails_cleanly_and_keeps_the_old_checkpoint() {
    // Sweep the crash over a range of op counts so it lands in every
    // phase of the pipelined save: header broadcast, early chunk
    // placement, late chunk placement.
    for threads in [1usize, 4] {
        for after_ops in (1..40u64).step_by(4) {
            let spec = ClusterSpec::tiny_test(4, 2);
            let mut ecc = EcCheck::initialize(&spec, pipelined_config(threads)).unwrap();
            let mut plane = ChaosPlane::new(Cluster::new(spec), ChaosConfig::quiet(9));
            let good = dicts(8, 1);
            ecc.save(&mut plane, &good).expect("fault-free save succeeds");

            plane.schedule_crash_at_op(0, plane.op() + after_ops);
            let crashed = ecc.save(&mut plane, &dicts(8, 2));
            plane.cancel_scheduled_crashes();

            match crashed {
                // The crash hit inside the save: version 1 must still load.
                Err(_) => {
                    plane.heal(0);
                    let (restored, report) =
                        ecc.load(&mut plane).expect("previous checkpoint must survive");
                    assert_eq!(report.version, 1, "threads={threads} after_ops={after_ops}");
                    assert_eq!(restored, good, "threads={threads} after_ops={after_ops}");
                }
                // The crash landed after the save completed (or on a
                // node whose puts were already done): the new version
                // must load once the node is replaced.
                Ok(report) => {
                    assert_eq!(report.version, 2);
                    plane.heal(0);
                    let (restored, load) = ecc.load(&mut plane).expect("new checkpoint loads");
                    assert_eq!(load.version, 2);
                    assert_eq!(restored, dicts(8, 2));
                }
            }
        }
    }
}

#[test]
fn worker_killed_mid_steal_fails_cleanly_and_keeps_the_old_checkpoint() {
    // Kill an encode worker at its n-th task pick-up — right after a
    // pop or steal, before it touches window or ring state — and sweep
    // n across the whole task stream so the panic lands while peers are
    // blocked on every kind of shared state: deque stealing, the
    // bounded contribution ring, the admission window. Each save must
    // fail with `StageFailed` (never hang on the bounded rings, never
    // commit a half-encoded version), and the previous checkpoint must
    // load bit-exactly afterwards.
    for threads in [1usize, 2, 4, 8] {
        for fail_at in (0..24u64).step_by(3) {
            let spec = ClusterSpec::tiny_test(4, 2);
            let good = dicts(8, 1);
            let mut plane = ChaosPlane::new(Cluster::new(spec), ChaosConfig::quiet(11));
            let mut ecc = EcCheck::initialize(&spec, pipelined_config(threads)).unwrap();
            ecc.save(&mut plane, &good).expect("fault-free save succeeds");

            ecc.set_fail_encode_task(Some(fail_at));
            match ecc.save(&mut plane, &dicts(8, 2)) {
                Err(EcCheckError::StageFailed { detail }) => {
                    assert!(
                        detail.contains("worker"),
                        "threads={threads} fail_at={fail_at}: {detail}"
                    );
                }
                other => panic!(
                    "threads={threads} fail_at={fail_at}: save must fail with StageFailed, \
                     got {:?}",
                    other.map(|r| r.version)
                ),
            }

            // The previous checkpoint is untouched.
            ecc.set_fail_encode_task(None);
            let (restored, report) =
                ecc.load(&mut plane).expect("previous checkpoint must survive");
            assert_eq!(report.version, 1, "threads={threads} fail_at={fail_at}");
            assert_eq!(restored, good, "threads={threads} fail_at={fail_at}");
        }
    }
}

#[test]
fn disarmed_fail_point_never_fires() {
    // A fail point beyond the task stream is a save that must succeed:
    // the counter reaches every task without hitting the trigger.
    let spec = ClusterSpec::tiny_test(4, 2);
    let mut plane = ChaosPlane::new(Cluster::new(spec), ChaosConfig::quiet(13));
    let mut ecc =
        EcCheck::initialize(&spec, pipelined_config(4).with_fail_encode_task(u64::MAX)).unwrap();
    let state = dicts(8, 7);
    ecc.save(&mut plane, &state).expect("out-of-range fail point is inert");
    let (restored, _) = ecc.load(&mut plane).unwrap();
    assert_eq!(restored, state);
}

#[test]
fn executor_written_checkpoints_uphold_the_m_fault_budget() {
    let spec = ClusterSpec::tiny_test(4, 2);
    let mut ecc = EcCheck::initialize(&spec, pipelined_config(4)).unwrap();
    let mut plane = ChaosPlane::new(Cluster::new(spec), ChaosConfig::quiet(3));
    let state = dicts(8, 5);
    let report = ecc.save(&mut plane, &state).unwrap();

    // Exactly m = 2 chunk-class faults, one crash + one corruption:
    // recovery must be bit-exact and must report the corruption.
    plane.crash_now(1);
    plane.heal(1);
    assert!(plane.corrupt_blob(3, &keys::chunk_key(report.version)));
    let (restored, load) = ecc.load(&mut plane).expect("m faults are survivable");
    assert_eq!(restored, state);
    assert_eq!(load.failed_nodes, vec![1, 3]);
    assert_eq!(load.corrupt_nodes, vec![3]);

    // A fresh save restores full tolerance; then > m faults must refuse
    // cleanly rather than decode garbage.
    let next = dicts(8, 6);
    ecc.save(&mut plane, &next).unwrap();
    for node in 0..3 {
        plane.crash_now(node);
        plane.heal(node);
    }
    match ecc.load(&mut plane) {
        Err(EcCheckError::Unrecoverable { survivors, needed, .. }) => {
            assert!(survivors < needed, "refusal must name the shortfall");
        }
        other => panic!("3 > m faults must refuse, got {other:?}"),
    }
}

#[test]
fn executor_survives_flaky_puts_or_fails_closed() {
    // In-flight put faults (drops, corruption, duplicates) during
    // pipelined saves: every save must either succeed with a loadable
    // checkpoint or fail; a later fault-free save must always heal.
    for seed in 0..6u64 {
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut ecc = EcCheck::initialize(&spec, pipelined_config(3)).unwrap();
        let chaos = ChaosConfig::quiet(seed)
            .with_drop_put(0.05)
            .with_corrupt_put(0.05)
            .with_duplicate_put(0.05);
        let mut plane = ChaosPlane::new(Cluster::new(spec), chaos);

        let mut last_good: Option<(u64, Vec<StateDict>)> = None;
        for round in 1..=4u8 {
            let state = dicts(8, round);
            if let Ok(report) = ecc.save(&mut plane, &state) {
                // Saves under put-faults may have shed ≤ m chunks; the
                // checkpoint must still load bit-exactly (or cleanly
                // refuse if chaos took more than m).
                match ecc.load(&mut plane) {
                    Ok((restored, load)) => {
                        assert_eq!(restored, state, "seed {seed} round {round}");
                        assert_eq!(load.version, report.version);
                        last_good = Some((report.version, state));
                    }
                    Err(EcCheckError::Unrecoverable { .. }) => {}
                    Err(other) => panic!("seed {seed} round {round}: unclean error {other}"),
                }
            }
        }

        // Disarm chaos; the engine must recover full health.
        plane.inner_mut(); // plane stays, faults continue — use a clean save instead
        let final_state = dicts(8, 99);
        let mut clean = ChaosPlane::new(plane.into_inner(), ChaosConfig::quiet(seed));
        let report = ecc.save(&mut clean, &final_state).expect("fault-free save heals");
        let (restored, load) = ecc.load(&mut clean).expect("healed checkpoint loads");
        assert_eq!(load.version, report.version);
        assert_eq!(restored, final_state);
        let _ = last_good;
    }
}
