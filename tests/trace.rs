//! Span-trace determinism and structure: under the simulated clock, an
//! engine run's exported Chrome Trace Event JSON is a pure function of
//! the workload, and the exporter's output always passes the structural
//! validator that mirrors what Perfetto requires to render it.

use std::sync::Arc;

use ecc_cluster::{Cluster, ClusterSpec};
use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};
use ecc_telemetry::{ManualClock, Recorder};
use ecc_trace::{json, validate_chrome_trace};
use eccheck::{EcCheck, EcCheckConfig};

fn dicts(iteration: u64) -> Vec<ecc_checkpoint::StateDict> {
    let model = ModelConfig::gpt2(64, 4, 4).with_vocab(256).with_seq_len(16);
    let par = ParallelismSpec::new(2, 2, 2).unwrap();
    let spec = StateDictSpec { iteration, ..StateDictSpec::new(model, par) };
    (0..8).map(|w| build_worker_state_dict(&spec, w).unwrap()).collect()
}

/// One save → failure → recover cycle against a manual clock advancing
/// in fixed steps, with the span tracer attached. Returns the exported
/// trace document.
fn run_once() -> String {
    let spec = ClusterSpec::tiny_test(4, 2);
    let mut cluster = Cluster::new(spec);
    let mut ecc =
        EcCheck::initialize(&spec, EcCheckConfig::paper_defaults().with_packet_size(2048)).unwrap();
    let clock = Arc::new(ManualClock::new());
    ecc.set_recorder(Recorder::with_clock(clock.clone()));
    let tracer = ecc.attach_tracer();

    let current = dicts(7);
    clock.advance_ns(1_000_000); // a simulated millisecond of training
    ecc.save(&mut cluster, &current).unwrap();
    cluster.fail_node(1);
    cluster.fail_node(2);
    cluster.replace_node(1);
    cluster.replace_node(2);
    clock.advance_ns(250_000);
    let (restored, _) = ecc.load(&mut cluster).unwrap();
    assert_eq!(restored, current);
    tracer.chrome_trace_json()
}

#[test]
fn identical_runs_export_byte_identical_traces() {
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "trace export must be deterministic under the sim clock");
}

#[test]
fn exported_trace_passes_the_validator_with_real_content() {
    let doc = run_once();
    let stats = validate_chrome_trace(&doc).expect("exporter output must validate");
    assert!(stats.spans > 0, "save/load phases must appear as spans");
    assert!(stats.flows > 0, "P2P chunk transfers must draw flow arrows");
    // Driver + coding pool + all four simulated nodes.
    assert!(stats.processes >= 6, "got {stats:?}");
    for needle in ["ecc.save", "checkpoint.pack", "save.encode", "ecc.load", "p2p.store"] {
        assert!(doc.contains(needle), "trace should mention {needle}");
    }
}

#[test]
fn sim_timing_trace_is_byte_identical_across_runs() {
    let first = ecc_bench::sim_save_trace_json();
    let second = ecc_bench::sim_save_trace_json();
    assert_eq!(first, second, "simulated timestamps leave nothing nondeterministic");
    let stats = validate_chrome_trace(&first).expect("valid trace");
    assert!(stats.spans > 0 && stats.flows > 0);
}

#[test]
fn trace_and_recorder_share_one_clock_epoch() {
    // The tracer is built on the recorder's clock (one epoch), so span
    // timestamps are directly comparable with the recorder's event log:
    // a save issued after advancing the manual clock to t=1 ms must
    // begin at exactly ts=1000 µs in the export.
    let doc = run_once();
    let root = json::parse(&doc).expect("trace parses");
    let events = root.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents");
    let save_begin_ts = events
        .iter()
        .find(|e| {
            e.get("ph").and_then(json::Json::as_str) == Some("B")
                && e.get("name").and_then(json::Json::as_str) == Some("ecc.save")
        })
        .and_then(|e| e.get("ts").and_then(json::Json::as_f64))
        .expect("an ecc.save span");
    assert_eq!(save_begin_ts, 1_000.0, "µs since the shared epoch");
}
