//! GC safety properties for the tiered, versioned checkpoint store.
//!
//! The retention policy (`keep-last-N` window plus `keep-every-Kth`
//! ladder) has a closed form: after `S` saves, tier 0 retains exactly
//! the versions in the newest `max(N, 1)` window plus every multiple
//! of `K`. The property suite pins the engine's incremental GC to that
//! closed form and proves the safety invariants behind it:
//!
//! * the newest version is never collected — `load()` always works;
//! * every retained version restores bit-exactly with the right
//!   `LoadReport.version`;
//! * every collected version is a clean `VersionGone` refusal and its
//!   blobs are actually swept from every node (GC frees memory, it
//!   does not merely hide versions);
//! * with an async drain worker attached, GC never collects a version
//!   before its tier-0 → tier-1 copy completes (drain pins), so the
//!   remote store ends up with a checksum-verified copy of *every*
//!   sealed version even when tier 0 keeps only the newest.

use std::collections::BTreeMap;

use ecc_checkpoint::{verify_checksum, DType, StateDict, Tensor, Value};
use ecc_cluster::{Cluster, ClusterSpec, DataPlane, SharedPlane};
use eccheck::store::Drainer;
use eccheck::{keys, EcCheck, EcCheckConfig, EcCheckError, SaveMode};
use proptest::prelude::*;

const NODES: usize = 4;
const GPUS: usize = 2;
const WORLD: usize = NODES * GPUS;

/// Per-round worker state. Tensor shapes depend only on the worker so
/// every version shares one packet layout; values carry the round.
fn dicts(round: u64) -> Vec<StateDict> {
    (0..WORLD)
        .map(|w| {
            let mut sd = StateDict::new();
            sd.insert("rank", Value::Int(w as i64));
            sd.insert("round", Value::Int(round as i64));
            let len = 64 + (w * 23) % 160;
            let bytes: Vec<u8> =
                (0..len).map(|i| (i as u8).wrapping_mul(17) ^ (w as u8) ^ round as u8).collect();
            let t = Tensor::from_bytes(DType::U8, &[len], bytes).expect("tensor shape valid");
            sd.insert("weights", Value::Tensor(t));
            sd
        })
        .collect()
}

fn config(keep_last: usize, keep_every: u64, mode: SaveMode) -> EcCheckConfig {
    EcCheckConfig::paper_defaults()
        .with_km(2, 2)
        .with_packet_size(256)
        .with_coding_threads(2)
        .with_remote_flush_every(0)
        .with_save_mode(mode)
        .with_retain_last(keep_last)
        .with_retain_every(keep_every)
}

/// The closed form the incremental GC must converge to.
fn expected_retained(saves: u64, keep_last: usize, keep_every: u64) -> Vec<u64> {
    let window = keep_last.max(1) as u64;
    (1..=saves)
        .filter(|&v| v + window > saves || (keep_every > 0 && v.is_multiple_of(keep_every)))
        .collect()
}

/// True if any node still holds any tier-0 blob of `version`.
fn version_present(cluster: &Cluster, version: u64) -> bool {
    (0..NODES).any(|node| {
        cluster.local_keys(node).iter().any(|key| keys::key_version(key) == Some(version))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental GC over an arbitrary save history equals the closed
    /// form, keeps everything it claims restorable, and sweeps the
    /// rest — under both save executors.
    #[test]
    fn gc_retention_matches_closed_form_and_stays_restorable(
        saves in 1u64..8,
        keep_last in 0usize..4,
        keep_every in 0u64..4,
        pipelined in any::<bool>(),
    ) {
        let mode = if pipelined { SaveMode::Pipelined } else { SaveMode::Sequential };
        let spec = ClusterSpec::tiny_test(NODES, GPUS);
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(&spec, config(keep_last, keep_every, mode))
            .expect("config valid");

        let mut saved = BTreeMap::new();
        for round in 1..=saves {
            let d = dicts(round);
            let report = ecc.save(&mut cluster, &d).expect("save");
            prop_assert_eq!(report.version, round);
            saved.insert(round, d);
        }

        let expect = expected_retained(saves, keep_last, keep_every);
        prop_assert_eq!(ecc.retained_versions(), expect.clone());
        prop_assert!(
            expect.contains(&saves),
            "the newest version must never be collected"
        );

        // Every retained version restores bit-exactly and reports its
        // own version number.
        for &v in &expect {
            let (restored, report) = ecc.load_version(&mut cluster, v).expect("retained loads");
            prop_assert_eq!(&restored, &saved[&v]);
            prop_assert_eq!(report.version, v);
        }

        // Every collected version refuses cleanly and is truly swept.
        for v in 1..=saves {
            if expect.contains(&v) {
                continue;
            }
            match ecc.load_version(&mut cluster, v) {
                Err(EcCheckError::VersionGone { version }) => prop_assert_eq!(version, v),
                other => prop_assert!(false, "collected v{} must be VersionGone, got {:?}", v, other),
            }
            prop_assert!(!version_present(&cluster, v), "v{} blobs must be swept", v);
        }

        // And the default entry point still lands on the newest.
        let (newest, report) = ecc.load(&mut cluster).expect("newest loads");
        prop_assert_eq!(&newest, &saved[&saves]);
        prop_assert_eq!(report.version, saves);
    }
}

#[test]
fn gc_waits_for_the_drain_worker() {
    // The hostile schedule for the GC-vs-drain race: tier 0 keeps only
    // the newest version (every save immediately makes its predecessor
    // collectible) while a depth-1 drain queue forces saves to block on
    // backpressure. If GC ever collected a version before its drain
    // finished, the tier-1 copy would come up short below.
    const SAVES: u64 = 6;
    let spec = ClusterSpec::tiny_test(NODES, GPUS);
    let shared = SharedPlane::new(Cluster::new(spec));
    let mut ecc =
        EcCheck::initialize(&spec, config(1, 0, SaveMode::Pipelined)).expect("config valid");
    let drainer = Drainer::spawn(shared.clone(), 1, ecc.recorder().clone());
    ecc.set_drainer(drainer.handle());

    let mut plane = shared.clone();
    let mut saved = BTreeMap::new();
    for round in 1..=SAVES {
        let d = dicts(round);
        ecc.save(&mut plane, &d).expect("save");
        saved.insert(round, d);
    }
    drainer.handle().flush();

    // Every sealed version must have a complete, checksum-verified
    // tier-1 copy — including the ones GC evicted from tier 0.
    for v in 1..=SAVES {
        assert!(
            shared.get_remote(&keys::remote_manifest_key(v)).is_some(),
            "v{v} manifest missing from tier 1"
        );
        for node in 0..NODES {
            let chunk = shared
                .get_remote(&keys::remote_chunk_key(v, node))
                .unwrap_or_else(|| panic!("v{v} chunk {node} missing from tier 1"));
            let crc = shared
                .get_remote(&keys::remote_chunk_crc_key(v, node))
                .unwrap_or_else(|| panic!("v{v} chunk {node} crc missing from tier 1"));
            assert!(verify_checksum(&chunk, &crc), "v{v} chunk {node} fails its checksum");
        }
        for worker in 0..WORLD {
            assert!(
                shared.get_remote(&keys::remote_header_key(v, worker)).is_some(),
                "v{v} header {worker} missing from tier 1"
            );
        }
    }

    // Tier 0 kept only the newest, and it still restores.
    assert_eq!(ecc.retained_versions(), vec![SAVES]);
    let (restored, report) = ecc.load(&mut plane).expect("newest loads");
    assert_eq!(restored, saved[&SAVES]);
    assert_eq!(report.version, SAVES);

    drainer.shutdown();
}
