//! Differential battery for GF-linear delta saves.
//!
//! `EcCheck::save_delta` patches the sealed checkpoint in place: each
//! dirty worker's region is XORed against the stored chunk and the
//! parity is patched with the encoded delta, exploiting the code's
//! GF(2)-linearity (`parity' = parity ⊕ encode(old ⊕ new)`). The
//! linearity argument is only as good as its bits, so these tests hold
//! the delta path to the strongest possible oracle: after a delta save,
//! **every node must hold byte-identical blobs to a full save of the
//! mutated state** — same chunks, same checksum frames, same headers,
//! same manifest — for arbitrary (k, m) shapes, arbitrary dirty sets,
//! both save executors, and every available GF kernel.

use ecc_checkpoint::{DType, StateDict, Tensor, Value};
use ecc_cluster::{Cluster, ClusterSpec};
use ecc_gf::kernel::{available_kernels, force_kernel};
use eccheck::{EcCheck, EcCheckConfig, SaveMode, WorkerDirtySet};
use proptest::prelude::*;

/// (k, m, gpus_per_node) shapes; world = (k + m) * gpus.
const SHAPES: [(usize, usize, usize); 4] = [(2, 2, 1), (2, 2, 2), (4, 2, 2), (3, 3, 1)];

/// One worker's state: tensor shapes depend only on the worker (delta
/// saves require stable layouts), values on `salt`.
fn worker_dict(w: usize, salt: u8) -> StateDict {
    let mut sd = StateDict::new();
    sd.insert("rank", Value::Int(w as i64));
    sd.insert("salt", Value::Int(salt as i64));
    let len = 40 + (w * 37) % 200;
    let bytes: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(29) ^ (w as u8) ^ salt).collect();
    let t = Tensor::from_bytes(DType::U8, &[len], bytes).expect("tensor shape valid");
    sd.insert("weights", Value::Tensor(t));
    sd
}

/// Every blob on every node, in canonical order — the complete
/// observable result of a save sequence on the local plane.
fn local_fingerprint(cluster: &Cluster, nodes: usize) -> Vec<(usize, String, Vec<u8>)> {
    let mut out = Vec::new();
    for node in 0..nodes {
        for key in cluster.local_keys(node) {
            let bytes = cluster.get_local(node, &key).expect("listed key readable");
            out.push((node, key, bytes));
        }
    }
    out
}

fn base_config(k: usize, m: usize) -> EcCheckConfig {
    EcCheckConfig::paper_defaults().with_km(k, m).with_packet_size(256).with_remote_flush_every(0)
}

/// The differential core: full save of `salt` state, delta-save the
/// `dirty` workers to `salt ^ 0x5A` state, and demand byte-identical
/// plane state to a fresh full save of the mutated state — then prove
/// the patched checkpoint still survives `m` failures.
fn delta_vs_full(
    (k, m, gpus): (usize, usize, usize),
    mode: SaveMode,
    threads: usize,
    buffer: usize,
    dirty: &[usize],
    salt: u8,
) {
    let nodes = k + m;
    let spec = ClusterSpec::tiny_test(nodes, gpus);
    let world = spec.world_size();
    let cfg = base_config(k, m)
        .with_save_mode(mode)
        .with_coding_threads(threads)
        .with_pipeline_buffer(buffer);

    // Engine A: full save of the base state, then the delta patch.
    let mut cluster_a = Cluster::new(spec);
    let mut ecc_a = EcCheck::initialize(&spec, cfg).expect("config valid for shape");
    let base: Vec<StateDict> = (0..world).map(|w| worker_dict(w, salt)).collect();
    ecc_a.save(&mut cluster_a, &base).expect("base save");
    let news: Vec<StateDict> = dirty.iter().map(|&w| worker_dict(w, salt ^ 0x5A)).collect();
    let sets: Vec<WorkerDirtySet<'_>> =
        dirty.iter().zip(&news).map(|(&worker, state)| WorkerDirtySet { worker, state }).collect();
    let report = ecc_a.save_delta(&mut cluster_a, &sets).expect("delta save");
    assert_eq!(report.version, 1);
    assert!(report.changed_bytes > 0, "distinct salts must change bytes");
    assert_eq!(
        report.traffic_bytes,
        report.region_bytes * (1 + m as u64),
        "delta traffic accounting: region moves once per data node + once per parity node"
    );

    // Engine B (oracle): a fresh full save of the mutated state.
    let mut want = base;
    for (&w, sd) in dirty.iter().zip(&news) {
        want[w] = sd.clone();
    }
    let mut cluster_b = Cluster::new(spec);
    let mut ecc_b = EcCheck::initialize(&spec, cfg).expect("config valid for shape");
    ecc_b.save(&mut cluster_b, &want).expect("oracle save");

    assert_eq!(
        local_fingerprint(&cluster_a, nodes),
        local_fingerprint(&cluster_b, nodes),
        "delta-patched plane must be byte-identical to a full save \
         (k={k} m={m} gpus={gpus} mode={mode:?} dirty={dirty:?})"
    );

    // The patched checkpoint must still tolerate m failures.
    for node in 0..m {
        cluster_a.fail_node(node);
        cluster_a.replace_node(node);
    }
    let (restored, _) = ecc_a.load(&mut cluster_a).expect("recovery load");
    assert_eq!(restored, want, "restore after delta + {m} failures");
}

#[test]
fn single_and_multi_worker_deltas_equal_full_saves() {
    // Deterministic smoke across shapes and both executors before the
    // randomized sweep: one dirty worker, and one dirty worker per
    // data group.
    for &(k, m, gpus) in &SHAPES {
        let world = (k + m) * gpus;
        let group = world / k;
        let spread: Vec<usize> = (0..k).map(|j| j * group + (j % group)).collect();
        for mode in [SaveMode::Sequential, SaveMode::Pipelined] {
            delta_vs_full((k, m, gpus), mode, 2, 96, &[world - 1], 7);
            delta_vs_full((k, m, gpus), mode, 2, 96, &spread, 7);
        }
    }
}

#[test]
fn delta_modes_store_identical_blobs() {
    // The sequential and pipelined delta executors must drive the very
    // same plane operations — not merely equivalent final bytes.
    let spec = ClusterSpec::tiny_test(4, 2);
    let mut fingerprints = Vec::new();
    for mode in [SaveMode::Sequential, SaveMode::Pipelined] {
        let cfg =
            base_config(2, 2).with_save_mode(mode).with_coding_threads(3).with_pipeline_buffer(128);
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(&spec, cfg).expect("config valid");
        let base: Vec<StateDict> = (0..8).map(|w| worker_dict(w, 3)).collect();
        ecc.save(&mut cluster, &base).expect("base save");
        let new1 = worker_dict(1, 99);
        let new6 = worker_dict(6, 99);
        let sets = [
            WorkerDirtySet { worker: 1, state: &new1 },
            WorkerDirtySet { worker: 6, state: &new6 },
        ];
        ecc.save_delta(&mut cluster, &sets).expect("delta save");
        fingerprints.push(local_fingerprint(&cluster, 4));
    }
    assert_eq!(fingerprints[0], fingerprints[1]);
}

#[test]
fn delta_is_bit_identical_under_every_kernel() {
    // Kernel forcing mutates process-global dispatch state, so the
    // whole sweep lives in one sequential loop (see kernel_equiv_prop).
    let before = ecc_gf::kernel::active_kernel().name();
    for kernel in available_kernels() {
        force_kernel(kernel.name()).unwrap();
        for mode in [SaveMode::Sequential, SaveMode::Pipelined] {
            delta_vs_full((2, 2, 2), mode, 2, 128, &[1, 6], 9);
        }
    }
    force_kernel(before).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential property over arbitrary shapes, dirty-worker
    /// subsets, executors, thread counts and stripe buffers.
    #[test]
    fn delta_equals_full_save_for_arbitrary_dirty_sets(
        shape in 0usize..SHAPES.len(),
        mask in 1u64..4096,
        salt in 0u8..200,
        pipelined in any::<bool>(),
        threads in 1usize..4,
        buffer in 32usize..2048,
    ) {
        let (k, m, gpus) = SHAPES[shape];
        let world = (k + m) * gpus;
        let mut dirty: Vec<usize> = (0..world).filter(|&w| mask >> w & 1 == 1).collect();
        if dirty.is_empty() {
            dirty.push(mask as usize % world);
        }
        let mode = if pipelined { SaveMode::Pipelined } else { SaveMode::Sequential };
        delta_vs_full((k, m, gpus), mode, threads, buffer, &dirty, salt);
    }
}
