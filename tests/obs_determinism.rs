//! Exporter non-interference: attaching the live observability plane
//! (and scraping it, hard) must leave the engine's telemetry snapshot
//! and span trace byte-identical to a run without it. The exporter is a
//! read-only consumer of `Recorder::snapshot()` — these tests hold it
//! to that contract end to end through `EcCheck::serve_obs`.

use ecc_cluster::{Cluster, ClusterSpec};
use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};
use ecc_obs::{http_get, parse_exposition};
use ecc_telemetry::Recorder;
use eccheck::{EcCheck, EcCheckConfig};

fn dicts(iteration: u64) -> Vec<ecc_checkpoint::StateDict> {
    let model = ModelConfig::gpt2(64, 4, 4).with_vocab(256).with_seq_len(16);
    let par = ParallelismSpec::new(2, 2, 2).unwrap();
    let spec = StateDictSpec { iteration, ..StateDictSpec::new(model, par) };
    (0..8).map(|w| build_worker_state_dict(&spec, w).unwrap()).collect()
}

/// The standard save → failure → recover workload on a manual clock.
/// With `scrapes > 0`, serves the observability plane and scrapes
/// `/metrics` + `/health` + `/events` that many times mid-run. Returns
/// the snapshot JSON and the Chrome trace JSON.
fn run_workload(scrapes: usize) -> (String, String) {
    let spec = ClusterSpec::tiny_test(4, 2);
    let mut cluster = Cluster::new(spec);
    let mut ecc =
        EcCheck::initialize(&spec, EcCheckConfig::paper_defaults().with_packet_size(2048)).unwrap();
    let (recorder, clock) = Recorder::with_manual_clock();
    ecc.set_recorder(recorder);
    let tracer = ecc.attach_tracer();

    let server = if scrapes > 0 {
        Some(ecc.serve_obs("127.0.0.1:0").expect("ephemeral bind"))
    } else {
        None
    };
    let addr = server.as_ref().map(|s| s.local_addr().to_string());

    let current = dicts(7);
    for round in 0..3u64 {
        clock.advance_ns(1_000_000);
        ecc.save(&mut cluster, &current).unwrap();
        if let Some(addr) = &addr {
            for _ in 0..scrapes {
                let body = http_get(addr, "/metrics").expect("mid-run scrape");
                parse_exposition(&body).expect("valid exposition mid-run");
                http_get(addr, "/health").expect("health probe");
                http_get(addr, "/events").expect("events probe");
            }
        }
        if round == 1 {
            cluster.fail_node(1);
            cluster.fail_node(2);
            cluster.replace_node(1);
            cluster.replace_node(2);
            clock.advance_ns(250_000);
            let (restored, _) = ecc.load(&mut cluster).unwrap();
            assert_eq!(restored, current);
        }
    }

    let out = (ecc.recorder().snapshot().to_json(), tracer.chrome_trace_json());
    if let Some(server) = server {
        server.shutdown();
    }
    out
}

#[test]
fn snapshots_and_traces_are_byte_identical_with_exporter_attached() {
    let (plain_snap, plain_trace) = run_workload(0);
    let (obs_snap, obs_trace) = run_workload(3);
    assert_eq!(
        plain_snap, obs_snap,
        "attaching and scraping the exporter must not perturb the telemetry snapshot"
    );
    assert_eq!(
        plain_trace, obs_trace,
        "attaching and scraping the exporter must not perturb the span trace"
    );
    // And the run measured real work — not two empty shells agreeing.
    for key in ["ecc.save.calls", "ecc.load.calls", "ecc.save.ns"] {
        assert!(plain_snap.contains(key), "snapshot JSON must include {key}");
    }
}

#[test]
fn live_scrape_reports_the_engines_progress() {
    let spec = ClusterSpec::tiny_test(4, 2);
    let mut cluster = Cluster::new(spec);
    let mut ecc =
        EcCheck::initialize(&spec, EcCheckConfig::paper_defaults().with_packet_size(2048)).unwrap();
    let server = ecc.serve_obs("127.0.0.1:0").expect("ephemeral bind");
    let addr = server.local_addr().to_string();

    let current = dicts(11);
    ecc.save(&mut cluster, &current).unwrap();
    ecc.save(&mut cluster, &current).unwrap();

    let scrape = parse_exposition(&http_get(&addr, "/metrics").expect("scrape")).expect("valid");
    assert_eq!(
        scrape.value("ecc_save_calls_total"),
        Some(&ecc_obs::MetricValue::Int(2)),
        "scrape must see both saves"
    );
    // Saves heartbeat every node: all four report alive.
    for node in 0..4 {
        assert_eq!(
            scrape.labeled("ecc_node_health", &[("node", &node.to_string())]).map(|s| &s.value),
            Some(&ecc_obs::MetricValue::Int(2)),
            "node {node} must be alive right after a save"
        );
    }
    // The engine's default SLOs ride along, burn rates included.
    assert!(
        scrape.labeled("ecc_slo_burn_rate", &[("slo", "traffic")]).is_some(),
        "traffic SLO must be exported"
    );
    server.shutdown();
}
