//! Chaos testing: random failure bursts against the real engine.
//!
//! For every randomly sampled failure burst, ECCheck must recover
//! bit-exactly when at most `m` nodes failed, and must *refuse* (rather
//! than return wrong data) when more did — across repeated rounds of
//! training, checkpointing, failure and recovery.

use std::collections::BTreeMap;

use ecc_chaos::{run_campaign, CampaignConfig, ChaosConfig, ChaosPlane};
use ecc_cluster::{Cluster, ClusterSpec, FailureModel};
use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};
use eccheck::{EcCheck, EcCheckConfig, EcCheckError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asserts every counter in `now` is at least its value in `before`
/// (counters are monotonic: telemetry never un-counts work).
fn assert_counters_monotonic(before: &BTreeMap<String, u64>, now: &BTreeMap<String, u64>) {
    for (name, old) in before {
        let new = now.get(name).copied().unwrap_or(0);
        assert!(new >= *old, "counter {name} decreased: {old} -> {new}");
    }
}

fn dicts(iteration: u64) -> Vec<ecc_checkpoint::StateDict> {
    let model = ModelConfig::gpt2(64, 4, 4).with_vocab(256).with_seq_len(16);
    let par = ParallelismSpec::new(2, 2, 2).unwrap();
    let spec = StateDictSpec { iteration, ..StateDictSpec::new(model, par) };
    (0..8).map(|w| build_worker_state_dict(&spec, w).unwrap()).collect()
}

#[test]
fn random_failure_bursts_never_corrupt_state() {
    let spec = ClusterSpec::tiny_test(4, 2);
    let failure = FailureModel::new(0.35).unwrap();
    let mut outcomes = (0usize, 0usize); // (recovered, refused)

    for trial in 0..20u64 {
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(
            &spec,
            EcCheckConfig::paper_defaults().with_packet_size(2048).with_remote_flush_every(0),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(trial);
        let mut current = dicts(0);
        ecc.save(&mut cluster, &current).unwrap();
        let mut bursts_injected = 0u64;
        let mut prev_counters = ecc.recorder().snapshot().counters;

        for round in 1..=4u64 {
            // A failure burst strikes.
            let scenario = failure.sample(4, trial * 1000 + round);
            for &n in scenario.failed() {
                cluster.fail_node(n);
                cluster.replace_node(n);
            }
            bursts_injected += 1;
            match ecc.load(&mut cluster) {
                Ok((restored, report)) => {
                    assert!(
                        scenario.count() <= 2,
                        "trial {trial} round {round}: recovered from {} failures (> m)",
                        scenario.count()
                    );
                    assert_eq!(restored, current, "trial {trial} round {round}");
                    assert_eq!(report.failed_nodes.len(), scenario.count());
                    outcomes.0 += 1;
                }
                Err(EcCheckError::Unrecoverable { .. }) => {
                    assert!(
                        scenario.count() > 2,
                        "trial {trial} round {round}: refused with only {} failures",
                        scenario.count()
                    );
                    outcomes.1 += 1;
                    // A refused recovery still counts as an attempt.
                    assert_eq!(
                        ecc.recorder().snapshot().counter("ecc.load.calls"),
                        bursts_injected
                    );
                    break; // this training run is lost without remote
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
            // Telemetry invariants: every injected burst triggered exactly
            // one recovery attempt, and no counter ever ran backwards.
            let snap = ecc.recorder().snapshot();
            assert_eq!(
                snap.counter("ecc.load.calls"),
                bursts_injected,
                "trial {trial} round {round}: recovery attempts != bursts injected"
            );
            assert_counters_monotonic(&prev_counters, &snap.counters);
            prev_counters = snap.counters;
            // Training continues; sometimes save a new version.
            if rng.gen_bool(0.7) {
                current = dicts(round * 100);
                ecc.save(&mut cluster, &current).unwrap();
            }
        }
    }
    // With p = 0.35 both outcomes must actually occur.
    assert!(outcomes.0 > 5, "too few recoveries: {outcomes:?}");
    assert!(outcomes.1 > 1, "too few refusals: {outcomes:?}");
}

#[test]
fn crash_between_gather_and_restore_is_survivable() {
    let spec = ClusterSpec::tiny_test(4, 2);
    let mut plane = ChaosPlane::new(Cluster::new(spec), ChaosConfig::quiet(7));
    let mut ecc = EcCheck::initialize(
        &spec,
        EcCheckConfig::paper_defaults().with_packet_size(2048).with_remote_flush_every(0),
    )
    .unwrap();
    let current = dicts(1);
    ecc.save(&mut plane, &current).unwrap();

    // The gather phase reads two blobs per node plus two per worker
    // header (8 + 16 ops on this testbed); 30 storage ops into the
    // load, the engine has gathered everything and is re-seeding
    // node 0 — the fault-tolerant-restore window.
    plane.schedule_crash_at_op(0, plane.op() + 30);
    let (restored, report) = ecc.load(&mut plane).unwrap();
    assert_eq!(restored, current, "mid-load crash corrupted the restored state");
    assert_eq!(report.restore_skipped, vec![0]);

    // The node comes back empty (volatile memory), like a replacement
    // node; the next load treats its missing chunk as an erasure and
    // re-seeds it.
    plane.heal(0);
    let (again, report2) = ecc.load(&mut plane).unwrap();
    assert_eq!(again, current);
    assert!(report2.failed_nodes.contains(&0));
    assert!(report2.restore_skipped.is_empty());
}

#[test]
fn transient_read_outages_are_absorbed_by_bounded_retries() {
    let spec = ClusterSpec::tiny_test(4, 2);
    // Every blob's first read fails once; the engine's bounded retry
    // budget (2) must absorb the outage without declaring any node
    // failed.
    let mut plane =
        ChaosPlane::new(Cluster::new(spec), ChaosConfig::quiet(3).with_transient_get(1.0, 1));
    let mut ecc = EcCheck::initialize(
        &spec,
        EcCheckConfig::paper_defaults()
            .with_packet_size(2048)
            .with_remote_flush_every(0)
            .with_fetch_retries(2),
    )
    .unwrap();
    plane.set_recorder(ecc.recorder().clone());
    let current = dicts(2);
    ecc.save(&mut plane, &current).unwrap();

    let (restored, report) = ecc.load(&mut plane).unwrap();
    assert_eq!(restored, current);
    assert!(report.failed_nodes.is_empty(), "transients misread as failures");
    let snap = ecc.recorder().snapshot();
    assert!(snap.counter("ecc.load.fetch_retries") > 0, "no retry was ever needed?");
    assert!(snap.counter("chaos.fault.transient_get") > 0);
}

#[test]
fn seeded_chaos_campaigns_uphold_recovery_contract() {
    let cfg = CampaignConfig::standard();
    let (mut recovered, mut refused) = (0usize, 0usize);
    for seed in 0..6 {
        let report = run_campaign(&cfg, seed);
        assert!(report.passed(), "seed {seed} violations: {:?}", report.violations);
        recovered += report.recovered();
        refused += report.refused();
    }
    // The matrix must exercise both halves of the contract.
    assert!(recovered > 0, "no campaign round ever recovered");
    assert!(refused > 0, "no campaign round ever refused");
}

#[test]
fn chaos_with_remote_flush_always_recovers() {
    let spec = ClusterSpec::tiny_test(4, 2);
    let failure = FailureModel::new(0.5).unwrap();
    for trial in 0..8u64 {
        let mut cluster = Cluster::new(spec);
        let mut ecc = EcCheck::initialize(
            &spec,
            EcCheckConfig::paper_defaults().with_packet_size(2048).with_remote_flush_every(1),
        )
        .unwrap();
        let current = dicts(trial);
        ecc.save(&mut cluster, &current).unwrap();
        let scenario = failure.sample(4, trial + 99);
        for &n in scenario.failed() {
            cluster.fail_node(n);
            cluster.replace_node(n);
        }
        // With step 4's remote copy, even total cluster loss recovers.
        let (restored, _) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, current, "trial {trial}");
    }
}
