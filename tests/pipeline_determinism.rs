//! Determinism of the pipelined save executor's observability.
//!
//! The executor runs on real worker threads with work-stealing deques,
//! so nothing about thread scheduling may leak into the measurements:
//! under a manual clock, a run's telemetry snapshot *and* exported
//! Chrome trace must be byte-identical across runs and across
//! worker-thread counts (counters count work, not threads; encode spans
//! are recorded per task, re-emitted by the driver in task order on a
//! single thread-count-independent track). A steal storm — many tiny
//! stripes, far more workers than stripes — must lose and duplicate
//! nothing.

use std::sync::Arc;

use ecc_cluster::{Cluster, ClusterSpec};
use ecc_telemetry::{ManualClock, Recorder};
use ecc_trace::validate_chrome_trace;
use eccheck::{EcCheck, EcCheckConfig, SaveMode};

fn dicts(world: usize) -> Vec<ecc_checkpoint::StateDict> {
    use ecc_checkpoint::{StateDict, Value};
    (0..world)
        .map(|w| {
            let mut sd = StateDict::new();
            sd.insert("rank", Value::Int(w as i64));
            sd.insert("payload", Value::Bytes(vec![w as u8 ^ 0x3C; 96 + (w * 29) % 180]));
            sd
        })
        .collect()
}

/// Two saves, a failure burst and a recovery under a manual clock;
/// returns (telemetry snapshot JSON, Chrome trace JSON).
fn run_once(threads: usize) -> (String, String) {
    let spec = ClusterSpec::tiny_test(4, 2);
    let mut cluster = Cluster::new(spec);
    let cfg = EcCheckConfig::paper_defaults()
        .with_packet_size(1024)
        .with_save_mode(SaveMode::Pipelined)
        .with_coding_threads(threads)
        .with_pipeline_buffer(128)
        .with_pipeline_depth(3);
    let mut ecc = EcCheck::initialize(&spec, cfg).unwrap();
    let clock = Arc::new(ManualClock::new());
    ecc.set_recorder(Recorder::with_clock(clock.clone()));
    let tracer = ecc.attach_tracer();

    let current = dicts(8);
    clock.advance_ns(1_000_000);
    ecc.save(&mut cluster, &current).unwrap();
    clock.advance_ns(1_000_000);
    ecc.save(&mut cluster, &current).unwrap();
    cluster.fail_node(0);
    cluster.fail_node(3);
    cluster.replace_node(0);
    cluster.replace_node(3);
    clock.advance_ns(250_000);
    let (restored, _) = ecc.load(&mut cluster).unwrap();
    assert_eq!(restored, current);
    (ecc.recorder().snapshot().to_json(), tracer.chrome_trace_json())
}

#[test]
fn snapshot_and_trace_are_byte_identical_across_runs_at_every_thread_count() {
    for threads in [1usize, 2, 4, 8] {
        let (snap_a, trace_a) = run_once(threads);
        let (snap_b, trace_b) = run_once(threads);
        assert_eq!(snap_a, snap_b, "telemetry must be run-deterministic at threads={threads}");
        assert_eq!(trace_a, trace_b, "trace must be run-deterministic at threads={threads}");
        let stats = validate_chrome_trace(&trace_a).expect("exporter output must validate");
        assert!(stats.spans > 0 && stats.flows > 0, "threads={threads}: {stats:?}");
    }
}

#[test]
fn snapshot_and_trace_are_byte_identical_across_stealing_thread_counts() {
    // Work-stealing moves tasks between workers nondeterministically,
    // but the observability contract is stronger than run-determinism:
    // the deferred, task-ordered span re-emission on a single `encode`
    // track makes the whole trace identical whether 1 or 8 workers ran
    // the deques (steal counts live in `SaveReport::pipeline` only).
    let (snap_one, trace_one) = run_once(1);
    for threads in [2usize, 4, 8] {
        let (snap, trace) = run_once(threads);
        assert_eq!(snap, snap_one, "telemetry diverged between 1 and {threads} threads");
        assert_eq!(trace, trace_one, "trace diverged between 1 and {threads} threads");
    }
}

#[test]
fn steal_storm_loses_and_duplicates_nothing() {
    // Many tiny stripes with threads >> stripes: every worker races the
    // others' deques dry. A lost task would wedge the reducer (k
    // contributions per stripe never arrive); a double-executed Contrib
    // would XOR a stripe into its accumulator twice and cancel it,
    // corrupting parity — so a bit-exact reload proves exactly-once
    // execution, and the stats must agree with the 1-thread run.
    let run = |threads: usize| {
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut cluster = Cluster::new(spec);
        let cfg = EcCheckConfig::paper_defaults()
            .with_packet_size(1024)
            .with_save_mode(SaveMode::Pipelined)
            .with_coding_threads(threads)
            .with_pipeline_buffer(64)
            .with_pipeline_depth(2);
        let mut ecc = EcCheck::initialize(&spec, cfg).unwrap();
        let clock = Arc::new(ManualClock::new());
        ecc.set_recorder(Recorder::with_clock(clock.clone()));
        let current = dicts(8);
        let report = ecc.save(&mut cluster, &current).unwrap();
        let (restored, _) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, current, "steal storm corrupted the checkpoint at {threads} threads");
        let stats = report.pipeline.expect("pipelined saves carry stage stats");
        (stats, ecc.recorder().snapshot().to_json())
    };
    let (base, snap_base) = run(1);
    assert!(base.stripes >= 4, "shape must produce a real stripe stream, got {}", base.stripes);
    assert_eq!(base.encode_steals, 0, "a single worker has nobody to steal from");
    for threads in [4usize, 16, 64] {
        let (stats, snap) = run(threads);
        assert_eq!(stats.stripes, base.stripes, "stripe count drifted at {threads} threads");
        assert_eq!(
            stats.encode_tasks, base.encode_tasks,
            "task count drifted at {threads} threads"
        );
        assert_eq!(stats.stripe_rows, base.stripe_rows);
        assert_eq!(stats.encode_workers, threads);
        assert_eq!(snap, snap_base, "telemetry drifted at {threads} threads");
    }
}

#[test]
fn telemetry_snapshot_does_not_depend_on_the_thread_count() {
    // Counters count stripes, pieces and bytes — functions of the save's
    // geometry, never of how many workers happened to execute them.
    // Scheduling-dependent values (busy ns, ring/window waits) live in
    // `SaveReport::pipeline`, not in the recorder.
    let (snap_one, _) = run_once(1);
    let (snap_eight, _) = run_once(8);
    assert_eq!(snap_one, snap_eight, "thread count leaked into telemetry");
    for key in [
        "ecc.pipeline.stripes",
        "ecc.pipeline.encode_tasks",
        "ecc.pipeline.crc_pieces",
        "erasure.encode.bytes",
        "ecc.save.pipeline_ns",
    ] {
        assert!(snap_one.contains(key), "snapshot JSON must include {key}");
    }
}

#[test]
fn per_save_stage_accounting_is_work_deterministic() {
    // The deterministic halves of `SaveReport::pipeline` must agree
    // between runs and thread counts; only busy/wait values may differ.
    let report = |threads: usize| {
        let spec = ClusterSpec::tiny_test(4, 2);
        let mut cluster = Cluster::new(spec);
        let cfg = EcCheckConfig::paper_defaults()
            .with_packet_size(1024)
            .with_coding_threads(threads)
            .with_pipeline_buffer(128);
        let mut ecc = EcCheck::initialize(&spec, cfg).unwrap();
        ecc.save(&mut cluster, &dicts(8)).unwrap()
    };
    let one = report(1).pipeline.expect("pipelined saves carry stage stats");
    let eight = report(8).pipeline.expect("pipelined saves carry stage stats");
    assert_eq!(one.stripes, eight.stripes);
    assert_eq!(one.stripe_rows, eight.stripe_rows);
    assert_eq!(one.buffer_bytes, eight.buffer_bytes);
    assert_eq!(one.encode_tasks, eight.encode_tasks);
    assert_eq!(one.local_reduce_targets, eight.local_reduce_targets);
    assert_eq!((one.encode_workers, eight.encode_workers), (1, 8));
    for occ in [one.encode_occupancy(), one.reduce_occupancy(), one.transfer_occupancy()] {
        assert!((0.0..=1.0).contains(&occ), "occupancy out of range: {occ}");
    }
}
