//! End-to-end integration: the full ECCheck stack on a paper-testbed-
//! shaped cluster (4 nodes × 4 GPUs) with Megatron-style shards from
//! every Table I model family.

use ecc_cluster::{Cluster, ClusterSpec};
use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};
use eccheck::{EcCheck, EcCheckConfig, RecoveryWorkflow};

fn tiny_model(family: &str) -> ModelConfig {
    let base = match family {
        "gpt2" => ModelConfig::gpt2(64, 4, 8),
        "bert" => ModelConfig::bert(64, 4, 8),
        "t5" => ModelConfig::t5(64, 4, 8),
        other => panic!("unknown family {other}"),
    };
    base.with_vocab(512).with_seq_len(32)
}

fn paper_shaped_dicts(family: &str, iteration: u64) -> Vec<ecc_checkpoint::StateDict> {
    // TP=4 within nodes, PP=4 across nodes: the paper's hybrid setup.
    let par = ParallelismSpec::new(4, 4, 1).unwrap();
    let spec = StateDictSpec { iteration, ..StateDictSpec::new(tiny_model(family), par) };
    (0..16).map(|w| build_worker_state_dict(&spec, w).unwrap()).collect()
}

fn engine(spec: &ClusterSpec) -> EcCheck {
    EcCheck::initialize(
        spec,
        EcCheckConfig::paper_defaults().with_packet_size(4096).with_coding_threads(4),
    )
    .unwrap()
}

#[test]
fn all_model_families_round_trip_through_failures() {
    for family in ["gpt2", "bert", "t5"] {
        let spec = ClusterSpec::tiny_test(4, 4);
        let mut cluster = Cluster::new(spec);
        let mut ecc = engine(&spec);
        let dicts = paper_shaped_dicts(family, 100);
        ecc.save(&mut cluster, &dicts).unwrap();
        cluster.fail_node(0);
        cluster.fail_node(2); // both data nodes die
        cluster.replace_node(0);
        cluster.replace_node(2);
        let (restored, report) = ecc.load(&mut cluster).unwrap();
        assert_eq!(restored, dicts, "family {family}");
        assert_eq!(report.workflow, RecoveryWorkflow::Decode);
    }
}

#[test]
fn training_loop_with_periodic_checkpoints_and_mid_run_failure() {
    let spec = ClusterSpec::tiny_test(4, 4);
    let mut cluster = Cluster::new(spec);
    let mut ecc = engine(&spec);

    // "Train" for 5 checkpoint cycles, state evolving each time.
    let mut latest = None;
    let mut expected_traffic = 0u64;
    for step in 1..=5u64 {
        let dicts = paper_shaped_dicts("gpt2", step * 50);
        let report = ecc.save(&mut cluster, &dicts).unwrap();
        // The paper's traffic bound: every save moves exactly m·s·W bytes
        // (m parity packets of size s for each of the W data packets).
        let m = 2u64; // paper_defaults: k = m = 2
        let w_packets = (report.packets_per_worker * 16) as u64;
        assert_eq!(report.traffic.total(), m * report.packet_size as u64 * w_packets);
        expected_traffic += report.traffic.total();
        assert_eq!(
            ecc.recorder().snapshot().counter("ecc.save.traffic_bytes"),
            expected_traffic,
            "telemetry must account every byte of checkpoint traffic"
        );
        latest = Some(dicts);
    }

    // Failure strikes; recovery must return the *latest* checkpoint.
    cluster.fail_node(1);
    cluster.fail_node(2);
    cluster.replace_node(1);
    cluster.replace_node(2);
    let (restored, report) = ecc.load(&mut cluster).unwrap();
    assert_eq!(report.version, 5);
    assert_eq!(restored, latest.unwrap());

    // Training continues after recovery: further saves and loads work.
    let next = paper_shaped_dicts("gpt2", 300);
    ecc.save(&mut cluster, &next).unwrap();
    let (after, _) = ecc.load(&mut cluster).unwrap();
    assert_eq!(after, next);

    // Telemetry tallies the whole history: 6 saves, 2 recoveries, and
    // every restored byte accounted for.
    let snap = ecc.recorder().snapshot();
    assert_eq!(snap.counter("ecc.save.calls"), 6);
    assert_eq!(snap.counter("ecc.load.calls"), 2);
    let payload: u64 = next.iter().map(|d| d.tensor_bytes() as u64).sum();
    assert!(snap.counter("ecc.load.restored_bytes") >= payload);
    assert!(snap.counter("erasure.encode.bytes") > 0);
}

#[test]
fn sequential_failures_across_checkpoints() {
    // Failure, recovery, new checkpoint, different failure — the fault
    // tolerance capacity must be fully restored between events.
    let spec = ClusterSpec::tiny_test(4, 4);
    let mut cluster = Cluster::new(spec);
    let mut ecc = engine(&spec);
    let v1 = paper_shaped_dicts("gpt2", 1);
    ecc.save(&mut cluster, &v1).unwrap();

    for (round, (a, b)) in [(0usize, 1usize), (2, 3), (0, 2), (1, 3)].iter().enumerate() {
        cluster.fail_node(*a);
        cluster.fail_node(*b);
        cluster.replace_node(*a);
        cluster.replace_node(*b);
        let (restored, _) = ecc.load(&mut cluster).unwrap();
        let expected = paper_shaped_dicts("gpt2", round as u64 + 1);
        assert_eq!(restored, expected, "round {round}");
        // Save the next "training" state before the next failure.
        let next = paper_shaped_dicts("gpt2", round as u64 + 2);
        ecc.save(&mut cluster, &next).unwrap();
    }
}

#[test]
fn catastrophic_failure_recovers_from_remote_flush() {
    let spec = ClusterSpec::tiny_test(4, 4);
    let mut cluster = Cluster::new(spec);
    let mut ecc = EcCheck::initialize(
        &spec,
        EcCheckConfig::paper_defaults().with_packet_size(4096).with_remote_flush_every(1), // flush on every save
    )
    .unwrap();
    let dicts = paper_shaped_dicts("gpt2", 42);
    let report = ecc.save(&mut cluster, &dicts).unwrap();
    assert!(report.remote_flushed);

    // Lose more than m nodes — in-memory recovery is impossible.
    for n in 0..4 {
        cluster.fail_node(n);
        cluster.replace_node(n);
    }
    let (restored, load) = ecc.load(&mut cluster).unwrap();
    assert_eq!(load.workflow, RecoveryWorkflow::Remote);
    assert_eq!(restored, dicts);
}

#[test]
fn memory_redundancy_is_bounded_by_2x() {
    // k = m means every node stores one chunk of W/k packets: the same
    // 2x overhead as replication (paper Fig. 2), plus small headers.
    let spec = ClusterSpec::tiny_test(4, 4);
    let mut cluster = Cluster::new(spec);
    let mut ecc = engine(&spec);
    let dicts = paper_shaped_dicts("gpt2", 7);
    let payload: usize = dicts.iter().map(|d| d.tensor_bytes()).sum();
    let report = ecc.save(&mut cluster, &dicts).unwrap();
    let stored: u64 = (0..4).map(|n| cluster.mem_used(n)).sum();
    // Total in-memory bytes ≈ 2 × payload (n/k = 2), padded to packets.
    let padded_payload = (report.packets_per_worker * report.packet_size * 16) as f64;
    assert!(stored as f64 >= padded_payload * 1.9);
    assert!(
        (stored as f64) < padded_payload * 2.0 + 1_000_000.0,
        "stored {stored} vs padded payload {padded_payload}"
    );
    assert!(padded_payload < payload as f64 * 1.6, "padding should be modest");
}
