//! Telemetry determinism: under the simulated clock, a run's serialized
//! report is a pure function of the workload — two identical runs must
//! produce byte-identical snapshots, or the reports cannot be diffed
//! across commits and machines.

use ecc_cluster::{Cluster, ClusterSpec};
use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};
use ecc_telemetry::Recorder;
use eccheck::{EcCheck, EcCheckConfig};

fn dicts(iteration: u64) -> Vec<ecc_checkpoint::StateDict> {
    let model = ModelConfig::gpt2(64, 4, 4).with_vocab(256).with_seq_len(16);
    let par = ParallelismSpec::new(2, 2, 2).unwrap();
    let spec = StateDictSpec { iteration, ..StateDictSpec::new(model, par) };
    (0..8).map(|w| build_worker_state_dict(&spec, w).unwrap()).collect()
}

/// One full save → failure → recover cycle, measured against a manual
/// (virtual-time) clock that advances in fixed steps between operations.
fn run_once() -> String {
    let spec = ClusterSpec::tiny_test(4, 2);
    let mut cluster = Cluster::new(spec);
    let mut ecc =
        EcCheck::initialize(&spec, EcCheckConfig::paper_defaults().with_packet_size(2048)).unwrap();
    let (recorder, clock) = Recorder::with_manual_clock();
    ecc.set_recorder(recorder);

    let current = dicts(7);
    for round in 0..3u64 {
        clock.advance_ns(1_000_000); // a simulated millisecond of training
        ecc.save(&mut cluster, &current).unwrap();
        if round == 1 {
            cluster.fail_node(1);
            cluster.fail_node(2);
            cluster.replace_node(1);
            cluster.replace_node(2);
            clock.advance_ns(250_000);
            let (restored, _) = ecc.load(&mut cluster).unwrap();
            assert_eq!(restored, current);
        }
    }
    ecc.recorder().snapshot().to_json()
}

#[test]
fn identical_runs_serialize_byte_identically() {
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "snapshot must be deterministic under the sim clock");
    // The report actually carries the measurements (not an empty shell).
    for key in ["ecc.save.calls", "ecc.load.calls", "erasure.encode.xor_ops", "ecc.save.ns"] {
        assert!(first.contains(key), "snapshot JSON must include {key}");
    }
}

#[test]
fn wall_clock_and_manual_clock_agree_on_counters() {
    // Counters are clock-independent: the same workload measured against
    // the wall clock must count the same work, byte for byte.
    let manual = run_once();

    let spec = ClusterSpec::tiny_test(4, 2);
    let mut cluster = Cluster::new(spec);
    let mut ecc =
        EcCheck::initialize(&spec, EcCheckConfig::paper_defaults().with_packet_size(2048)).unwrap();
    let current = dicts(7);
    for round in 0..3u64 {
        ecc.save(&mut cluster, &current).unwrap();
        if round == 1 {
            cluster.fail_node(1);
            cluster.fail_node(2);
            cluster.replace_node(1);
            cluster.replace_node(2);
            let _ = ecc.load(&mut cluster).unwrap();
        }
    }
    let wall = ecc.recorder().snapshot();
    let manual_counters: Vec<(&str, u64)> = [
        "ecc.save.calls",
        "ecc.save.traffic_bytes",
        "ecc.load.calls",
        "erasure.encode.bytes",
        "erasure.encode.xor_ops",
    ]
    .iter()
    .map(|k| (*k, wall.counter(k)))
    .collect();
    for (key, wall_value) in manual_counters {
        let needle = format!("\"{key}\":{wall_value}");
        assert!(
            manual.contains(&needle),
            "counter {key} differs between clocks (wall = {wall_value})"
        );
    }
}
