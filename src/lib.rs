//! Umbrella crate for the ECCheck reproduction workspace.
//!
//! Re-exports every member crate so the `examples/` and `tests/`
//! directories at the workspace root can exercise the full stack. For
//! library use, depend on the individual crates:
//!
//! * [`eccheck`] — the checkpointing system itself.
//! * [`ecc_erasure`] / [`ecc_gf`] — the Cauchy Reed–Solomon substrate.
//! * [`ecc_checkpoint`] — `state_dict`s and the serialization-free
//!   protocol.
//! * [`ecc_dnn`] — synthetic Megatron-style training workloads.
//! * [`ecc_cluster`] / [`ecc_sim`] — the simulated cluster and the
//!   discrete-event timing substrate.
//! * [`ecc_baselines`] — base1/base2/base3 comparison systems.
//! * [`ecc_reliability`] — recovery-rate analysis.

pub use ecc_baselines;
pub use ecc_checkpoint;
pub use ecc_cluster;
pub use ecc_dnn;
pub use ecc_erasure;
pub use ecc_gf;
pub use ecc_reliability;
pub use ecc_sim;
pub use eccheck;
