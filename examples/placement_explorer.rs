//! Placement explorer: watch the sweep-line algorithm pick data and
//! parity nodes, and see how the choice changes communication volume.
//!
//! Reproduces the reasoning of paper §IV-B and Fig. 9 on several
//! cluster shapes, printing each shape's chosen placement, reduction
//! groups, and the resulting traffic breakdown (which always totals
//! `m·s·W`, §V-F).
//!
//! Run with: `cargo run --example placement_explorer`
//!
//! Add `--obs <host:port>` to serve the explored shapes' traffic
//! accounting as live `/metrics` (`--obs-hold-ms <n>` keeps the
//! exporter up afterwards).

use ecc_cluster::ClusterSpec;
use eccheck::{select_data_parity_nodes, ReductionPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let recorder = ecc_telemetry::Recorder::new();
    let obs = ecc_bench::obs_session_from_args(&recorder);
    let shapes = [
        ("paper testbed (Fig. 6)", 4usize, 4usize, 2usize),
        ("Fig. 9 shape", 3, 2, 2),
        ("wide: 8 nodes x 4 GPUs, k=4", 8, 4, 4),
        ("parity-heavy: 6 nodes x 2 GPUs, k=2", 6, 2, 2),
        ("single-GPU nodes: 8 x 1, k=4", 8, 1, 4),
    ];
    for (name, nodes, gpus, k) in shapes {
        let spec = ClusterSpec::tiny_test(nodes, gpus);
        let m = nodes - k;
        println!("== {name}: {nodes} nodes x {gpus} GPUs, k={k}, m={m} ==");
        let placement = select_data_parity_nodes(&spec.origin_group(), k)?;
        println!(
            "   data nodes: {:?}   parity nodes: {:?}",
            placement.data_nodes(),
            placement.parity_nodes()
        );
        let plan = ReductionPlan::build(&spec, &placement, m)?;
        println!(
            "   {} reduction groups, {} XOR reductions per checkpoint",
            plan.groups().len(),
            plan.reduction_op_count()
        );
        for (r, group) in plan.groups().iter().enumerate().take(3) {
            println!(
                "     group {r}: members {:?} -> targets {:?}",
                group.members(),
                group.targets()
            );
        }
        if plan.groups().len() > 3 {
            println!("     ... ({} more groups)", plan.groups().len() - 3);
        }
        let s = 1u64; // unit packet
        let t = plan.traffic(s);
        let world = spec.world_size() as u64;
        println!(
            "   traffic: xor={} data_p2p={} parity_p2p={} total={} (= m*s*W = {})",
            t.xor_reduction,
            t.data_p2p,
            t.parity_p2p,
            t.total(),
            m as u64 * s * world
        );
        assert_eq!(t.total(), m as u64 * s * world);
        recorder.counter("ecc.save.traffic_bytes").add(t.total());
        recorder.counter("placement.shapes_explored").incr();
        recorder.event("placement.shape", format!("{name}: traffic {} = m*s*W", t.total()));
        println!();
    }
    println!("Every shape satisfies the paper's §V-F invariant: total checkpoint");
    println!("traffic = m x model size, independent of node count.");

    if let Some(obs) = obs {
        obs.finish();
    }
    Ok(())
}
