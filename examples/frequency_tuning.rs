//! Frequency tuning: pick a checkpoint interval that minimizes expected
//! lost time under the paper's failure statistics.
//!
//! LLaMA-3 405B saw roughly one failure every 3 hours (paper §I).
//! Frequent checkpoints waste time on stalls; rare checkpoints waste
//! recomputation after a failure. This example sweeps the interval for
//! GPT-2 5.3B on the paper testbed and reports the expected overhead per
//! iteration for each system — showing how in-memory checkpointing
//! shifts the optimum toward very frequent saves.
//!
//! Run with: `cargo run --example frequency_tuning`
//!
//! Add `--obs <host:port>` to serve the sweep's results as live
//! `/metrics` (each system's best interval as a counter, the sweep
//! verdict under `/events`); `--obs-hold-ms <n>` keeps the exporter up
//! afterwards.

use ecc_baselines::timing::{
    average_iteration_time, base1_save, base2_save, base3_save, BaselineConstants, SaveCost,
};
use ecc_cluster::ClusterSpec;
use ecc_dnn::{GpuSpec, ModelConfig, ParallelismSpec, TrainingTimeModel};
use ecc_sim::SimDuration;
use eccheck::timing::{save_timing, TimingConstants};
use eccheck::EcCheckConfig;

/// Expected cost per iteration: checkpoint overhead plus expected
/// recomputation (half an interval, on average) spread over the mean
/// iterations between failures.
fn expected_cost(iteration: SimDuration, interval: u64, cost: SaveCost, mtbf: SimDuration) -> f64 {
    let avg_iter = average_iteration_time(iteration, interval, cost);
    let overhead = avg_iter.as_secs_f64() - iteration.as_secs_f64();
    let iters_between_failures = mtbf.as_secs_f64() / avg_iter.as_secs_f64();
    let recompute_per_failure = interval as f64 * avg_iter.as_secs_f64() / 2.0;
    overhead + recompute_per_failure / iters_between_failures
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let recorder = ecc_telemetry::Recorder::new();
    let obs = ecc_bench::obs_session_from_args(&recorder);
    let spec = ClusterSpec::paper_testbed();
    let model = ModelConfig::gpt2(2560, 40, 64);
    let par = ParallelismSpec::new(4, 4, 1)?;
    let shard = model.shard_bytes(&par);
    let bc = BaselineConstants::default();
    let tm = TrainingTimeModel::new(model, par, GpuSpec::a100_40g(), spec.nic())?;
    let iteration = tm.iteration_time();
    let mtbf = SimDuration::from_secs(3 * 3600); // one failure per ~3 h

    let profile = tm.profile(400);
    let ecc_t = save_timing(
        &spec,
        &EcCheckConfig::paper_defaults(),
        shard,
        Some(&profile),
        &TimingConstants::default(),
    );
    let systems: Vec<(&str, SaveCost)> = vec![
        ("base1", base1_save(&spec, shard, &bc)),
        ("base2", base2_save(&spec, shard, &bc)),
        ("base3", base3_save(&spec, shard)),
        ("ECCheck", SaveCost { stall: ecc_t.stall(), total: ecc_t.total }),
    ];

    println!("expected overhead seconds/iteration (stall + amortized recompute),");
    println!("iteration = {:.3} s, MTBF = 3 h\n", iteration.as_secs_f64());
    print!("{:>10}", "interval");
    for (name, _) in &systems {
        print!("{name:>12}");
    }
    println!();
    let intervals = [1u64, 2, 5, 10, 20, 50, 100, 500, 2000, 10000];
    let mut best: Vec<(f64, u64)> = vec![(f64::INFINITY, 0); systems.len()];
    for &interval in &intervals {
        print!("{interval:>10}");
        for (i, (_, cost)) in systems.iter().enumerate() {
            let c = expected_cost(iteration, interval, *cost, mtbf);
            if c < best[i].0 {
                best[i] = (c, interval);
            }
            print!("{c:>12.4}");
        }
        println!();
    }
    println!();
    for ((name, _), (cost, interval)) in systems.iter().zip(&best) {
        println!(
            "{name:>8}: best interval = every {interval} iterations \
             (expected overhead {cost:.4} s/iter)"
        );
        recorder.counter(&format!("tuning.best_interval.{name}")).add(*interval);
        recorder.event(
            "tuning.result",
            format!("{name}: best interval {interval}, overhead {cost:.4} s/iter"),
        );
    }
    let ecc_best = best[3].1;
    let base1_best = best[0].1;
    assert!(
        ecc_best <= base1_best,
        "in-memory checkpointing should prefer equal-or-higher frequency"
    );
    println!("\nIn-memory checkpointing makes very frequent saves affordable, which is");
    println!("exactly why it reduces wasted GPU-hours after failures (paper §I, §V-D).");

    if let Some(obs) = obs {
        obs.finish();
    }
    Ok(())
}
