//! Failure drill: exhaustively kill every pair of nodes and compare
//! ECCheck against GEMINI-style replication (base3).
//!
//! With the same 2× memory redundancy, replication pairs `(0,1)` and
//! `(2,3)` die when both members of a pair die; erasure coding with
//! `k = m = 2` survives *any* two concurrent failures (paper Fig. 2 and
//! §V-G). This drill demonstrates that gap on real bytes.
//!
//! Run with: `cargo run --example failure_drill`
//!
//! Add `--obs <host:port>` to serve live `/metrics` aggregated across
//! every drill pattern (`--obs-hold-ms <n>` keeps the exporter up after
//! the drill so a scraper can catch the final state).

use ecc_baselines::Base3;
use ecc_cluster::{Cluster, ClusterSpec};
use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};
use eccheck::{EcCheck, EcCheckConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One recorder spans the whole drill: each per-pattern engine reports
    // into it, so a live scrape sees the aggregate save/load telemetry.
    let recorder = ecc_telemetry::Recorder::new();
    let obs = ecc_bench::obs_session_from_args(&recorder);
    let spec = ClusterSpec::tiny_test(4, 2);
    let model = ModelConfig::gpt2(64, 4, 4).with_vocab(512).with_seq_len(32);
    let par = ParallelismSpec::new(2, 2, 2)?;
    let sd_spec = StateDictSpec::new(model, par);
    let dicts: Vec<_> = (0..spec.world_size())
        .map(|w| build_worker_state_dict(&sd_spec, w))
        .collect::<Result<_, _>>()?;

    println!("failure pattern -> ECCheck (k=m=2)   base3 (pairs 01|23)");
    println!("------------------------------------------------------------");
    let mut ecc_ok = 0;
    let mut rep_ok = 0;
    let mut patterns = 0;
    for a in 0..4usize {
        for b in (a + 1)..4usize {
            patterns += 1;
            // ECCheck run.
            let mut cluster = Cluster::new(spec);
            let mut ecc =
                EcCheck::initialize(&spec, EcCheckConfig::paper_defaults().with_packet_size(4096))?;
            ecc.set_recorder(recorder.clone());
            ecc.save(&mut cluster, &dicts)?;
            cluster.fail_node(a);
            cluster.fail_node(b);
            cluster.replace_node(a);
            cluster.replace_node(b);
            let ecc_result = match ecc.load(&mut cluster) {
                Ok((restored, report)) => {
                    assert_eq!(restored, dicts);
                    ecc_ok += 1;
                    format!("recovered ({:?})", report.workflow)
                }
                Err(e) => format!("FAILED: {e}"),
            };

            // base3 run.
            let mut cluster = Cluster::new(spec);
            let mut base3 = Base3::new(&spec)?;
            base3.save(&mut cluster, &dicts)?;
            cluster.fail_node(a);
            cluster.fail_node(b);
            let rep_result = match base3.load(&cluster) {
                Ok(restored) => {
                    assert_eq!(restored, dicts);
                    rep_ok += 1;
                    "recovered".to_string()
                }
                Err(e) => format!("FAILED: {e}"),
            };
            println!("nodes {{{a},{b}}} down -> {ecc_result:<22} {rep_result}");
        }
    }
    println!("------------------------------------------------------------");
    println!("ECCheck survived {ecc_ok}/{patterns} double failures;");
    println!("replication survived {rep_ok}/{patterns} — identical memory overhead.");
    assert_eq!(ecc_ok, patterns);
    assert_eq!(rep_ok, patterns - 2); // pairs {0,1} and {2,3} are fatal

    if let Some(obs) = obs {
        obs.finish();
    }
    Ok(())
}
