//! Quickstart: erasure-coded in-memory checkpointing in five minutes.
//!
//! Builds a 4-node × 2-GPU simulated cluster training a (tiny) GPT-2
//! with hybrid TP/PP/DP parallelism, checkpoints it with ECCheck, kills
//! two machines — including a data node — and restores every worker's
//! `state_dict` bit-exactly from the surviving erasure-coded chunks.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Add `--trace <path>` to also write a Chrome Trace Event JSON span
//! timeline of the run (load it in Perfetto or `chrome://tracing`).
//! Add `--obs <host:port>` to serve the live observability plane
//! (`/metrics`, `/health`, `/ready`, `/events`) during the run — point
//! `ecc-top --addr <host:port>` at it; `--obs-hold-ms <n>` keeps the
//! exporter up after the run finishes so a scraper can catch it.

use ecc_cluster::{Cluster, ClusterSpec};
use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};
use eccheck::{EcCheck, EcCheckConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-machine cluster, 2 simulated GPUs each (the paper's testbed
    // shape, scaled down so this example runs in milliseconds).
    let spec = ClusterSpec::tiny_test(4, 2);
    let mut cluster = Cluster::new(spec);

    // A tiny GPT-2 sharded TP=2 within nodes, PP=2 across them, DP=2.
    let model = ModelConfig::gpt2(64, 4, 4).with_vocab(512).with_seq_len(32);
    let par = ParallelismSpec::new(2, 2, 2)?;
    let sd_spec = StateDictSpec { iteration: 1200, ..StateDictSpec::new(model, par) };
    let dicts: Vec<_> = (0..spec.world_size())
        .map(|w| build_worker_state_dict(&sd_spec, w))
        .collect::<Result<_, _>>()?;
    let total: usize = dicts.iter().map(|d| d.tensor_bytes()).sum();
    println!("checkpoint payload: {} workers, {total} bytes of tensor data", dicts.len());

    // Initialize ECCheck with the paper's k = m = 2 settings (shrunken
    // buffers for the toy scale) and save.
    let config = EcCheckConfig::paper_defaults().with_packet_size(4096);
    let mut ecc = EcCheck::initialize(&spec, config)?;
    // With `--obs <host:port>`, serve live /metrics over the engine's
    // recorder while the run proceeds (scrape it with `ecc-top`).
    let obs = match ecc_bench::arg_value("--obs") {
        Some(addr) => {
            let server = ecc.serve_obs(&addr)?;
            println!("obs: serving /metrics /health /ready /events on {}", server.local_addr());
            Some(server)
        }
        None => None,
    };
    // The tracer records a causal span timeline (save phases, coding-pool
    // workers, P2P transfers) on the same clock as the recorder below.
    let tracer = ecc.attach_tracer();
    println!(
        "placement: data nodes {:?}, parity nodes {:?}",
        ecc.placement().data_nodes(),
        ecc.placement().parity_nodes()
    );
    let report = ecc.save(&mut cluster, &dicts)?;
    println!(
        "saved v{}: {} packets/worker x {} B, traffic {} B (= m*s*W)",
        report.version,
        report.packets_per_worker,
        report.packet_size,
        report.traffic.total()
    );

    // Catastrophe: a data node AND a parity node die at once. A
    // replication pair scheme (GEMINI) would lose data here.
    println!("\nfailing node 2 (data) and node 3 (parity)...");
    cluster.fail_node(2);
    cluster.fail_node(3);
    cluster.replace_node(2);
    cluster.replace_node(3);

    let (restored, load) = ecc.load(&mut cluster)?;
    println!(
        "recovered via {:?}: rebuilt {} chunks, {} bytes restored",
        load.workflow, load.rebuilt_chunks, load.restored_bytes
    );
    assert_eq!(restored, dicts, "recovery must be bit-exact");
    println!("all {} worker state_dicts restored bit-exactly ✓", restored.len());

    // Everything above was also measured: the engine carries a telemetry
    // recorder (see README "Observability") whose snapshot breaks the run
    // down into per-phase latencies, byte counts and XOR-op totals.
    let snap = ecc.recorder().snapshot();
    if let Some(rate) = snap.rate_per_sec("erasure.encode.bytes", "erasure.encode.ns") {
        println!("\nencode throughput: {}", ecc_telemetry::fmt_rate(rate));
    }
    println!("\n{}", snap.render());

    // With `--trace <path>`, export the span timeline for Perfetto and
    // print where the save's wall-clock time actually went.
    if let Some(path) = ecc_bench::trace_path_from_args() {
        std::fs::write(&path, tracer.chrome_trace_json())?;
        println!("\nspan trace written to {} (load in Perfetto)", path.display());
        print!("\n{}", tracer.critical_path_summary("ecc.save"));
    }

    if let Some(server) = obs {
        let hold_ms: u64 = ecc_bench::arg_value("--obs-hold-ms")
            .map(|v| v.parse().expect("--obs-hold-ms takes an integer"))
            .unwrap_or(0);
        if hold_ms > 0 {
            println!("obs: holding exporter for {hold_ms}ms");
            std::thread::sleep(std::time::Duration::from_millis(hold_ms));
        }
        server.shutdown();
    }
    Ok(())
}
