//! Extensions tour: FSDP sharding, group-based checkpointing, and
//! incremental updates working together.
//!
//! An 8-node × 2-GPU cluster trains a tiny GPT-2 with TP×PP×FSDP
//! parallelism; ECCheck runs independently in two 4-node groups (the
//! paper's §VI scaling strategy); between full saves, a single worker's
//! shard is patched incrementally through the code's linearity.
//!
//! Run with: `cargo run --example fsdp_groups`
//!
//! Add `--obs <host:port>` to serve live `/metrics` over the tour's
//! shared recorder (the incremental-update engine reports into it);
//! `--obs-hold-ms <n>` keeps the exporter up afterwards.

use ecc_cluster::{Cluster, ClusterSpec};
use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};
use eccheck::{optimal_group_size, EcCheck, EcCheckConfig, GroupedEcCheck};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let recorder = ecc_telemetry::Recorder::new();
    let obs = ecc_bench::obs_session_from_args(&recorder);
    let spec = ClusterSpec::tiny_test(8, 2);

    // FSDP over the data-parallel dimension: every one of the 16 workers
    // holds a distinct slice of model + optimizer state — no replicas
    // anywhere, exactly the setting where checkpoint redundancy matters.
    let model = ModelConfig::gpt2(64, 4, 4).with_vocab(512).with_seq_len(32);
    let par = ParallelismSpec::new(2, 2, 4)?.with_fsdp();
    let sd_spec = StateDictSpec::new(model, par);
    let dicts: Vec<_> = (0..spec.world_size())
        .map(|w| build_worker_state_dict(&sd_spec, w))
        .collect::<Result<Vec<_>, _>>()?;
    println!(
        "FSDP: {} workers, {} model shards, {} bytes total",
        par.world_size(),
        par.model_shards(),
        dicts.iter().map(|d| d.tensor_bytes()).sum::<usize>()
    );

    // Group-based deployment: two independent 4-node ECCheck groups.
    let mut cluster = Cluster::new(spec);
    let config = EcCheckConfig::paper_defaults().with_packet_size(2048);
    let mut grouped = GroupedEcCheck::initialize(&spec, 4, config)?;
    println!(
        "groups: {} of {} nodes each; cluster recovery rate at p=0.1: {:.4}",
        grouped.group_count(),
        grouped.group_nodes(),
        grouped.recovery_rate(0.1)
    );
    grouped.save(&mut cluster, &dicts)?;

    // One failure in each group at the same time: still recoverable.
    cluster.fail_node(1);
    cluster.fail_node(6);
    cluster.replace_node(1);
    cluster.replace_node(6);
    let (restored, reports) = grouped.load(&mut cluster)?;
    assert_eq!(restored, dicts);
    println!(
        "recovered concurrent failures in both groups (workflows: {:?}, {:?})",
        reports[0].workflow, reports[1].workflow
    );
    recorder.counter("groups.recovered").add(reports.len() as u64);

    // Incremental updates on a single (non-grouped) engine: only the
    // changed worker's region and the parity deltas move.
    let spec4 = ClusterSpec::tiny_test(4, 2);
    let par4 = ParallelismSpec::new(2, 2, 2)?.with_fsdp();
    let sd4 = StateDictSpec::new(model, par4);
    let mut dicts4: Vec<_> = (0..spec4.world_size())
        .map(|w| build_worker_state_dict(&sd4, w))
        .collect::<Result<Vec<_>, _>>()?;
    let mut cluster4 = Cluster::new(spec4);
    let mut ecc = EcCheck::initialize(&spec4, config)?;
    ecc.set_recorder(recorder.clone());
    ecc.save(&mut cluster4, &dicts4)?;
    let updated = build_worker_state_dict(&StateDictSpec { seed: 42, ..sd4 }, 5)?;
    let changed = ecc.update_worker(&mut cluster4, 5, &updated)?;
    dicts4[5] = updated;
    println!("incremental update of worker 5 touched {changed} delta bytes");
    cluster4.fail_node(0);
    cluster4.fail_node(2);
    cluster4.replace_node(0);
    cluster4.replace_node(2);
    let (restored4, _) = ecc.load(&mut cluster4)?;
    assert_eq!(restored4, dicts4, "recovery sees the incrementally updated state");
    println!("post-update double-failure recovery is bit-exact ✓");

    // And the §VI future-work computation: what group size should a
    // 16-node deployment use?
    let (costs, best) = optimal_group_size(&ClusterSpec::v100_scalability(16, 4), 1 << 30, 0.05);
    println!(
        "\noptimal group size for 16 flaky nodes (p=0.05): {} nodes \
         (expected cost {:.3} s/checkpoint)",
        costs[best].group_nodes, costs[best].expected_cost
    );

    if let Some(obs) = obs {
        obs.finish();
    }
    Ok(())
}
